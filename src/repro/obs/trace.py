"""Hierarchical spans: who did what, under which request, for how long.

A :class:`Span` is one timed unit of pipeline work — a query execution, a
compliance check, an ETL operator, an enforcement pass. Spans nest: the
first span opened becomes the root of a new *trace* and every span opened
while another is active becomes its child, so one delivered report produces
one tree reaching from ``report.deliver`` down to the individual
``query.execute`` and cache lookups it caused. The trace ID of that tree is
what :mod:`repro.audit` stamps into disclosure records, linking an audit
entry back to the exact execution that produced it.

Tracing is **off by default** and the disabled path is near-free: call
sites guard on :meth:`Tracer.active` (an attribute check plus an empty-list
test) and allocate nothing when it is false. IDs are drawn from process
counters, not entropy, so traces are deterministic under test and
:meth:`Tracer.reset` restarts numbering.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["Span", "Tracer", "TRACER"]


@dataclass
class Span:
    """One timed, tagged unit of work inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_time: float  # epoch seconds (wall clock, for log correlation)
    tags: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0  # elapsed wall time, seconds
    cpu_s: float = 0.0  # elapsed process CPU time, seconds
    status: str = "ok"  # "ok" | "error"
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)
    _t0: float = field(default=0.0, repr=False, compare=False)
    _c0: float = field(default=0.0, repr=False, compare=False)

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._end(self)
        return False

    def __bool__(self) -> bool:
        return True


class _NoopSpan:
    """Returned when tracing is off; absorbs the span protocol for free."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces spans, tracks the active stack, retains finished spans.

    The active-span stack is **thread-local**: spans opened on different
    threads build independent traces, so concurrent deliveries (chaos
    tests, future async execution) cannot corrupt each other's
    parent/child linkage. The finished deque is shared and bounded:
    ``max_finished`` caps retention, evictions are counted in
    :attr:`dropped` (and surfaced through the ``on_drop`` hook as the
    ``repro_spans_dropped_total`` metric), and exporters consume spans via
    :meth:`drain` so a long-lived enabled process cannot grow without
    limit.
    """

    def __init__(self, max_finished: int = 10_000) -> None:
        self.enabled = False
        self.finished: deque[Span] = deque()
        self.max_finished = max_finished
        self.dropped = 0
        self.on_finish: Callable[[Span], None] | None = None
        self.on_drop: Callable[[int], None] | None = None
        self._local = threading.local()
        # Guards the shared finished deque + dropped counter; the open-span
        # stack is thread-local and needs no lock.
        self._finish_lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created lazily per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- state ---------------------------------------------------------------

    def active(self) -> bool:
        """Should instrumentation record right now?

        True when tracing is globally enabled *or* a span is already open —
        the latter lets a force-opened root (e.g. an
        :class:`~repro.relational.execconfig.ExecutionConfig` with
        ``observe=True``) pull nested cache/engine instrumentation in with
        it without flipping global state.
        """
        return self.enabled or bool(self._stack)

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_trace_id(self) -> str | None:
        return self._stack[-1].trace_id if self._stack else None

    def reset(self) -> None:
        """Drop all spans and restart ID numbering (tests, CLI runs)."""
        with self._finish_lock:
            self.finished.clear()
            self.dropped = 0
        self._local = threading.local()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    def set_max_finished(self, max_finished: int) -> None:
        """Adjust the retention cap; excess spans are evicted (and counted)."""
        if max_finished < 0:
            raise ValueError("max_finished must be >= 0")
        self.max_finished = max_finished
        with self._finish_lock:
            self._evict_locked()

    # -- span lifecycle ------------------------------------------------------

    def span(
        self,
        name: str,
        tags: dict[str, Any] | None = None,
        *,
        force: bool = False,
    ) -> Span | _NoopSpan:
        """Open a span; use as a context manager.

        Returns the no-op singleton when tracing is inactive (unless
        ``force``), so the disabled path allocates nothing.
        """
        if not (force or self.active()):
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"t{next(self._trace_ids):012x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids):08x}",
            parent_id=parent_id,
            start_time=time.time(),
            tags=dict(tags) if tags else {},
            _tracer=self,
            _t0=time.perf_counter(),
            _c0=time.process_time(),
        )
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.wall_s = time.perf_counter() - span._t0
        span.cpu_s = time.process_time() - span._c0
        # Tolerate a mismatched exit (an inner span leaked by an exception):
        # unwind to the span being closed rather than corrupting the stack.
        stack = self._stack
        while stack:
            if stack.pop() is span:
                break
        with self._finish_lock:
            self.finished.append(span)
            self._evict_locked()
        if self.on_finish is not None:
            self.on_finish(span)

    def _evict_locked(self) -> None:
        evicted = 0
        while len(self.finished) > self.max_finished:
            self.finished.popleft()
            evicted += 1
        if evicted:
            self.dropped += evicted
            if self.on_drop is not None:
                self.on_drop(evicted)

    # -- inspection ----------------------------------------------------------

    def spans(self, trace_id: str | None = None) -> Iterable[Span]:
        """Finished spans, optionally filtered to one trace."""
        with self._finish_lock:
            snapshot = tuple(self.finished)
        if trace_id is None:
            return snapshot
        return tuple(s for s in snapshot if s.trace_id == trace_id)

    def drain(self) -> tuple[Span, ...]:
        """Hand finished spans to an exporter and clear retention.

        This is how long-lived exporters keep the tracer bounded: each
        export cycle drains, so retention only ever holds spans finished
        since the last export. Atomic: a span finished concurrently lands
        either in this drain or the next, never in both or neither.
        """
        with self._finish_lock:
            out = tuple(self.finished)
            self.finished.clear()
        return out

    def trace_ids(self) -> tuple[str, ...]:
        """Distinct trace IDs among finished spans, in first-seen order."""
        with self._finish_lock:
            snapshot = tuple(self.finished)
        seen: dict[str, None] = {}
        for span in snapshot:
            seen.setdefault(span.trace_id, None)
        return tuple(seen)


#: The process-wide tracer every instrumented call site consults.
TRACER = Tracer()
