"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A deliberately small, zero-dependency subset of the Prometheus data model:

* metrics are registered once in a :class:`MetricsRegistry` under a unique
  name with a fixed tuple of label *names*;
* each observation supplies label *values* positionally (a tuple matching
  the label names), which keeps the hot path to a dict lookup plus an add —
  no kwargs, no string formatting;
* counters are monotonic (negative increments raise), histograms have fixed
  bucket upper bounds with Prometheus ``le`` (inclusive) semantics.

:meth:`MetricsRegistry.reset` zeroes every value but keeps registrations,
so module-level metric handles stay valid across test boundaries.
Rendering to the Prometheus text exposition format lives in
:mod:`repro.obs.export`.

Thread safety: every observation is a read-modify-write against a shared
dict, so each metric carries its own lock — increments from concurrent
delivery workers never lose counts, and snapshot methods (``value``,
``samples``) see consistent states. The lock is per-metric (not
per-registry) to keep unrelated hot counters from contending.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
]

#: Default latency buckets (seconds): 100µs .. 10s, roughly logarithmic.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ReproError):
    """Misuse of the metrics API (name/kind/label mismatches, bad values)."""


class _Metric:
    """Shared naming/labeling machinery for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        if not name:
            raise MetricError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _labels(self, labels: tuple) -> tuple:
        if len(labels) != len(self.labelnames):
            raise MetricError(
                f"{self.name}: expected {len(self.labelnames)} label value(s) "
                f"for {self.labelnames}, got {labels!r}"
            )
        return tuple(str(v) for v in labels)


class Counter(_Metric):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        if amount < 0:
            raise MetricError(
                f"{self.name}: counters are monotonic; cannot add {amount}"
            )
        key = self._labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: tuple = ()) -> float:
        with self._lock:
            return self._values.get(tuple(str(v) for v in labels), 0.0)

    def samples(self) -> list[tuple[tuple, float]]:
        """``(labelvalues, value)`` pairs, sorted for deterministic output."""
        with self._lock:
            return sorted(self._values.items())

    def reset_values(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """A value that can go up and down (sizes, levels, last-seen)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, labels: tuple = ()) -> None:
        key = self._labels(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        key = self._labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, labels: tuple = ()) -> None:
        self.inc(-amount, labels)

    def value(self, labels: tuple = ()) -> float:
        with self._lock:
            return self._values.get(tuple(str(v) for v in labels), 0.0)

    def samples(self) -> list[tuple[tuple, float]]:
        with self._lock:
            return sorted(self._values.items())

    def reset_values(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(_Metric):
    """Observations bucketed by fixed upper bounds (``le`` — inclusive).

    An observation lands in the first bucket whose bound is >= the value;
    values above the last bound land in the implicit ``+Inf`` bucket. Sum
    and count are tracked per label set, Prometheus-style.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise MetricError(
                f"{self.name}: buckets must be non-empty and strictly increasing"
            )
        self.buckets = bounds
        # per label set: [bucket counts..., +Inf count], sum
        self._data: dict[tuple, tuple[list[int], float]] = {}

    def observe(self, value: float, labels: tuple = ()) -> None:
        key = self._labels(labels)
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                entry = ([0] * (len(self.buckets) + 1), 0.0)
                self._data[key] = entry
            counts, total = entry
            counts[bisect_left(self.buckets, value)] += 1
            self._data[key] = (counts, total + value)

    def _value_locked(self, key: tuple) -> dict[str, Any]:
        counts, total = self._data.get(key, ([0] * (len(self.buckets) + 1), 0.0))
        return {
            "buckets": tuple(zip(self.buckets, counts[:-1])),
            "inf": counts[-1],
            "sum": total,
            "count": sum(counts),
        }

    def value(self, labels: tuple = ()) -> dict[str, Any]:
        """Snapshot: per-bucket counts, +Inf count, sum, total count."""
        key = tuple(str(v) for v in labels)
        with self._lock:
            return self._value_locked(key)

    def samples(self) -> list[tuple[tuple, dict[str, Any]]]:
        with self._lock:
            return sorted((k, self._value_locked(k)) for k in self._data)

    def reset_values(self) -> None:
        with self._lock:
            self._data.clear()


class MetricsRegistry:
    """Get-or-create metric registry with consistency checks.

    Re-requesting a name returns the existing instance — or raises if the
    kind, label names, or buckets differ, which catches two call sites
    silently disagreeing about a metric's shape.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, labelnames: tuple, **kwargs):
        with self._lock:
            return self._register_locked(cls, name, help, labelnames, **kwargs)

    def _register_locked(self, cls, name: str, help: str, labelnames: tuple, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name} is already registered as a {existing.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"{name} is already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            buckets = kwargs.get("buckets")
            if buckets is not None and existing.buckets != tuple(
                float(b) for b in buckets
            ):
                raise MetricError(f"{name} is already registered with other buckets")
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every value; registrations (and handles to them) survive."""
        for metric in self._metrics.values():
            metric.reset_values()

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot of every metric and sample."""
        out: dict[str, Any] = {}
        for metric in self:
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": [
                    {"labels": list(labels), "value": value}
                    for labels, value in metric.samples()
                ],
            }
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation records into."""
    return _REGISTRY
