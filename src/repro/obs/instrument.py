"""The built-in metric set and the helpers hot call sites use.

Every metric the pipeline emits is registered here, once, at import time —
so instrumented code paths touch pre-resolved handles (a dict lookup plus
an add) instead of re-registering per call. The names and labels below are
a **stable contract**, documented in ``docs/OBSERVABILITY.md``:

``repro_queries_total{mode}``
    Queries executed by the relational engine, by execution mode.
``repro_cache_lookups_total{cache,result}``
    Lookups against the plan / derivability / containment / verdict caches,
    labeled hit or miss.
``repro_enforcement_decisions_total{level,decision,rule}``
    Privacy enforcement decisions keyed by the paper's pipeline level
    (``source`` | ``warehouse`` | ``meta-report`` | ``report``), the
    decision taken (``allow``, ``deny``, ``deny_row``, ``suppress_row``,
    ``anonymize``, ``obligation``, ``deny_op``), and which rule fired.
``repro_etl_operators_total{status}``
    ETL operators ``executed`` vs ``skipped`` (PLA skip or cascade).
``repro_deliveries_total{outcome}``
    Report deliveries, ``delivered`` vs ``refused``.
``repro_span_seconds{name}``
    Wall-clock latency histogram of every finished span, by span name.

All helpers assume the caller already checked :meth:`Tracer.active` — the
disabled path never reaches this module.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.obs.trace import TRACER, Span

__all__ = [
    "QUERIES",
    "CACHE_LOOKUPS",
    "DECISIONS",
    "ETL_OPS",
    "DELIVERIES",
    "SPAN_SECONDS",
    "LEVEL_SOURCE",
    "LEVEL_WAREHOUSE",
    "LEVEL_METAREPORT",
    "LEVEL_REPORT",
    "cache_lookup",
    "record_decision",
]

_registry = get_registry()

#: The paper's four pipeline levels, as metric label values.
LEVEL_SOURCE = "source"
LEVEL_WAREHOUSE = "warehouse"
LEVEL_METAREPORT = "meta-report"
LEVEL_REPORT = "report"

QUERIES = _registry.counter(
    "repro_queries_total",
    "Queries executed by the relational engine.",
    ("mode",),
)
CACHE_LOOKUPS = _registry.counter(
    "repro_cache_lookups_total",
    "Result/proof/verdict cache lookups, by cache and outcome.",
    ("cache", "result"),
)
DECISIONS = _registry.counter(
    "repro_enforcement_decisions_total",
    "Privacy enforcement decisions, by pipeline level, decision, and rule.",
    ("level", "decision", "rule"),
)
ETL_OPS = _registry.counter(
    "repro_etl_operators_total",
    "ETL operators run, by outcome.",
    ("status",),
)
DELIVERIES = _registry.counter(
    "repro_deliveries_total",
    "Report delivery requests, by outcome.",
    ("outcome",),
)
SPAN_SECONDS = _registry.histogram(
    "repro_span_seconds",
    "Wall-clock seconds spent per span, by span name.",
    ("name",),
)


def cache_lookup(cache: str, hit: bool) -> None:
    """Count one cache lookup as a hit or miss."""
    CACHE_LOOKUPS.inc(1, (cache, "hit" if hit else "miss"))


def record_decision(
    level: str, decision: str, rule: str = "-", count: float = 1
) -> None:
    """Count ``count`` enforcement decisions at one pipeline level."""
    if count:
        DECISIONS.inc(count, (level, decision, rule))


def _observe_span(span: Span) -> None:
    SPAN_SECONDS.observe(span.wall_s, (span.name,))


# Every finished span also lands in the latency histogram.
TRACER.on_finish = _observe_span
