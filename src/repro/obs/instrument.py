"""The built-in metric set and the helpers hot call sites use.

Every metric the pipeline emits is registered here, once, at import time —
so instrumented code paths touch pre-resolved handles (a dict lookup plus
an add) instead of re-registering per call. The names and labels below are
a **stable contract**, documented in ``docs/OBSERVABILITY.md``:

``repro_queries_total{mode}``
    Queries executed by the relational engine, by execution mode.
``repro_cache_lookups_total{cache,result}``
    Lookups against the plan / derivability / containment / verdict caches,
    labeled hit or miss.
``repro_enforcement_decisions_total{level,decision,rule}``
    Privacy enforcement decisions keyed by the paper's pipeline level
    (``source`` | ``warehouse`` | ``meta-report`` | ``report``), the
    decision taken (``allow``, ``deny``, ``deny_row``, ``suppress_row``,
    ``anonymize``, ``obligation``, ``deny_op``), and which rule fired.
``repro_etl_operators_total{status}``
    ETL operators ``executed`` vs ``skipped`` (PLA skip or cascade).
``repro_deliveries_total{outcome}``
    Report deliveries: ``delivered``, ``refused``, ``degraded`` (delivered
    minus an unavailable source's rows), or ``unavailable`` (refused
    because a source was down).
``repro_span_seconds{name}``
    Wall-clock latency histogram of every finished span, by span name.
``repro_retry_attempts_total{outcome}``
    Retry-loop exits: ``first_try``, ``recovered``, ``exhausted``, or
    ``aborted`` (non-retryable error).
``repro_faults_injected_total{kind}``
    Faults the :mod:`repro.resilience` injector fired, by kind.
``repro_breaker_transitions_total{state}``
    Circuit-breaker state transitions, by destination state.
``repro_breaker_state{source}``
    Current breaker state per source: 0 closed, 1 half-open, 2 open.
``repro_degraded_deliveries_total{cause}``
    Degraded deliveries by fault cause (the failure's exception type).
``repro_spans_dropped_total``
    Finished spans evicted because the tracer's retention cap was hit.
``repro_audit_anomalies_total{kind}``
    Disclosure records the auditor could not fully audit (e.g. the
    referenced report version is missing from the catalog).
``repro_service_requests_total{kind,outcome}``
    Requests processed by the delivery daemon, by request kind
    (``deliver`` | ``mutate``) and outcome (``delivered``, ``refused``,
    ``degraded``, ``applied``, ``shed``, ``error``).
``repro_service_latency_seconds{kind}``
    End-to-end daemon request latency (enqueue to completion), by kind.
``repro_service_queue_depth``
    Jobs currently waiting in the daemon's bounded queue.
``repro_service_sessions``
    Consumer sessions currently registered with the daemon.
``repro_service_epoch``
    The shared deployment's mutation epoch (bumps on every catalog/PLA/
    report mutation the daemon applies).

The ``repro_service_*`` metrics are recorded **unconditionally** by the
daemon — they are its own operational telemetry, not tracing-gated
instrumentation, so a live ``repro metrics`` scrape against a serving
process always has data.

All helpers assume the caller already checked :meth:`Tracer.active` — the
disabled path never reaches this module.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.obs.trace import TRACER, Span

__all__ = [
    "QUERIES",
    "CACHE_LOOKUPS",
    "DECISIONS",
    "ETL_OPS",
    "DELIVERIES",
    "SPAN_SECONDS",
    "RETRIES",
    "FAULTS",
    "BREAKER_TRANSITIONS",
    "BREAKER_STATE",
    "DEGRADED_DELIVERIES",
    "SPANS_DROPPED",
    "AUDIT_ANOMALIES",
    "SERVICE_REQUESTS",
    "SERVICE_LATENCY",
    "SERVICE_QUEUE_DEPTH",
    "SERVICE_SESSIONS",
    "SERVICE_EPOCH",
    "LEVEL_SOURCE",
    "LEVEL_WAREHOUSE",
    "LEVEL_METAREPORT",
    "LEVEL_REPORT",
    "cache_lookup",
    "record_decision",
]

_registry = get_registry()

#: The paper's four pipeline levels, as metric label values.
LEVEL_SOURCE = "source"
LEVEL_WAREHOUSE = "warehouse"
LEVEL_METAREPORT = "meta-report"
LEVEL_REPORT = "report"

QUERIES = _registry.counter(
    "repro_queries_total",
    "Queries executed by the relational engine.",
    ("mode",),
)
CACHE_LOOKUPS = _registry.counter(
    "repro_cache_lookups_total",
    "Result/proof/verdict cache lookups, by cache and outcome.",
    ("cache", "result"),
)
DECISIONS = _registry.counter(
    "repro_enforcement_decisions_total",
    "Privacy enforcement decisions, by pipeline level, decision, and rule.",
    ("level", "decision", "rule"),
)
ETL_OPS = _registry.counter(
    "repro_etl_operators_total",
    "ETL operators run, by outcome.",
    ("status",),
)
DELIVERIES = _registry.counter(
    "repro_deliveries_total",
    "Report delivery requests, by outcome.",
    ("outcome",),
)
SPAN_SECONDS = _registry.histogram(
    "repro_span_seconds",
    "Wall-clock seconds spent per span, by span name.",
    ("name",),
)
RETRIES = _registry.counter(
    "repro_retry_attempts_total",
    "Retry-loop exits, by outcome.",
    ("outcome",),
)
FAULTS = _registry.counter(
    "repro_faults_injected_total",
    "Faults fired by the resilience injector, by kind.",
    ("kind",),
)
BREAKER_TRANSITIONS = _registry.counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by destination state.",
    ("state",),
)
BREAKER_STATE = _registry.gauge(
    "repro_breaker_state",
    "Breaker state per source: 0 closed, 1 half-open, 2 open.",
    ("source",),
)
DEGRADED_DELIVERIES = _registry.counter(
    "repro_degraded_deliveries_total",
    "Deliveries degraded by an unavailable source, by fault cause.",
    ("cause",),
)
SPANS_DROPPED = _registry.counter(
    "repro_spans_dropped_total",
    "Finished spans evicted at the tracer's retention cap.",
)
AUDIT_ANOMALIES = _registry.counter(
    "repro_audit_anomalies_total",
    "Disclosure records the auditor could not fully audit, by kind.",
    ("kind",),
)
SERVICE_REQUESTS = _registry.counter(
    "repro_service_requests_total",
    "Delivery-daemon requests, by kind and outcome.",
    ("kind", "outcome"),
)
SERVICE_LATENCY = _registry.histogram(
    "repro_service_latency_seconds",
    "End-to-end daemon request latency (enqueue to completion), by kind.",
    ("kind",),
)
SERVICE_QUEUE_DEPTH = _registry.gauge(
    "repro_service_queue_depth",
    "Jobs waiting in the daemon's bounded queue.",
)
SERVICE_SESSIONS = _registry.gauge(
    "repro_service_sessions",
    "Consumer sessions currently registered with the daemon.",
)
SERVICE_EPOCH = _registry.gauge(
    "repro_service_epoch",
    "Mutation epoch of the daemon's shared deployment.",
)


def cache_lookup(cache: str, hit: bool) -> None:
    """Count one cache lookup as a hit or miss."""
    CACHE_LOOKUPS.inc(1, (cache, "hit" if hit else "miss"))


def record_decision(
    level: str, decision: str, rule: str = "-", count: float = 1
) -> None:
    """Count ``count`` enforcement decisions at one pipeline level."""
    if count:
        DECISIONS.inc(count, (level, decision, rule))


def _observe_span(span: Span) -> None:
    SPAN_SECONDS.observe(span.wall_s, (span.name,))


def _count_dropped(n: int) -> None:
    SPANS_DROPPED.inc(n)


# Every finished span also lands in the latency histogram, and retention-cap
# evictions become a visible counter instead of silent data loss.
TRACER.on_finish = _observe_span
TRACER.on_drop = _count_dropped
