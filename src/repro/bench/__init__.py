"""Benchmark-harness utilities (table printing, shared setup helpers)."""

from repro.bench.tables import format_table, print_series, print_table

__all__ = ["format_table", "print_series", "print_table"]
