"""ASCII table/series rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "print_table", "print_series"]


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str = "",
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict-rows as a fixed-width table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    names = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(name)) for name in names] for row in rows]
    widths = [
        max(len(names[i]), *(len(row[i]) for row in cells))
        for i in range(len(names))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(n.ljust(w) for n, w in zip(names, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(
        " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in cells
    )
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str = "",
    columns: Sequence[str] | None = None,
) -> None:
    """Print a table with a surrounding blank line (bench output style)."""
    print()
    print(format_table(rows, title=title, columns=columns))


def print_series(
    title: str, points: Sequence[tuple[Any, Any]], *, x: str = "x", y: str = "y"
) -> None:
    """Print an (x, y) series as a two-column table."""
    print_table([{x: a, y: b} for a, b in points], title=title)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
