"""repro — reproduction of *Engineering Privacy Requirements in Business
Intelligence Applications* (Chiasera, Casati, Daniel, Velegrakis; SDM/VLDB
2008).

The library implements the paper's full stack: an in-memory relational
engine with why/where-provenance, data providers with consents and
source-side gateways, an annotated ETL pipeline, a star-schema warehouse
with cube authorization, a report engine with evolution, the PLA model with
the paper's five annotation kinds plus intensional conditions, meta-report
generation and derivability-based compliance checking, enforcement
translation, anonymization (k-anonymity, l-diversity, perturbation,
pseudonymization), a tamper-evident audit trail, and the elicitation
simulation behind the Fig 5 continuum.

Quick start::

    from repro.simulation import build_scenario
    scenario = build_scenario()
    report = scenario.workload[0]
    verdict = scenario.checker.check_report(report)
    if verdict.compliant:
        context = scenario.subjects.context("ann", report.purpose)
        instance = scenario.enforcer.generate(report, context, verdict)
"""

from repro import (
    anonymize,
    audit,
    core,
    etl,
    persistence,
    policy,
    provenance,
    relational,
    reports,
    simulation,
    sources,
    warehouse,
    workloads,
)

# Imported after the stack above: the analyzer reaches into core/etl/reports,
# so loading it first would re-enter their import cycle.
from repro import analysis
from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "__version__",
    "analysis",
    "anonymize",
    "audit",
    "core",
    "etl",
    "persistence",
    "policy",
    "provenance",
    "relational",
    "reports",
    "simulation",
    "sources",
    "warehouse",
    "workloads",
]
