"""Command-line interface: explore the reproduction without writing code.

Commands::

    python -m repro scenario                      # build + summarize Fig 1
    python -m repro check "SELECT drug, COUNT(*) AS n FROM wide_prescriptions GROUP BY drug" \
        --audience analyst --purpose care/quality # compliance-check a report
    python -m repro deliver rpt_001               # generate + render a report
    python -m repro audit                         # deliver everything + audit
    python -m repro gaps                          # PLA coverage analysis
    python -m repro lint --json                   # static privacy-flow lint
    python -m repro fig 5                         # regenerate a paper figure
    python -m repro bench --smoke                 # engine scaling benchmark
    python -m repro trace deliver --report rpt_001  # span tree of one delivery
    python -m repro metrics                       # Prometheus metric dump
    python -m repro chaos --plan blackout         # deliveries under faults

Installed as a console script (``repro …``) via ``pip install -e .``.
Every subcommand documents itself: ``repro <command> --help`` shows a
description and at least one worked example.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def _scenario():
    from repro.simulation import build_scenario

    return build_scenario()


def cmd_scenario(_args: argparse.Namespace) -> int:
    scenario = _scenario()
    print("Fig 1 scenario built.")
    for provider in scenario.providers.values():
        print(f"  {provider.describe()}")
    print(f"  ETL: {scenario.flow_result.summary()}")
    print(
        f"  warehouse universe: {scenario.universe_name} "
        f"{list(scenario.wide_columns)}"
    )
    print(f"  reports: {len(scenario.workload)}; meta-reports: {len(scenario.metareports)}")
    verdicts = scenario.checker.check_catalog(scenario.report_catalog.all_current())
    compliant = sum(1 for v in verdicts.values() if v.compliant)
    print(f"  compliance: {compliant}/{len(verdicts)} deployable")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.relational import parse_query
    from repro.reports import ReportDefinition

    scenario = _scenario()
    definition = ReportDefinition(
        name=args.name,
        title=args.name,
        query=parse_query(args.sql),
        audience=frozenset(args.audience),
        purpose=args.purpose,
    )
    verdict = scenario.checker.check_report(definition)
    print(verdict.summary())
    for violation in verdict.violations:
        print(f"  violation: {violation}")
    for obligation in verdict.obligations:
        print(f"  obligation: {obligation}")
    return 0 if verdict.compliant else 1


def cmd_deliver(args: argparse.Namespace) -> int:
    from repro.errors import ComplianceError
    from repro.reports.rendering import render_text

    scenario = _scenario()
    service = scenario.delivery_service()
    report = scenario.report_catalog.current(args.report)
    role = sorted(report.audience)[0]
    try:
        instance = service.deliver(
            args.report, user=ROLE_TO_USER[role], purpose=report.purpose
        )
    except ComplianceError as exc:
        print(f"refused: {exc}")
        return 1
    print(render_text(instance))
    return 0


def cmd_audit(_args: argparse.Namespace) -> int:
    from repro.audit import Auditor

    scenario = _scenario()
    service = scenario.delivery_service()
    delivered, refusals = service.deliver_all_compliant(ROLE_TO_USER)
    print(f"delivered {len(delivered)} report(s); refused {len(refusals)}")
    audit = Auditor(
        checker=scenario.checker, reports=scenario.report_catalog
    ).audit(service.audit_log)
    print(audit.summary())
    for violation in audit.violations:
        print(f"  {violation}")
    return 0 if audit.clean else 1


def cmd_gaps(args: argparse.Namespace) -> int:
    from repro.core.gap import analyze_coverage
    from repro.workloads import generate_requirements

    scenario = _scenario()
    requirements = generate_requirements(args.n, seed=args.seed)
    report = analyze_coverage(scenario.metareports, requirements)
    print(report.summary())
    for gap in report.gaps[: args.show]:
        print(f"  {gap}")
    if len(report.gaps) > args.show:
        print(f"  ... and {len(report.gaps) - args.show} more")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisInput,
        Severity,
        StaticAnalyzer,
        render_json,
        render_text,
    )

    if args.deployment:
        from repro.persistence import load_deployment

        deployment = load_deployment(args.deployment)
        analyzer = StaticAnalyzer(
            AnalysisInput(
                catalog=deployment.catalog,
                metareports=deployment.metareports,
                reports=deployment.reports,
            )
        )
    else:
        analyzer = StaticAnalyzer.for_scenario(_scenario())
    report = analyzer.analyze()
    print(render_json(report) if args.json else render_text(report))
    return report.exit_code(Severity[args.fail_on.upper()])


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis import Severity
    from repro.verify import DeploymentVerifier, VerificationInput

    if args.deployment:
        from repro.persistence import load_deployment

        target = VerificationInput.from_deployment(
            load_deployment(args.deployment)
        )
    else:
        target = VerificationInput.from_scenario(_scenario())
    if args.incremental:
        from repro.verify import IncrementalVerifier, VerdictCache

        cache = VerdictCache.load(args.cache)
        verifier = IncrementalVerifier(
            target, replay=not args.no_replay, cache=cache
        )
        report = verifier.verify()
        cache.save(args.cache)
        # Stats go to stderr so --json stdout stays byte-identical to a
        # full run (diffable in CI gates).
        print(cache.stats(), file=sys.stderr)
    else:
        report = DeploymentVerifier(target, replay=not args.no_replay).verify()
    print(report.to_json() if args.json else report.render_text())
    return report.exit_code(Severity[args.fail_on.upper()])


def cmd_ingest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis import Severity
    from repro.ingest import emit_deployment, ingest_suite

    scenario = _scenario()
    result = ingest_suite(
        args.directory, catalog=scenario.bi_catalog, dialect=args.dialect
    )
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2))
    else:
        print(result.summary())
        for diagnostic in result.diagnostics.source_sorted():
            print(f"  {diagnostic}")
            if diagnostic.fix_hint:
                print(f"    fix: {diagnostic.fix_hint}")
        for statement in result.statements:
            status = "compiled" if statement.ok else "REJECTED"
            print(
                f"  {status}: {statement.kind} {statement.name or '<unnamed>'} "
                f"({statement.dialect}) at {statement.origin}"
            )
    if args.emit_catalog:
        if not result.ok:
            print(
                "error: refusing to emit a catalog from a suite with "
                "rejected statements",
                file=sys.stderr,
            )
            return 1
        path = emit_deployment(result, args.emit_catalog, scenario=scenario)
        if not args.json:
            print(f"catalog written to {path}")
    return result.diagnostics.exit_code(Severity[args.fail_on.upper()])


def _traced_workload(target: str, report: str) -> None:
    """Run one traced workload; obs must already be enabled."""
    scenario = _scenario()
    if target == "scenario":
        return
    service = scenario.delivery_service()
    if target == "deliver":
        definition = scenario.report_catalog.current(report)
        role = sorted(definition.audience)[0]
        service.deliver(report, user=ROLE_TO_USER[role], purpose=definition.purpose)
    else:  # audit
        service.deliver_all_compliant(ROLE_TO_USER)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.errors import ComplianceError

    previous = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        try:
            _traced_workload(args.target, args.report)
        except ComplianceError as exc:
            print(f"refused (trace captured anyway): {exc}", file=sys.stderr)
    finally:
        obs.TRACER.enabled = previous
    spans = list(obs.TRACER.drain())
    print(obs.render_span_tree(spans))
    if args.jsonl:
        n = obs.write_jsonl(spans, args.jsonl)
        print(f"\nwrote {n} span(s) to {args.jsonl}")
    registry = obs.get_registry()
    decisions = registry.get("repro_enforcement_decisions_total")
    if decisions is not None and decisions.samples():
        print("\nenforcement decisions (level/decision/rule):")
        for labels, value in decisions.samples():
            print(f"  {'/'.join(labels)}: {int(value)}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs

    if args.url:
        import urllib.request

        base = args.url.rstrip("/")
        path = "" if base.endswith("/metrics") else "/metrics"
        with urllib.request.urlopen(base + path) as response:
            print(response.read().decode("utf-8"), end="")
        return 0
    previous = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        _traced_workload("audit", "rpt_001")
    finally:
        obs.TRACER.enabled = previous
    registry = obs.get_registry()
    if args.json:
        print(_json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    else:
        print(obs.render_prometheus(registry), end="")
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from repro.persistence import save_deployment

    scenario = _scenario()
    root = save_deployment(
        args.directory,
        catalog=scenario.bi_catalog,
        metareports=scenario.metareports,
        plas=scenario.pla_registry,
        reports=scenario.report_catalog,
    )
    print(f"deployment saved to {root}")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from repro.core import ComplianceChecker
    from repro.persistence import load_deployment

    deployment = load_deployment(args.directory)
    checker = ComplianceChecker(
        catalog=deployment.catalog, metareports=deployment.metareports
    )
    verdicts = checker.check_catalog(deployment.reports.all_current())
    compliant = sum(1 for v in verdicts.values() if v.compliant)
    print(
        f"loaded {len(deployment.catalog.table_names())} table(s), "
        f"{len(deployment.metareports)} meta-report(s), "
        f"{len(deployment.reports)} report(s)"
    )
    print(f"compliance on reload: {compliant}/{len(verdicts)} deployable")
    return 0


_FIGS = {
    "1": "benchmarks.bench_fig1_scenario",
    "2": "benchmarks.bench_fig2_source_level",
    "3": "benchmarks.bench_fig3_warehouse_level",
    "4": "benchmarks.bench_fig4_report_level",
    "5": "benchmarks.bench_fig5_continuum",
}


def cmd_fig(args: argparse.Namespace) -> int:
    module = _benchmark_module(_FIGS[args.number])
    module.main()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    which = getattr(args, "which", "engine")
    if which == "obs":
        module = _benchmark_module("benchmarks.bench_obs_overhead")
        return int(module.main(smoke=args.smoke, json_path=args.json))
    if which == "resilience":
        module = _benchmark_module("benchmarks.bench_resilience")
        return int(module.main(smoke=args.smoke, json_path=args.json))
    if which == "verify":
        module = _benchmark_module("benchmarks.bench_verify")
        return int(module.main(smoke=args.smoke, json_path=args.json))
    if which == "ingest":
        module = _benchmark_module("benchmarks.bench_ingest")
        return int(module.main(smoke=args.smoke, json_path=args.json))
    if which == "service":
        module = _benchmark_module("benchmarks.bench_service")
        return int(module.main(smoke=args.smoke, json_path=args.json))
    module = _benchmark_module("benchmarks.bench_engine_scaling")
    return int(module.main(smoke=args.smoke, json_path=args.json))


def cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from repro.resilience import named_plan, render_outcome_table, run_chaos

    plan = named_plan(args.plan)
    if args.seed is not None:
        plan = plan.with_seed(args.seed)
    result = run_chaos(plan, mode=args.mode)
    print(render_outcome_table(result))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        print(f"\nwrote chaos result to {args.json}")
    counts = result.counts()
    return 1 if counts["unavailable"] and args.mode == "refuse" else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import DeliveryDaemon, ServiceState, start_http_server

    scenario = _scenario()
    state = ServiceState(scenario, factory=_scenario)
    daemon = DeliveryDaemon(
        state, workers=args.workers, queue_size=args.queue_size
    )
    if args.faults:
        from repro.service.loadgen import _fault_resilience

        daemon.state.service.resilience = _fault_resilience(args.faults)
        print(f"fault plan {args.faults!r} installed (degrade mode)")
    daemon.start()
    server = start_http_server(daemon, port=args.port)
    host, port = server.server_address[:2]
    print(f"delivery daemon serving on http://{host}:{port}")
    print(f"  {args.workers} worker(s), queue size {args.queue_size}")
    print("  endpoints: /metrics /healthz /stats  POST /deliver")
    try:
        if args.duration is not None:
            _time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        daemon.stop()
    stats = daemon.stats()
    print(
        f"stopped at epoch {stats['epoch']}: {stats['commits']} commit(s), "
        f"{stats['refusals']} refusal(s), outcomes {stats['outcomes']}"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import run_mix

    result = run_mix(
        args.mix,
        consumers=args.consumers,
        requests_per_consumer=args.requests,
        seed=args.seed,
        check=args.check,
        fault_plan=args.faults,
    )
    print(
        f"{result.mix}: {result.requests} request(s) from "
        f"{result.consumers} consumer(s) in {result.wall_s:.2f}s "
        f"({result.throughput_rps:.1f} req/s)"
    )
    print(
        f"  latency p50 {result.p50_ms:.1f}ms  p95 {result.p95_ms:.1f}ms  "
        f"p99 {result.p99_ms:.1f}ms"
    )
    print(f"  outcomes: {result.outcomes}  final epoch: {result.epoch}")
    failed = False
    if result.linearizability is not None:
        lin = result.linearizability
        verdict = "PASS" if lin["ok"] else "FAIL"
        print(
            f"  linearizability: {verdict} "
            f"({lin['deliveries_checked']} deliveries, "
            f"{lin['mutations_checked']} mutations, "
            f"{lin['refusals_checked']} refusals replayed)"
        )
        for violation in lin["violations"]:
            print(f"    violation: {violation}")
        failed = not lin["ok"]
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote load result to {args.json}")
    return 1 if failed else 0


def _benchmark_module(name: str):
    """Import a benchmark module (benchmarks/ lives outside the package)."""
    import importlib
    import pathlib
    import sys as _sys

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    if str(repo_root) not in _sys.path:
        _sys.path.insert(0, str(repo_root))
    return importlib.import_module(name)


def _command(sub, name: str, help: str, example: str):
    """Register a subcommand with a consistent help/description/example."""
    return sub.add_parser(
        name,
        help=help,
        description=help[0].upper() + help[1:] + ".",
        epilog="example:\n  " + example,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Engineering Privacy Requirements in Business "
            "Intelligence Applications' (SDM/VLDB 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _command(
        sub, "scenario",
        "build and summarize the Fig 1 scenario",
        "repro scenario",
    )

    check = _command(
        sub, "check",
        "compliance-check a report query against the meta-report PLAs",
        'repro check "SELECT drug, COUNT(*) AS n FROM wide_prescriptions '
        'GROUP BY drug" --audience analyst --purpose care/quality',
    )
    check.add_argument("sql", help="SQL over the warehouse/meta-report views")
    check.add_argument(
        "--name", default="adhoc_report", help="name for the ad-hoc report"
    )
    check.add_argument(
        "--audience", nargs="+", default=["analyst"],
        choices=sorted(ROLE_TO_USER), help="audience role(s) of the report",
    )
    check.add_argument(
        "--purpose", default="care/quality", help="declared processing purpose"
    )

    deliver = _command(
        sub, "deliver",
        "generate and render one report through checked, audited delivery",
        "repro deliver rpt_001",
    )
    deliver.add_argument("report", help="report name, e.g. rpt_001")

    _command(
        sub, "audit",
        "deliver all compliant reports and run the third-party auditor",
        "repro audit",
    )

    gaps = _command(
        sub, "gaps",
        "PLA coverage analysis against a generated requirement mix",
        "repro gaps --n 100 --show 10",
    )
    gaps.add_argument("--n", type=int, default=100, help="requirement count")
    gaps.add_argument("--seed", type=int, default=23, help="generator seed")
    gaps.add_argument(
        "--show", type=int, default=10, help="max gaps to print individually"
    )

    lint = _command(
        sub, "lint",
        "static privacy-flow analysis and PLA lint (no execution)",
        "repro lint --json --fail-on warning",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    lint.add_argument(
        "--deployment",
        metavar="DIR",
        default=None,
        help="lint a saved deployment instead of the built-in scenario",
    )

    verify = _command(
        sub, "verify",
        "prove the cross-level PLA ordering symbolically (no execution)",
        "repro verify --json --fail-on warning",
    )
    verify.add_argument("--json", action="store_true", help="machine-readable output")
    verify.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    verify.add_argument(
        "--deployment",
        metavar="DIR",
        default=None,
        help="verify a saved deployment instead of the built-in scenario",
    )
    verify.add_argument(
        "--no-replay", action="store_true",
        help="skip runtime replay of synthesized counterexamples",
    )
    verify.add_argument(
        "--incremental", action="store_true",
        help="re-prove only verdicts whose inputs changed (value-keyed "
        "verdict cache; output is identical to a full run)",
    )
    verify.add_argument(
        "--cache",
        metavar="PATH",
        default=".repro-verify-cache.json",
        help="verdict cache file used by --incremental "
        "(default: %(default)s)",
    )

    ingest = _command(
        sub, "ingest",
        "compile an external SQL report suite into an auditable catalog",
        "repro ingest examples/sql_suites --fail-on error --emit-catalog /tmp/dep",
    )
    ingest.add_argument("directory", help="directory of .sql suite files")
    ingest.add_argument(
        "--dialect",
        choices=["ansi", "postgres", "tsql"],
        default=None,
        help="force one dialect (default: per-file -- dialect: directive)",
    )
    ingest.add_argument("--json", action="store_true", help="machine-readable output")
    ingest.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    ingest.add_argument(
        "--emit-catalog",
        metavar="DIR",
        default=None,
        help="also save the compiled deployment (loadable by lint/verify "
        "--deployment); refused when any statement was rejected",
    )

    fig = _command(
        sub, "fig",
        "regenerate a paper figure's measured table",
        "repro fig 5",
    )
    fig.add_argument("number", choices=sorted(_FIGS), help="figure number")

    bench = _command(
        sub, "bench",
        "run a benchmark: engine scaling (default) or observability overhead",
        "repro bench --smoke --json BENCH_engine.json",
    )
    bench.add_argument(
        "which", nargs="?",
        choices=["engine", "obs", "resilience", "verify", "ingest", "service"],
        default="engine",
        help=(
            "engine: row vs columnar scaling; obs: tracing overhead; "
            "resilience: fault-wrapper overhead; verify: solver throughput "
            "and whole-catalog verification wall time; ingest: SQL suite "
            "compilation scaling; service: concurrent daemon throughput/"
            "latency with linearizability gating"
        ),
    )
    bench.add_argument(
        "--smoke", action="store_true", help="tiny sizes, seconds not minutes"
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write machine-readable results to PATH",
    )

    trace = _command(
        sub, "trace",
        "run one scenario workload with tracing on and print its span tree",
        "repro trace deliver --report rpt_001 --jsonl spans.jsonl",
    )
    trace.add_argument(
        "target", nargs="?", choices=["scenario", "deliver", "audit"],
        default="deliver",
        help="workload to trace: scenario build, one delivery, or a full audit",
    )
    trace.add_argument(
        "--report", default="rpt_001",
        help="report to deliver when target is 'deliver'",
    )
    trace.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also write the spans as JSON lines to PATH",
    )

    chaos = _command(
        sub, "chaos",
        "run the delivery workload under a named fault plan and tabulate outcomes",
        "repro chaos --plan blackout --mode degrade",
    )
    chaos.add_argument(
        "--plan", default="smoke", help="named fault plan (see repro.resilience)",
    )
    chaos.add_argument(
        "--mode", choices=["refuse", "degrade"], default="degrade",
        help="fail-closed mode when a source is down",
    )
    chaos.add_argument(
        "--seed", type=int, default=None,
        help="override the plan's seed (same seed ⇒ identical outcomes)",
    )
    chaos.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the result (ChaosResult.as_dict) to PATH",
    )

    metrics = _command(
        sub, "metrics",
        "run the audit workload with metrics on and print the registry",
        "repro metrics | grep repro_enforcement_decisions_total",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="JSON snapshot instead of Prometheus text format",
    )
    metrics.add_argument(
        "--url", metavar="URL", default=None,
        help="scrape a running 'repro serve' daemon at URL instead of "
        "running a local workload (e.g. http://127.0.0.1:8472)",
    )

    serve = _command(
        sub, "serve",
        "run the concurrent delivery daemon with its HTTP face",
        "repro serve --port 8472 --workers 8 --duration 60",
    )
    serve.add_argument(
        "--port", type=int, default=8472,
        help="HTTP port on 127.0.0.1 (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="delivery worker threads"
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded job queue size (overflow is shed with a 503)",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="seconds to serve before exiting (default: until interrupted)",
    )
    serve.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="install a named fault plan on the live daemon (degrade mode)",
    )

    loadgen = _command(
        sub, "loadgen",
        "drive a fresh daemon with N concurrent consumers and report latency",
        "repro loadgen --mix read_heavy --consumers 32 --check",
    )
    loadgen.add_argument(
        "--mix", choices=["read_heavy", "mutation_heavy"], default="read_heavy",
        help="request mix: mutation probability 3%% vs 30%%",
    )
    loadgen.add_argument(
        "--consumers", type=int, default=32, help="concurrent consumer threads"
    )
    loadgen.add_argument(
        "--requests", type=int, default=12, help="requests per consumer"
    )
    loadgen.add_argument(
        "--seed", type=int, default=11, help="schedule seed (same seed, same ops)"
    )
    loadgen.add_argument(
        "--check", action="store_true",
        help="replay the commit log serially and fail on any divergence",
    )
    loadgen.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="run under a named fault plan (mutually exclusive with --check)",
    )
    loadgen.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the LoadResult to PATH",
    )

    save = _command(
        sub, "save",
        "persist the deployment (catalog, PLAs, reports) to a directory",
        "repro save /tmp/deployment",
    )
    save.add_argument("directory", help="target directory (created if missing)")

    load = _command(
        sub, "load",
        "load a saved deployment and re-check its compliance",
        "repro load /tmp/deployment",
    )
    load.add_argument("directory", help="directory written by 'repro save'")

    return parser


def subcommand_help(parser: argparse.ArgumentParser) -> dict[str, tuple[str, str]]:
    """``{command: (help, description)}`` for every registered subcommand.

    Used by the CLI tests to enforce that every subcommand stays documented.
    """
    out: dict[str, tuple[str, str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            helps = {a.dest: (a.help or "") for a in action._choices_actions}
            for name, subparser in action.choices.items():
                out[name] = (helps.get(name, ""), subparser.description or "")
    return out


_HANDLERS = {
    "scenario": cmd_scenario,
    "check": cmd_check,
    "deliver": cmd_deliver,
    "audit": cmd_audit,
    "gaps": cmd_gaps,
    "lint": cmd_lint,
    "verify": cmd_verify,
    "ingest": cmd_ingest,
    "fig": cmd_fig,
    "bench": cmd_bench,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "chaos": cmd_chaos,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "save": cmd_save,
    "load": cmd_load,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
