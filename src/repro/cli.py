"""Command-line interface: explore the reproduction without writing code.

Commands::

    python -m repro scenario                      # build + summarize Fig 1
    python -m repro check "SELECT drug, COUNT(*) AS n FROM wide_prescriptions GROUP BY drug" \
        --audience analyst --purpose care/quality # compliance-check a report
    python -m repro deliver rpt_001               # generate + render a report
    python -m repro audit                         # deliver everything + audit
    python -m repro gaps                          # PLA coverage analysis
    python -m repro lint --json                   # static privacy-flow lint
    python -m repro fig 5                         # regenerate a paper figure
    python -m repro bench --smoke                 # engine scaling benchmark

Installed as a console script (``repro …``) via ``pip install -e .``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def _scenario():
    from repro.simulation import build_scenario

    return build_scenario()


def cmd_scenario(_args: argparse.Namespace) -> int:
    scenario = _scenario()
    print("Fig 1 scenario built.")
    for provider in scenario.providers.values():
        print(f"  {provider.describe()}")
    print(f"  ETL: {scenario.flow_result.summary()}")
    print(
        f"  warehouse universe: {scenario.universe_name} "
        f"{list(scenario.wide_columns)}"
    )
    print(f"  reports: {len(scenario.workload)}; meta-reports: {len(scenario.metareports)}")
    verdicts = scenario.checker.check_catalog(scenario.report_catalog.all_current())
    compliant = sum(1 for v in verdicts.values() if v.compliant)
    print(f"  compliance: {compliant}/{len(verdicts)} deployable")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.relational import parse_query
    from repro.reports import ReportDefinition

    scenario = _scenario()
    definition = ReportDefinition(
        name=args.name,
        title=args.name,
        query=parse_query(args.sql),
        audience=frozenset(args.audience),
        purpose=args.purpose,
    )
    verdict = scenario.checker.check_report(definition)
    print(verdict.summary())
    for violation in verdict.violations:
        print(f"  violation: {violation}")
    for obligation in verdict.obligations:
        print(f"  obligation: {obligation}")
    return 0 if verdict.compliant else 1


def cmd_deliver(args: argparse.Namespace) -> int:
    from repro.errors import ComplianceError
    from repro.reports.rendering import render_text

    scenario = _scenario()
    service = scenario.delivery_service()
    report = scenario.report_catalog.current(args.report)
    role = sorted(report.audience)[0]
    try:
        instance = service.deliver(
            args.report, user=ROLE_TO_USER[role], purpose=report.purpose
        )
    except ComplianceError as exc:
        print(f"refused: {exc}")
        return 1
    print(render_text(instance))
    return 0


def cmd_audit(_args: argparse.Namespace) -> int:
    from repro.audit import Auditor

    scenario = _scenario()
    service = scenario.delivery_service()
    delivered, refusals = service.deliver_all_compliant(ROLE_TO_USER)
    print(f"delivered {len(delivered)} report(s); refused {len(refusals)}")
    audit = Auditor(
        checker=scenario.checker, reports=scenario.report_catalog
    ).audit(service.audit_log)
    print(audit.summary())
    for violation in audit.violations:
        print(f"  {violation}")
    return 0 if audit.clean else 1


def cmd_gaps(args: argparse.Namespace) -> int:
    from repro.core.gap import analyze_coverage
    from repro.workloads import generate_requirements

    scenario = _scenario()
    requirements = generate_requirements(args.n, seed=args.seed)
    report = analyze_coverage(scenario.metareports, requirements)
    print(report.summary())
    for gap in report.gaps[: args.show]:
        print(f"  {gap}")
    if len(report.gaps) > args.show:
        print(f"  ... and {len(report.gaps) - args.show} more")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisInput,
        Severity,
        StaticAnalyzer,
        render_json,
        render_text,
    )

    if args.deployment:
        from repro.persistence import load_deployment

        deployment = load_deployment(args.deployment)
        analyzer = StaticAnalyzer(
            AnalysisInput(
                catalog=deployment.catalog,
                metareports=deployment.metareports,
                reports=deployment.reports,
            )
        )
    else:
        analyzer = StaticAnalyzer.for_scenario(_scenario())
    report = analyzer.analyze()
    print(render_json(report) if args.json else render_text(report))
    return report.exit_code(Severity[args.fail_on.upper()])


def cmd_save(args: argparse.Namespace) -> int:
    from repro.persistence import save_deployment

    scenario = _scenario()
    root = save_deployment(
        args.directory,
        catalog=scenario.bi_catalog,
        metareports=scenario.metareports,
        plas=scenario.pla_registry,
        reports=scenario.report_catalog,
    )
    print(f"deployment saved to {root}")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    from repro.core import ComplianceChecker
    from repro.persistence import load_deployment

    deployment = load_deployment(args.directory)
    checker = ComplianceChecker(
        catalog=deployment.catalog, metareports=deployment.metareports
    )
    verdicts = checker.check_catalog(deployment.reports.all_current())
    compliant = sum(1 for v in verdicts.values() if v.compliant)
    print(
        f"loaded {len(deployment.catalog.table_names())} table(s), "
        f"{len(deployment.metareports)} meta-report(s), "
        f"{len(deployment.reports)} report(s)"
    )
    print(f"compliance on reload: {compliant}/{len(verdicts)} deployable")
    return 0


_FIGS = {
    "1": "benchmarks.bench_fig1_scenario",
    "2": "benchmarks.bench_fig2_source_level",
    "3": "benchmarks.bench_fig3_warehouse_level",
    "4": "benchmarks.bench_fig4_report_level",
    "5": "benchmarks.bench_fig5_continuum",
}


def cmd_fig(args: argparse.Namespace) -> int:
    module = _benchmark_module(_FIGS[args.number])
    module.main()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    module = _benchmark_module("benchmarks.bench_engine_scaling")
    module.main(smoke=args.smoke, json_path=args.json)
    return 0


def _benchmark_module(name: str):
    """Import a benchmark module (benchmarks/ lives outside the package)."""
    import importlib
    import pathlib
    import sys as _sys

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    if str(repo_root) not in _sys.path:
        _sys.path.insert(0, str(repo_root))
    return importlib.import_module(name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Engineering Privacy Requirements in Business "
            "Intelligence Applications' (SDM/VLDB 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenario", help="build and summarize the Fig 1 scenario")

    check = sub.add_parser("check", help="compliance-check a report query")
    check.add_argument("sql", help="SQL over the warehouse/meta-report views")
    check.add_argument("--name", default="adhoc_report")
    check.add_argument(
        "--audience", nargs="+", default=["analyst"],
        choices=sorted(ROLE_TO_USER),
    )
    check.add_argument("--purpose", default="care/quality")

    deliver = sub.add_parser("deliver", help="generate and render one report")
    deliver.add_argument("report", help="report name, e.g. rpt_001")

    sub.add_parser("audit", help="deliver all compliant reports and audit")

    gaps = sub.add_parser("gaps", help="PLA coverage analysis")
    gaps.add_argument("--n", type=int, default=100, help="requirement count")
    gaps.add_argument("--seed", type=int, default=23)
    gaps.add_argument("--show", type=int, default=10)

    lint = sub.add_parser(
        "lint", help="static privacy-flow analysis and PLA lint (no execution)"
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    lint.add_argument(
        "--deployment",
        metavar="DIR",
        default=None,
        help="lint a saved deployment instead of the built-in scenario",
    )

    fig = sub.add_parser("fig", help="regenerate a paper figure's table")
    fig.add_argument("number", choices=sorted(_FIGS))

    bench = sub.add_parser(
        "bench", help="row vs. columnar engine scaling benchmark"
    )
    bench.add_argument(
        "--smoke", action="store_true", help="tiny sizes, seconds not minutes"
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write machine-readable results to PATH",
    )

    save = sub.add_parser("save", help="persist the deployment to a directory")
    save.add_argument("directory")

    load = sub.add_parser("load", help="load a deployment and re-check it")
    load.add_argument("directory")

    return parser


_HANDLERS = {
    "scenario": cmd_scenario,
    "check": cmd_check,
    "deliver": cmd_deliver,
    "audit": cmd_audit,
    "gaps": cmd_gaps,
    "lint": cmd_lint,
    "fig": cmd_fig,
    "bench": cmd_bench,
    "save": cmd_save,
    "load": cmd_load,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
