"""JSON (de)serialization of expression and query ASTs.

PLAs are *agreements between institutions*: they must outlive the process
that elicited them, travel between the BI provider and auditors, and be
diffable in reviews. This module gives every expression and query a stable
JSON form; :mod:`repro.persistence.plajson` builds on it for annotations
and PLAs, and :mod:`repro.persistence.store` for whole deployments.

The format is versioned ("v": 1) and round-trip exact: ``load(dump(x))``
reproduces an equal AST.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import ReproError
from repro.relational.algebra import AggSpec
from repro.relational.expressions import (
    And,
    Arith,
    Case,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.relational.query import Query

__all__ = ["expr_to_json", "expr_from_json", "query_to_json", "query_from_json"]

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Malformed persisted artifact."""


# -- scalars -----------------------------------------------------------------


def _value_to_json(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise PersistenceError(f"unserializable literal {value!r}")


def _value_from_json(payload: Any) -> Any:
    if isinstance(payload, dict):
        if set(payload) == {"$date"}:
            return datetime.date.fromisoformat(payload["$date"])
        raise PersistenceError(f"unknown scalar wrapper {payload!r}")
    return payload


# -- expressions ---------------------------------------------------------------


def expr_to_json(expr: Expr) -> dict[str, Any]:
    """The JSON form of one expression."""
    if isinstance(expr, Col):
        return {"op": "col", "name": expr.name}
    if isinstance(expr, Lit):
        return {"op": "lit", "value": _value_to_json(expr.value)}
    if isinstance(expr, Comparison):
        return {
            "op": "cmp",
            "cmp": expr.op,
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, And):
        return {
            "op": "and",
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, Or):
        return {
            "op": "or",
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, Not):
        return {"op": "not", "inner": expr_to_json(expr.inner)}
    if isinstance(expr, InList):
        return {
            "op": "in",
            "target": expr_to_json(expr.target),
            "values": [_value_to_json(v) for v in expr.values],
        }
    if isinstance(expr, IsNull):
        return {
            "op": "isnull",
            "target": expr_to_json(expr.target),
            "negated": expr.negated,
        }
    if isinstance(expr, Arith):
        return {
            "op": "arith",
            "arith": expr.op,
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, Case):
        payload: dict[str, Any] = {
            "op": "case",
            "whens": [expr_to_json(w) for w in expr.whens],
            "thens": [expr_to_json(t) for t in expr.thens],
        }
        if expr.else_ is not None:
            payload["else"] = expr_to_json(expr.else_)
        return payload
    raise PersistenceError(f"unserializable expression {expr!r}")


def expr_from_json(payload: dict[str, Any]) -> Expr:
    """Rebuild an expression from its JSON form."""
    try:
        op = payload["op"]
    except (TypeError, KeyError):
        raise PersistenceError(f"not an expression payload: {payload!r}") from None
    if op == "col":
        return Col(payload["name"])
    if op == "lit":
        return Lit(_value_from_json(payload["value"]))
    if op == "cmp":
        return Comparison(
            payload["cmp"],
            expr_from_json(payload["left"]),
            expr_from_json(payload["right"]),
        )
    if op == "and":
        return And(expr_from_json(payload["left"]), expr_from_json(payload["right"]))
    if op == "or":
        return Or(expr_from_json(payload["left"]), expr_from_json(payload["right"]))
    if op == "not":
        return Not(expr_from_json(payload["inner"]))
    if op == "in":
        return InList(
            expr_from_json(payload["target"]),
            tuple(_value_from_json(v) for v in payload["values"]),
        )
    if op == "isnull":
        return IsNull(expr_from_json(payload["target"]), payload.get("negated", False))
    if op == "arith":
        return Arith(
            payload["arith"],
            expr_from_json(payload["left"]),
            expr_from_json(payload["right"]),
        )
    if op == "case":
        return Case(
            tuple(expr_from_json(w) for w in payload["whens"]),
            tuple(expr_from_json(t) for t in payload["thens"]),
            expr_from_json(payload["else"]) if "else" in payload else None,
        )
    raise PersistenceError(f"unknown expression op {op!r}")


# -- queries --------------------------------------------------------------------


def query_to_json(query: Query) -> dict[str, Any]:
    """The JSON form of one query."""
    payload: dict[str, Any] = {"v": FORMAT_VERSION, "from": query.source}
    if query.joins:
        payload["joins"] = [
            {"table": j.table, "on": [list(pair) for pair in j.on], "how": j.how}
            for j in query.joins
        ]
    if query.where is not None:
        payload["where"] = expr_to_json(query.where)
    if query.group_by:
        payload["group_by"] = list(query.group_by)
    if query.aggregates:
        payload["aggregates"] = [
            {
                "func": a.func,
                "column": a.column,
                "alias": a.alias,
                "distinct": a.distinct,
            }
            for a in query.aggregates
        ]
    if query.having is not None:
        payload["having"] = expr_to_json(query.having)
    if query.select:
        payload["select"] = [
            item
            if isinstance(item, str)
            else {"alias": item[0], "expr": expr_to_json(item[1])}
            for item in query.select
        ]
    if query.select_distinct:
        payload["distinct"] = True
    if query.order:
        payload["order"] = [[c, d] for c, d in query.order]
    if query.limit_n is not None:
        payload["limit"] = query.limit_n
    if query.set_ops:
        payload["set_ops"] = [
            {"op": clause.op, "query": query_to_json(clause.query)}
            for clause in query.set_ops
        ]
    return payload


def query_from_json(payload: dict[str, Any]) -> Query:
    """Rebuild a query from its JSON form."""
    version = payload.get("v")
    if version != FORMAT_VERSION:
        raise PersistenceError(f"unsupported query format version {version!r}")
    query = Query.from_(payload["from"])
    for j in payload.get("joins", ()):
        query = query.join(
            j["table"], [tuple(pair) for pair in j["on"]], how=j.get("how", "inner")
        )
    if "where" in payload:
        query = query.filter(expr_from_json(payload["where"]))
    if "group_by" in payload:
        query = query.group(*payload["group_by"])
    for a in payload.get("aggregates", ()):
        query = query.agg(
            AggSpec(a["func"], a["column"], a["alias"], a.get("distinct", False))
        )
    if "having" in payload:
        query = query.having_(expr_from_json(payload["having"]))
    if "select" in payload:
        items = [
            item
            if isinstance(item, str)
            else (item["alias"], expr_from_json(item["expr"]))
            for item in payload["select"]
        ]
        query = query.project(*items)
    if payload.get("distinct"):
        query = query.distinct()
    if "order" in payload:
        query = query.order_by(*[(c, bool(d)) for c, d in payload["order"]])
    if "limit" in payload:
        query = query.limit(payload["limit"])
    if "set_ops" in payload:
        from dataclasses import replace

        from repro.relational.query import SetOpClause

        clauses = tuple(
            SetOpClause(c["op"], query_from_json(c["query"]))
            for c in payload["set_ops"]
        )
        query = replace(query, set_ops=clauses)
    return query
