"""Deployment store: save/load a PLA deployment to a directory.

Layout::

    <root>/
      manifest.json           # format version + content listing
      tables/<name>.csv       # base tables (typed-header CSV)
      metareports.json        # meta-report definitions + attached PLAs
      plas.json               # the full PLA registry (all versions)
      reports.json            # report catalog (full version history)

The store covers the *agreement state* — data, meta-reports, PLAs, report
definitions. Runtime objects (enforcers, subjects, audit logs) are
reconstructed by the application; the audit log is intentionally excluded
because its custody rules differ (it belongs to the auditor, not the
provider's working directory).

**Limitation — lineage granularity.** CSV carries values, not provenance:
reloaded tables are fresh *base* tables whose lineage points at themselves
(``warehouse/<table>``), not at the original source rows. Contributor
*counts* (aggregation thresholds) remain exact, but source-vocabulary
join-permission checks need the original in-memory deployment or a re-run
of the ETL. Re-running the flows against the saved source tables restores
full lineage.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PlaRegistry
from repro.persistence.exprjson import (
    PersistenceError,
    query_from_json,
    query_to_json,
)
from repro.persistence.plajson import (
    pla_from_json,
    pla_to_json,
    report_from_json,
    report_to_json,
)
from repro.relational.catalog import Catalog
from repro.relational.io import read_csv, write_csv
from repro.reports.catalog import ReportCatalog

__all__ = ["save_deployment", "load_deployment", "Deployment"]

FORMAT_VERSION = 1


class Deployment:
    """The loaded agreement state of one BI deployment."""

    def __init__(
        self,
        catalog: Catalog,
        metareports: MetaReportSet,
        plas: PlaRegistry,
        reports: ReportCatalog,
    ) -> None:
        self.catalog = catalog
        self.metareports = metareports
        self.plas = plas
        self.reports = reports


def save_deployment(
    root: str | Path,
    *,
    catalog: Catalog,
    metareports: MetaReportSet,
    plas: PlaRegistry,
    reports: ReportCatalog,
) -> Path:
    """Persist the agreement state under ``root`` (created if missing)."""
    base = Path(root)
    (base / "tables").mkdir(parents=True, exist_ok=True)

    table_entries = []
    for name in catalog.table_names():
        table = catalog.table(name)
        write_csv(table, base / "tables" / f"{name}.csv")
        table_entries.append({"name": name, "provider": table.provider})

    view_entries = [
        {
            "name": view_name,
            "query": query_to_json(catalog.view(view_name).query),
            "description": catalog.view(view_name).description,
        }
        for view_name in catalog.view_names()
    ]

    metareport_entries = [
        {
            "name": metareport.name,
            "query": query_to_json(metareport.query),
            "description": metareport.description,
            "pla": metareport.pla.name if metareport.pla is not None else None,
            "pla_version": (
                metareport.pla.version if metareport.pla is not None else None
            ),
        }
        for metareport in metareports
    ]
    (base / "metareports.json").write_text(
        json.dumps(metareport_entries, indent=2)
    )
    (base / "plas.json").write_text(
        json.dumps([pla_to_json(p) for p in plas.plas], indent=2)
    )

    report_entries = []
    for name in reports.all_names_ever():
        for definition in reports.history(name):
            report_entries.append(report_to_json(definition))
    (base / "reports.json").write_text(json.dumps(report_entries, indent=2))

    manifest = {
        "v": FORMAT_VERSION,
        "tables": table_entries,
        "views": view_entries,
        "dropped_reports": list(reports.dropped_names()),
    }
    (base / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return base


def load_deployment(root: str | Path) -> Deployment:
    """Load the agreement state saved by :func:`save_deployment`."""
    base = Path(root)
    try:
        manifest = json.loads((base / "manifest.json").read_text())
    except FileNotFoundError:
        raise PersistenceError(f"no deployment manifest under {base}") from None
    if manifest.get("v") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported deployment format {manifest.get('v')!r}"
        )

    catalog = Catalog()
    for entry in manifest["tables"]:
        table = read_csv(
            base / "tables" / f"{entry['name']}.csv",
            name=entry["name"],
            provider=entry["provider"],
        )
        catalog.add_table(table)
    from repro.relational.catalog import View

    for entry in manifest.get("views", ()):
        catalog.add_view(
            View(
                entry["name"],
                query_from_json(entry["query"]),
                description=entry.get("description", ""),
            )
        )

    plas = PlaRegistry()
    for payload in json.loads((base / "plas.json").read_text()):
        plas.add(pla_from_json(payload))

    def latest_pla(name: str, version: int):
        for pla in plas.plas:
            if pla.name == name and pla.version == version:
                return pla
        raise PersistenceError(f"meta-report references missing PLA {name} v{version}")

    metareports = MetaReportSet()
    for entry in json.loads((base / "metareports.json").read_text()):
        metareport = MetaReport(
            name=entry["name"],
            query=query_from_json(entry["query"]),
            description=entry.get("description", ""),
        )
        if entry.get("pla"):
            metareport.pla = latest_pla(entry["pla"], entry["pla_version"])
        metareports.add(metareport)
    metareports.register_views(catalog)

    reports = ReportCatalog()
    for payload in json.loads((base / "reports.json").read_text()):
        definition = report_from_json(payload)
        if definition.name in reports:
            reports.update(definition)
        else:
            reports.add(definition)
    for dropped in manifest.get("dropped_reports", ()):
        reports.drop(dropped)

    return Deployment(
        catalog=catalog, metareports=metareports, plas=plas, reports=reports
    )
