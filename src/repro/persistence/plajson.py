"""JSON (de)serialization of annotations, PLAs, and report definitions."""

from __future__ import annotations

from typing import Any

from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.pla import PLA, PlaLevel, PlaStatus
from repro.persistence.exprjson import (
    PersistenceError,
    expr_from_json,
    expr_to_json,
    query_from_json,
    query_to_json,
)
from repro.reports.definition import ReportDefinition

__all__ = [
    "annotation_to_json",
    "annotation_from_json",
    "pla_to_json",
    "pla_from_json",
    "report_to_json",
    "report_from_json",
]


def annotation_to_json(annotation: Annotation) -> dict[str, Any]:
    """The JSON form of one PLA annotation."""
    if isinstance(annotation, AttributeAccess):
        return {
            "kind": "attribute_access",
            "attribute": annotation.attribute,
            "allowed_roles": sorted(annotation.allowed_roles),
        }
    if isinstance(annotation, AggregationThreshold):
        return {
            "kind": "aggregation_threshold",
            "min_group_size": annotation.min_group_size,
            "scope": annotation.scope,
        }
    if isinstance(annotation, AnonymizationRequirement):
        return {
            "kind": "anonymization",
            "attribute": annotation.attribute,
            "method": annotation.method,
            "generalization_level": annotation.generalization_level,
        }
    if isinstance(annotation, JoinPermission):
        return {
            "kind": "join_permission",
            "left": annotation.left,
            "right": annotation.right,
            "allowed": annotation.allowed,
        }
    if isinstance(annotation, IntegrationPermission):
        return {
            "kind": "integration_permission",
            "owner": annotation.owner,
            "allowed": annotation.allowed,
        }
    if isinstance(annotation, IntensionalCondition):
        return {
            "kind": "intensional_condition",
            "attribute": annotation.attribute,
            "condition": expr_to_json(annotation.condition),
            "action": annotation.action,
        }
    raise PersistenceError(f"unserializable annotation {annotation!r}")


def annotation_from_json(payload: dict[str, Any]) -> Annotation:
    """Rebuild an annotation from its JSON form."""
    kind = payload.get("kind")
    if kind == "attribute_access":
        return AttributeAccess(
            payload["attribute"], frozenset(payload["allowed_roles"])
        )
    if kind == "aggregation_threshold":
        return AggregationThreshold(
            payload["min_group_size"], payload.get("scope", "")
        )
    if kind == "anonymization":
        return AnonymizationRequirement(
            payload["attribute"],
            payload["method"],
            payload.get("generalization_level", 0),
        )
    if kind == "join_permission":
        return JoinPermission(payload["left"], payload["right"], payload["allowed"])
    if kind == "integration_permission":
        return IntegrationPermission(payload["owner"], payload["allowed"])
    if kind == "intensional_condition":
        return IntensionalCondition(
            payload["attribute"],
            expr_from_json(payload["condition"]),
            payload.get("action", "suppress_cell"),
        )
    raise PersistenceError(f"unknown annotation kind {kind!r}")


def pla_to_json(pla: PLA) -> dict[str, Any]:
    """The JSON form of one PLA (the inter-institution agreement artifact)."""
    return {
        "name": pla.name,
        "owner": pla.owner,
        "level": pla.level.value,
        "target": pla.target,
        "status": pla.status.value,
        "version": pla.version,
        "annotations": [annotation_to_json(a) for a in pla.annotations],
    }


def pla_from_json(payload: dict[str, Any]) -> PLA:
    """Rebuild a PLA from its JSON form."""
    try:
        return PLA(
            name=payload["name"],
            owner=payload["owner"],
            level=PlaLevel(payload["level"]),
            target=payload["target"],
            annotations=tuple(
                annotation_from_json(a) for a in payload["annotations"]
            ),
            status=PlaStatus(payload.get("status", "draft")),
            version=payload.get("version", 1),
        )
    except (KeyError, ValueError) as exc:
        raise PersistenceError(f"malformed PLA payload: {exc}") from exc


def report_to_json(report: ReportDefinition) -> dict[str, Any]:
    """The JSON form of one report definition."""
    payload = {
        "name": report.name,
        "title": report.title,
        "query": query_to_json(report.query),
        "audience": sorted(report.audience),
        "purpose": report.purpose,
        "description": report.description,
        "version": report.version,
    }
    if report.origin:
        payload["origin"] = report.origin
    if report.source_sql:
        payload["source_sql"] = report.source_sql
    return payload


def report_from_json(payload: dict[str, Any]) -> ReportDefinition:
    """Rebuild a report definition from its JSON form."""
    try:
        return ReportDefinition(
            name=payload["name"],
            title=payload["title"],
            query=query_from_json(payload["query"]),
            audience=frozenset(payload["audience"]),
            purpose=payload["purpose"],
            description=payload.get("description", ""),
            version=payload.get("version", 1),
            origin=payload.get("origin", ""),
            source_sql=payload.get("source_sql", ""),
        )
    except KeyError as exc:
        raise PersistenceError(f"malformed report payload: missing {exc}") from exc
