"""Persistence: JSON forms for PLAs/queries and whole-deployment save/load."""

from repro.persistence.exprjson import (
    PersistenceError,
    expr_from_json,
    expr_to_json,
    query_from_json,
    query_to_json,
)
from repro.persistence.plajson import (
    annotation_from_json,
    annotation_to_json,
    pla_from_json,
    pla_to_json,
    report_from_json,
    report_to_json,
)
from repro.persistence.store import Deployment, load_deployment, save_deployment

__all__ = [
    "Deployment",
    "PersistenceError",
    "annotation_from_json",
    "annotation_to_json",
    "expr_from_json",
    "expr_to_json",
    "load_deployment",
    "pla_from_json",
    "pla_to_json",
    "query_from_json",
    "query_to_json",
    "report_from_json",
    "report_to_json",
    "save_deployment",
]
