"""Deterministic fault injection for source and ETL calls.

The paper's setting is an *outsourced* BI provider fed by autonomous,
independently operated sources (§2, Fig 1) — in production those sources
are slow, flaky, or down, and a privacy-preserving pipeline must degrade
without ever degrading *privacy*. This module makes such failures
scriptable and, crucially, **replayable**: a :class:`FaultPlan` is a pure
value (name, seed, specs), and a :class:`FaultInjector` derives every
fault decision from the plan seed plus a per-target call counter.
Re-running the same plan against the same call sequence reproduces the
same faults byte-for-byte, so chaos tests are ordinary regression tests.

Targets are identity strings: ``provider/table`` for source calls (the
same identities row lineage and audit footprints use) and ``etl/<op>``
for non-extract ETL operators. Specs may glob (``fnmatch``), so
``hospital/*`` or ``*`` work as expected.
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.errors import (
    FaultError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.resilience.retry import Deadline

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "named_plan",
    "NAMED_PLANS",
]

#: The failure modes an injected fault can take.
FAULT_KINDS = ("transient", "timeout", "outage", "slow")

_ERRORS: dict[str, type[FaultError]] = {
    "transient": TransientSourceError,
    "timeout": SourceTimeoutError,
    "outage": SourceUnavailableError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure rule against a target (or target glob).

    A spec fires on a call when any of its triggers matches the target's
    0-based call index: an explicit index in ``calls``, every index once
    ``after`` is reached (a permanent outage), or a seeded coin flip at
    ``rate``. ``kind`` selects the failure mode; ``slow`` injects
    ``delay_s`` of latency instead of raising (unless the active deadline
    cannot absorb it, in which case it becomes a timeout).
    """

    target: str
    kind: str = "transient"
    rate: float = 0.0
    calls: tuple[int, ...] = ()
    after: int | None = None
    delay_s: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind == "slow" and self.delay_s <= 0.0:
            raise FaultError("slow faults need delay_s > 0")
        if not (self.rate or self.calls or self.after is not None):
            raise FaultError(
                f"spec for {self.target!r} can never fire: "
                "set rate, calls, or after"
            )

    def triggers(self, index: int, coin: Callable[[], float]) -> bool:
        """Does this spec fire on call ``index``?

        ``coin`` is drawn exactly when ``rate`` is set, whether or not an
        explicit trigger already matched — keeping the per-target random
        stream aligned across replays regardless of which trigger wins.
        """
        hit = index in self.calls or (self.after is not None and index >= self.after)
        if self.rate:
            hit = (coin() < self.rate) or hit
        return hit

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"target": self.target, "kind": self.kind}
        if self.rate:
            out["rate"] = self.rate
        if self.calls:
            out["calls"] = list(self.calls)
        if self.after is not None:
            out["after"] = self.after
        if self.delay_s:
            out["delay_s"] = self.delay_s
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            target=data["target"],
            kind=data.get("kind", "transient"),
            rate=float(data.get("rate", 0.0)),
            calls=tuple(data.get("calls", ())),
            after=data.get("after"),
            delay_s=float(data.get("delay_s", 0.0)),
            detail=data.get("detail", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, immutable set of fault specs — the chaos script."""

    name: str
    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            name=data.get("name", "unnamed"),
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
        )


#: Built-in plans, by name. ``smoke`` is gentle enough that default retry
#: policies absorb it — the whole tier-1 suite runs under it in CI.
NAMED_PLANS: dict[str, FaultPlan] = {
    "none": FaultPlan("none"),
    "smoke": FaultPlan(
        "smoke",
        seed=11,
        specs=(
            FaultSpec(target="*", kind="transient", rate=0.03),
            FaultSpec(target="*", kind="timeout", rate=0.01),
        ),
    ),
    "flaky": FaultPlan(
        "flaky",
        seed=11,
        specs=(FaultSpec(target="*", kind="transient", rate=0.30),),
    ),
    "blackout": FaultPlan(
        "blackout",
        seed=11,
        specs=(
            FaultSpec(
                target="hospital/prescriptions",
                kind="outage",
                after=0,
                detail="hospital feed is down",
            ),
        ),
    ),
    "brownout": FaultPlan(
        "brownout",
        seed=11,
        specs=(
            FaultSpec(target="*", kind="slow", rate=0.30, delay_s=0.002),
            FaultSpec(target="*", kind="timeout", rate=0.10),
        ),
    ),
}


def named_plan(name: str) -> FaultPlan:
    """Look up a built-in plan; raises with the available names on a miss."""
    try:
        return NAMED_PLANS[name]
    except KeyError:
        raise FaultError(
            f"unknown fault plan {name!r}; available: {sorted(NAMED_PLANS)}"
        ) from None


class FaultInjector:
    """Applies a :class:`FaultPlan` to guarded call sites.

    Wrapped call sites invoke :meth:`guard` with their target identity
    right before doing the real work; the injector raises (or delays) per
    the plan. All state is a per-target call counter plus one seeded RNG
    per (plan seed, target) pair, so outcomes depend only on the plan and
    the per-target call order — :meth:`reset` rewinds for an exact replay.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self.injected: dict[tuple[str, str], int] = {}  # (target, kind) -> count

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        """Rewind all counters and RNG streams: the next run is a replay."""
        with self._lock:
            self._counts.clear()
            self._rngs.clear()
            self.injected.clear()

    def calls(self, target: str) -> int:
        """How many guarded calls ``target`` has made so far."""
        return self._counts.get(target, 0)

    def total_calls(self) -> int:
        """Guarded calls across all targets."""
        with self._lock:
            return sum(self._counts.values())

    def stats(self) -> dict[str, int]:
        """Injected fault counts as ``{"target|kind": n}``, sorted."""
        return {
            f"{target}|{kind}": n
            for (target, kind), n in sorted(self.injected.items())
        }

    def _rng(self, target: str) -> random.Random:
        rng = self._rngs.get(target)
        if rng is None:
            rng = self._rngs[target] = random.Random(f"{self.plan.seed}|{target}")
        return rng

    # -- the guard -----------------------------------------------------------

    def guard(self, target: str, *, deadline: Deadline | None = None) -> None:
        """Fail (or delay) this call if the plan says so.

        Raises the typed error of the first matching error spec; ``slow``
        specs sleep first and convert to :class:`SourceTimeoutError` when
        the remaining deadline cannot absorb the injected latency.
        """
        with self._lock:
            index = self._counts.get(target, 0)
            self._counts[target] = index + 1
            fired: list[FaultSpec] = []
            for spec in self.plan.specs:
                if not fnmatch.fnmatchcase(target, spec.target):
                    continue
                if spec.triggers(index, self._rng(target).random):
                    fired.append(spec)
        for spec in fired:
            self._record(target, spec.kind)
            if spec.kind == "slow":
                if deadline is not None and deadline.remaining() < spec.delay_s:
                    raise SourceTimeoutError(
                        f"injected latency ({spec.delay_s * 1000:.0f}ms) on "
                        f"{target} exceeds the remaining deadline"
                    )
                self._sleep(spec.delay_s)
                continue
            detail = f": {spec.detail}" if spec.detail else ""
            raise _ERRORS[spec.kind](
                f"injected {spec.kind} fault on {target} (call {index}){detail}"
            )

    def _record(self, target: str, kind: str) -> None:
        key = (target, kind)
        with self._lock:
            self.injected[key] = self.injected.get(key, 0) + 1
        if TRACER.active():
            instrument.FAULTS.inc(1, (kind,))
