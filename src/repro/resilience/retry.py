"""Retry policies: exponential backoff with jitter, deadlines, typed escalation.

The retry loop is where a *transient* failure either disappears or is
escalated into the terminal :class:`~repro.errors.SourceUnavailableError`
family the enforcement layers fail closed on. Three properties matter:

* **determinism** — jitter is drawn from a seeded RNG keyed by the call
  target, so a replayed chaos run schedules the same sleeps;
* **deadline propagation** — a :class:`Deadline` created at the top of a
  delivery or ETL flow flows down through every retry loop; sleeps are
  capped to the remaining budget and expiry raises
  :class:`~repro.errors.DeadlineExceededError` instead of sleeping past it;
* **typed outcomes** — a retryable error that survives every attempt is
  re-raised as :class:`~repro.errors.RetryExhaustedError` (a
  ``SourceUnavailableError``) with the last cause chained, so callers
  never need to distinguish "down" from "still failing after N tries".
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.errors import (
    DeadlineExceededError,
    RetryExhaustedError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.obs import instrument
from repro.obs.trace import TRACER

__all__ = ["Deadline", "RetryPolicy", "backoff_schedule", "call_with_retry"]

T = TypeVar("T")


class Deadline:
    """A monotonic-clock time budget, propagated down a call tree.

    Created once at the operation boundary (``Deadline(seconds)``) and
    passed by reference; every layer asks :meth:`remaining` or
    :meth:`check` against the same absolute expiry, so nested retries
    cannot each spend the full budget.
    """

    __slots__ = ("budget_s", "_expires", "_clock")

    def __init__(
        self,
        budget_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s <= 0:
            raise DeadlineExceededError("deadline budget must be positive")
        self.budget_s = budget_s
        self._clock = clock
        self._expires = clock() + budget_s

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self._expires - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_s:.3f}s deadline"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget_s:.3f}s, remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter.

    Attempt ``i`` (0-based) sleeps ``base_delay_s * multiplier**i`` capped
    at ``max_delay_s``, then spread by ``jitter`` (a ±fraction, so 0.5
    means the sleep lands in [0.5x, 1.5x]). Only ``retry_on`` errors are
    retried; everything else propagates on the first failure.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_on: tuple[type[BaseException], ...] = (
        TransientSourceError,
        SourceTimeoutError,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


def backoff_schedule(
    policy: RetryPolicy, *, seed: Any = 0
) -> tuple[float, ...]:
    """The sleep before each retry, deterministically jittered by ``seed``.

    Length is ``max_attempts - 1`` (no sleep after the final attempt).
    """
    rng = random.Random(f"backoff|{seed}")
    out: list[float] = []
    for i in range(policy.max_attempts - 1):
        delay = min(policy.max_delay_s, policy.base_delay_s * policy.multiplier**i)
        if policy.jitter:
            delay *= 1.0 - policy.jitter + 2.0 * policy.jitter * rng.random()
        out.append(delay)
    return tuple(out)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    target: str = "",
    deadline: Deadline | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` under ``policy``; escalate or propagate typed failures.

    When observability is on, each attempt runs under a
    ``resilience.attempt`` span tagged with the target and the 1-based
    attempt number, and every loop exit lands in the
    ``repro_retry_attempts_total`` counter (``first_try`` | ``recovered``
    | ``exhausted`` | ``aborted``).
    """
    pol = policy if policy is not None else RetryPolicy()
    # Computed only once a retry is actually needed: the success path must
    # not pay for seeding an RNG it never draws from.
    schedule: tuple[float, ...] | None = None
    observing = TRACER.active()
    last: BaseException | None = None
    for attempt in range(1, pol.max_attempts + 1):
        if deadline is not None:
            deadline.check(target or "retried call")
        try:
            if observing:
                with TRACER.span(
                    "resilience.attempt", {"target": target, "attempt": attempt}
                ):
                    result = fn()
            else:
                result = fn()
        except pol.retry_on as exc:
            last = exc
            if attempt == pol.max_attempts:
                break
            if schedule is None:
                schedule = backoff_schedule(pol, seed=target)
            delay = schedule[attempt - 1]
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    break
                delay = min(delay, remaining)
            if delay > 0.0:
                sleep(delay)
            continue
        except BaseException:
            if observing:
                instrument.RETRIES.inc(1, ("aborted",))
            raise
        if observing:
            instrument.RETRIES.inc(
                1, ("first_try" if attempt == 1 else "recovered",)
            )
        return result
    if observing:
        instrument.RETRIES.inc(1, ("exhausted",))
    if deadline is not None and deadline.expired:
        raise DeadlineExceededError(
            f"{target or 'retried call'} ran out of deadline "
            f"after {attempt} attempt(s)"
        ) from last
    raise RetryExhaustedError(
        f"{target or 'retried call'} still failing after "
        f"{pol.max_attempts} attempt(s): {last}"
    ) from last
