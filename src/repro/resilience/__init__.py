"""repro.resilience — fault injection, retry/backoff, and circuit breaking.

The outsourced BI provider of the paper's Fig 1 is fed by autonomous
agencies whose systems fail independently; this package is the robustness
layer that keeps the pipeline's *privacy* guarantees intact while its
*availability* degrades. It provides:

* :mod:`repro.resilience.faults` — a deterministic, seeded, replayable
  fault-injection harness (:class:`FaultPlan` / :class:`FaultInjector`)
  over source and ETL call targets;
* :mod:`repro.resilience.retry` — exponential backoff with seeded jitter,
  per-call deadlines with propagation (:class:`Deadline`), and typed
  escalation to :class:`~repro.errors.SourceUnavailableError`;
* :mod:`repro.resilience.breaker` — per-source closed/open/half-open
  circuit breakers;
* :mod:`repro.resilience.runtime` — the composed call path
  (:class:`ResiliencePolicy`, :class:`DeliveryResilience`) plus the
  ``REPRO_FAULTS`` process default;
* :mod:`repro.resilience.chaos` — the chaos workload runner behind
  ``repro chaos``.

The contract enforced downstream (``etl/flow.py``, ``reports/delivery.py``)
is **fail-closed degradation**: when a source is down, a report is either
refused with a typed error or delivered in an explicitly marked degraded
form whose rows are a strict subset of the healthy delivery — never stale
or unfiltered data that skipped source-level PLA filtering.
"""

from __future__ import annotations

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosOutcome,
    ChaosResult,
    render_outcome_table,
    run_chaos,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NAMED_PLANS,
    named_plan,
)
from repro.resilience.retry import (
    Deadline,
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
)
from repro.resilience.runtime import (
    DeliveryResilience,
    ResiliencePolicy,
    active_injector,
    default_delivery_resilience,
    default_policy,
    install,
    uninstall,
)

__all__ = [
    "FAULT_KINDS",
    "NAMED_PLANS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "named_plan",
    "Deadline",
    "RetryPolicy",
    "backoff_schedule",
    "call_with_retry",
    "BreakerState",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerRegistry",
    "ResiliencePolicy",
    "DeliveryResilience",
    "install",
    "uninstall",
    "active_injector",
    "default_policy",
    "default_delivery_resilience",
    "ChaosOutcome",
    "ChaosResult",
    "run_chaos",
    "render_outcome_table",
]
