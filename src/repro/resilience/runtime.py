"""The composed call path: injector → retry → breaker, and process defaults.

:class:`ResiliencePolicy` is the one object ETL flows and the delivery
service thread a guarded call through. Layering, outermost first:

* the **circuit breaker** for the target rejects immediately while open —
  a down source costs one exception, not ``max_attempts`` timeouts;
* the **retry loop** absorbs transient/timeout failures with backoff,
  capped by the propagated deadline;
* the **fault injector** (when installed) gets the chance to fail the
  call before the real work runs.

``REPRO_FAULTS=<plan>`` installs a process-default injector at import
time (e.g. ``smoke`` in CI, which the default retry policy absorbs), and
:func:`default_policy` / :func:`default_delivery_resilience` hand it to
call sites that were not given an explicit policy. Without the
environment variable both return ``None`` and the wrapped code paths are
skipped entirely — the disabled path stays free.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.resilience.breaker import BreakerConfig, BreakerRegistry
from repro.resilience.faults import FaultInjector, named_plan
from repro.resilience.retry import Deadline, RetryPolicy, call_with_retry

__all__ = [
    "ResiliencePolicy",
    "DeliveryResilience",
    "install",
    "uninstall",
    "active_injector",
    "default_policy",
    "default_delivery_resilience",
]

T = TypeVar("T")

#: Delivery degradation modes: refuse outright, or deliver minus the
#: affected source's rows (explicitly marked, audited with the cause).
DEGRADATION_MODES = ("refuse", "degrade")


@dataclass
class ResiliencePolicy:
    """Injector + retry + breaker, composed around one callable."""

    injector: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breakers: BreakerRegistry | None = None
    sleep: Callable[[float], None] = time.sleep

    def call(
        self,
        target: str,
        fn: Callable[[], T],
        *,
        deadline: Deadline | None = None,
    ) -> T:
        """Run ``fn`` as a guarded source/ETL call against ``target``."""

        def guarded() -> T:
            if self.injector is not None:
                self.injector.guard(target, deadline=deadline)
            return fn()

        def attempt() -> T:
            return call_with_retry(
                guarded,
                self.retry,
                target=target,
                deadline=deadline,
                sleep=self.sleep,
            )

        if self.breakers is not None:
            return self.breakers.get(target).call(attempt)
        return attempt()


@dataclass
class DeliveryResilience:
    """What the delivery service needs: a call policy plus the failure mode.

    ``mode="refuse"`` (the fail-closed default) raises
    :class:`~repro.errors.SourceUnavailableError` when any source in the
    report's lineage footprint is down; ``mode="degrade"`` delivers an
    explicitly marked instance with that source's rows dropped entirely.
    Either way nothing stale or unfiltered is ever substituted.
    """

    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    mode: str = "refuse"
    deadline_budget_s: float | None = None
    #: The simulated remote availability check, one per source identity.
    #: Replace to integrate a real transport; the default is a no-op the
    #: injector (and breaker) wrap — exactly a ping.
    probe: Callable[[str], None] = lambda source: None

    def __post_init__(self) -> None:
        if self.mode not in DEGRADATION_MODES:
            raise ValueError(
                f"unknown degradation mode {self.mode!r}; "
                f"expected one of {DEGRADATION_MODES}"
            )

    def new_deadline(self) -> Deadline | None:
        if self.deadline_budget_s is None:
            return None
        return Deadline(self.deadline_budget_s)

    def check_source(self, source: str, *, deadline: Deadline | None = None) -> None:
        """Probe one source through the full injector→retry→breaker path."""
        self.policy.call(source, lambda: self.probe(source), deadline=deadline)


# ---------------------------------------------------------------------------
# Process-default injector (REPRO_FAULTS)
# ---------------------------------------------------------------------------

_DEFAULT_INJECTOR: FaultInjector | None = None


def install(injector: FaultInjector | None) -> None:
    """Set (or clear, with ``None``) the process-default fault injector."""
    global _DEFAULT_INJECTOR
    _DEFAULT_INJECTOR = injector


def uninstall() -> None:
    install(None)


def active_injector() -> FaultInjector | None:
    """The process-default injector, if one is installed."""
    return _DEFAULT_INJECTOR


def default_policy() -> ResiliencePolicy | None:
    """A policy around the process-default injector; ``None`` when inactive.

    Used by call sites not given an explicit policy. A fresh
    :class:`BreakerRegistry` per policy keeps independently constructed
    flows/services from tripping each other's breakers.
    """
    injector = active_injector()
    if injector is None:
        return None
    return ResiliencePolicy(injector=injector, breakers=BreakerRegistry(BreakerConfig()))


def default_delivery_resilience() -> DeliveryResilience | None:
    """Delivery-side default: fail-closed refusal around the env injector."""
    policy = default_policy()
    if policy is None:
        return None
    return DeliveryResilience(policy=policy, mode="refuse")


def _init_from_env() -> None:
    name = os.environ.get("REPRO_FAULTS", "").strip()
    if name and name.lower() not in {"0", "off", "none", "false"}:
        install(FaultInjector(named_plan(name)))


_init_from_env()
