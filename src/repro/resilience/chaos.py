"""The chaos workload: the full delivery sweep under a named fault plan.

``repro chaos --plan blackout`` answers the operational question the
resilience layer exists for: *if these sources go down, what do the
consumers actually receive?* It delivers every report in the scenario's
catalog through the injector→retry→breaker path and tabulates, per report,
whether it was delivered intact, delivered degraded (and what was
dropped), refused for compliance, or refused for availability.

Everything is deterministic: outcomes depend only on the plan's seed and
the per-target call order, so re-running the same plan reproduces the same
:meth:`ChaosResult.as_dict` byte for byte — the property the replay test
pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ComplianceError, SourceUnavailableError
from repro.resilience.breaker import BreakerConfig, BreakerRegistry
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import DeliveryResilience, ResiliencePolicy

__all__ = ["ChaosOutcome", "ChaosResult", "run_chaos", "render_outcome_table"]

#: Per-report delivery outcomes, in severity order.
OUTCOMES = ("delivered", "degraded", "refused", "unavailable")


@dataclass(frozen=True)
class ChaosOutcome:
    """What one report's delivery turned into under the fault plan."""

    report: str
    outcome: str  # one of OUTCOMES
    rows: int = 0
    dropped: int = 0  # rows removed by degradation (not PLA suppression)
    sources: tuple[str, ...] = ()  # down sources, for degraded deliveries
    cause: str = ""  # refusal reason / fault cause

    def as_dict(self) -> dict:
        return {
            "report": self.report,
            "outcome": self.outcome,
            "rows": self.rows,
            "dropped": self.dropped,
            "sources": list(self.sources),
            "cause": self.cause,
        }


@dataclass
class ChaosResult:
    """One chaos run: per-report outcomes plus harness-side statistics."""

    plan: str
    seed: int
    mode: str
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    faults_injected: dict[str, int] = field(default_factory=dict)
    breaker_states: dict[str, str] = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        out = {outcome: 0 for outcome in OUTCOMES}
        for result in self.outcomes:
            out[result.outcome] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        shown = ", ".join(f"{v} {k}" for k, v in counts.items() if v)
        return (
            f"chaos[{self.plan} seed={self.seed} mode={self.mode}]: "
            f"{len(self.outcomes)} report(s): {shown or 'nothing delivered'}"
        )

    def as_dict(self) -> dict:
        """Canonical form — equal dicts ⇔ identical replay."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "mode": self.mode,
            "outcomes": [o.as_dict() for o in self.outcomes],
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "breaker_states": dict(sorted(self.breaker_states.items())),
        }


def run_chaos(
    plan: FaultPlan,
    *,
    scenario=None,
    mode: str = "degrade",
    retry: RetryPolicy | None = None,
    breaker: BreakerConfig | None = None,
    role_to_user: dict[str, str] | None = None,
) -> ChaosResult:
    """Deliver the whole report catalog under ``plan`` and tabulate.

    Backoff sleeps are disabled (the injector's faults are simulated, so
    waiting on them measures nothing); the retry *schedule* still runs, so
    attempt counts and escalations match a wall-clock deployment.
    """
    if scenario is None:
        from repro.simulation import build_scenario

        scenario = build_scenario()
    if role_to_user is None:
        from repro.cli import ROLE_TO_USER

        role_to_user = ROLE_TO_USER

    injector = FaultInjector(plan, sleep=lambda _s: None)
    policy = ResiliencePolicy(
        injector=injector,
        retry=retry if retry is not None else RetryPolicy(),
        breakers=BreakerRegistry(breaker if breaker is not None else BreakerConfig()),
        sleep=lambda _s: None,
    )
    service = scenario.delivery_service()
    service.resilience = DeliveryResilience(policy=policy, mode=mode)

    result = ChaosResult(plan=plan.name, seed=plan.seed, mode=mode)
    for definition in scenario.report_catalog.all_current():
        role = sorted(definition.audience)[0]
        user = role_to_user.get(role)
        if user is None:
            result.outcomes.append(
                ChaosOutcome(
                    report=definition.name,
                    outcome="refused",
                    cause=f"no user for role {role!r}",
                )
            )
            continue
        try:
            instance = service.deliver(
                definition.name, user=user, purpose=definition.purpose
            )
        except SourceUnavailableError as exc:
            result.outcomes.append(
                ChaosOutcome(
                    report=definition.name,
                    outcome="unavailable",
                    cause=str(exc),
                )
            )
            continue
        except ComplianceError as exc:
            result.outcomes.append(
                ChaosOutcome(
                    report=definition.name, outcome="refused", cause=str(exc)
                )
            )
            continue
        if instance.degraded:
            result.outcomes.append(
                ChaosOutcome(
                    report=definition.name,
                    outcome="degraded",
                    rows=len(instance),
                    dropped=instance.suppressed_rows,
                    sources=instance.degraded_sources,
                    cause=instance.fault_cause,
                )
            )
        else:
            result.outcomes.append(
                ChaosOutcome(
                    report=definition.name,
                    outcome="delivered",
                    rows=len(instance),
                )
            )
    result.faults_injected = injector.stats()
    assert policy.breakers is not None
    result.breaker_states = policy.breakers.states()
    return result


def render_outcome_table(result: ChaosResult) -> str:
    """The ``repro chaos`` outcome table, fixed-width text."""
    headers = ("report", "outcome", "rows", "dropped", "cause")
    rows = [
        (
            o.report,
            o.outcome,
            str(o.rows) if o.outcome in ("delivered", "degraded") else "-",
            str(o.dropped) if o.outcome == "degraded" else "-",
            _truncate(o.cause, 60),
        )
        for o in result.outcomes
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    )
    lines.append("")
    lines.append(result.summary())
    if result.faults_injected:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(result.faults_injected.items()))
        lines.append(f"faults injected: {shown}")
    open_breakers = {
        s: st for s, st in sorted(result.breaker_states.items()) if st != "closed"
    }
    if open_breakers:
        shown = ", ".join(f"{s}: {st}" for s, st in open_breakers.items())
        lines.append(f"breakers: {shown}")
    return "\n".join(lines)


def _truncate(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"
