"""Per-source circuit breakers: stop hammering a source that is down.

Classic closed → open → half-open automaton, one breaker per source
identity. ``failure_threshold`` consecutive failures open the circuit;
while open every call is rejected immediately with
:class:`~repro.errors.CircuitOpenError` (a ``SourceUnavailableError``, so
delivery fails closed exactly as for a direct outage); after
``cooldown_s`` the breaker half-opens and admits up to
``half_open_max_calls`` probes — a success closes it, a failure re-opens
it and restarts the cool-down. The clock is injectable so the state
machine is unit-testable without real waiting.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.errors import CircuitOpenError, FaultError
from repro.obs import instrument
from repro.obs.trace import TRACER

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker", "BreakerRegistry"]

T = TypeVar("T")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of each state (exported as ``repro_breaker_state``).
_STATE_VALUE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of the state machine."""

    failure_threshold: int = 5
    cooldown_s: float = 30.0
    half_open_max_calls: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise FaultError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise FaultError("cooldown_s must be positive")
        if self.half_open_max_calls < 1:
            raise FaultError("half_open_max_calls must be >= 1")


class CircuitBreaker:
    """One source's breaker; thread-safe, clock-injectable."""

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state, advancing OPEN → HALF_OPEN after the cool-down."""
        with self._lock:
            if (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.config.cooldown_s
            ):
                self._transition(BreakerState.HALF_OPEN)
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now? (Reserves a half-open slot.)"""
        with self._lock:
            state = self.state
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.OPEN:
                return False
            if self._half_open_inflight >= self.config.half_open_max_calls:
                return False
            self._half_open_inflight += 1
            return True

    # -- outcomes ------------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._half_open_inflight = 0
                self._transition(BreakerState.CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._half_open_inflight = 0
                self._open()
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._open()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker.

        Rejected calls raise :class:`CircuitOpenError` without invoking
        ``fn``; only :class:`~repro.errors.FaultError` outcomes count as
        breaker failures (a compliance refusal is not a source failure).
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for {self.name} is {self.state.value}; "
                f"call rejected without contacting the source"
            )
        try:
            result = fn()
        except FaultError:
            self.record_failure()
            raise
        except BaseException:
            with self._lock:  # release any half-open slot we reserved
                self._half_open_inflight = max(0, self._half_open_inflight - 1)
            raise
        self.record_success()
        return result

    # -- transitions ---------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, to: BreakerState) -> None:
        if self._state is to:
            return
        self._state = to
        if TRACER.active():
            instrument.BREAKER_TRANSITIONS.inc(1, (to.value,))
            instrument.BREAKER_STATE.set(_STATE_VALUE[to], (self.name,))


class BreakerRegistry:
    """Get-or-create breakers keyed by source identity."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    name, self.config, clock=self._clock
                )
            return breaker

    def states(self) -> dict[str, str]:
        """Current state name per known source, sorted — for reporting."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.name: b.state.value for b in sorted(breakers, key=lambda b: b.name)}

    def __iter__(self) -> Iterator[CircuitBreaker]:
        with self._lock:
            return iter(list(self._breakers.values()))

    def __len__(self) -> int:
        return len(self._breakers)
