"""Dialect layer: normalize each SQL flavor onto the shared token stream.

A :class:`Dialect` says how to *tokenize* (which identifier quoting forms
are legal) and how to *normalize* the resulting token stream onto the ANSI
core the parser understands. Normalizations are deliberately shallow —
token-level rewrites, never semantic guesses — and every rewrite is
recorded as a :class:`NormalizationNote` so ingestion can surface an ING006
informational diagnostic: the auditor sees exactly where the text they
submitted differs from the statement that was analyzed.

Supported flavors:

========  ==========================  =====================================
dialect   identifier quoting          normalizations
========  ==========================  =====================================
ansi      ``"name"``                  none
postgres  ``"name"``                  ``expr::type`` casts dropped
tsql      ``[name]`` and ``"name"``   ``SELECT TOP n`` rewritten to LIMIT
========  ==========================  =====================================

Dropping a Postgres cast is sound for analysis: casts change a value's
*type*, never which base cells it came from, so lineage and region
reasoning are unaffected. ``TOP n`` → ``LIMIT n`` is the same row-limiting
operator in different clothes; the rewrite moves it to the statement tail
where the shared grammar expects it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IngestError
from repro.relational.sqlparser import Token

__all__ = ["Dialect", "DIALECTS", "NormalizationNote", "normalize_tokens"]


@dataclass(frozen=True)
class NormalizationNote:
    """One dialect rewrite applied during ingestion (for ING006)."""

    construct: str  # e.g. "::cast", "TOP n", "quoted identifier"
    detail: str
    offset: int  # byte offset in the statement's source text


@dataclass(frozen=True)
class Dialect:
    """One SQL flavor the ingestion front-end accepts."""

    name: str
    description: str
    quoted_idents: bool = False
    bracket_idents: bool = False

    def normalize(
        self, tokens: list[Token]
    ) -> tuple[list[Token], list[NormalizationNote]]:
        """Rewrite ``tokens`` onto the ANSI core; notes describe each edit."""
        notes: list[NormalizationNote] = []
        out = list(tokens)
        if self.name == "tsql":
            out = _rewrite_top(out, notes)
        if self.name == "postgres":
            out = _drop_casts(out, notes)
        for token in out:
            if token.kind == "ident" and token.quoted:
                notes.append(
                    NormalizationNote(
                        construct="quoted identifier",
                        detail=f"identifier {token.text!r} unquoted",
                        offset=token.pos,
                    )
                )
        return out, notes


DIALECTS: dict[str, Dialect] = {
    "ansi": Dialect(
        name="ansi",
        description='ANSI core; "quoted" identifiers allowed',
        quoted_idents=True,
    ),
    "postgres": Dialect(
        name="postgres",
        description='Postgres-flavored: "quoted" identifiers, ::type casts',
        quoted_idents=True,
    ),
    "tsql": Dialect(
        name="tsql",
        description="T-SQL-flavored: [bracketed] identifiers, SELECT TOP n",
        quoted_idents=True,
        bracket_idents=True,
    ),
}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name; raise :class:`IngestError` on unknown."""
    try:
        return DIALECTS[name]
    except KeyError:
        raise IngestError(
            f"unknown dialect {name!r}; expected one of {sorted(DIALECTS)}"
        ) from None


def normalize_tokens(
    tokens: list[Token], dialect: Dialect
) -> tuple[list[Token], list[NormalizationNote]]:
    """Module-level convenience wrapper around :meth:`Dialect.normalize`."""
    return dialect.normalize(tokens)


def _rewrite_top(
    tokens: list[Token], notes: list[NormalizationNote]
) -> list[Token]:
    """``SELECT TOP n ...`` → ``SELECT ... LIMIT n`` (per SELECT scope).

    The LIMIT pair is spliced at the end of the SELECT's own scope: just
    before the ``)`` that closes the subquery the SELECT sits in, or just
    before the statement's ``end`` token at top level — a ``TOP`` inside a
    FROM-subquery or scalar subquery must not leak its LIMIT onto the
    enclosing statement. Pending splices are tracked per paren depth, so
    nested subqueries each get their own. T-SQL puts TOP directly after
    SELECT (and after DISTINCT), which is the only position rewritten — a
    TOP anywhere else is left for the parser to reject; likewise two TOPs
    in one scope (UNION branches) splice two LIMIT pairs, which the parser
    rejects rather than this pass guessing a combined meaning.
    """
    out: list[Token] = []
    pending: dict[int, list[Token]] = {}
    depth = 0
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.kind == "keyword" and token.text == "select":
            out.append(token)
            i += 1
            if (
                i < len(tokens)
                and tokens[i].kind == "keyword"
                and tokens[i].text == "distinct"
            ):
                out.append(tokens[i])
                i += 1
            if (
                i + 1 < len(tokens)
                and tokens[i].kind == "keyword"
                and tokens[i].text == "top"
                and tokens[i + 1].kind == "number"
            ):
                top, n = tokens[i], tokens[i + 1]
                pending.setdefault(depth, []).extend(
                    (
                        Token("keyword", "limit", top.pos),
                        Token("number", n.text, n.pos),
                    )
                )
                notes.append(
                    NormalizationNote(
                        construct="TOP n",
                        detail=f"SELECT TOP {n.text} rewritten to LIMIT {n.text}",
                        offset=top.pos,
                    )
                )
                i += 2
            continue
        if token.kind == "op" and token.text == "(":
            depth += 1
        elif token.kind == "op" and token.text == ")":
            out.extend(pending.pop(depth, ()))
            depth -= 1
        elif token.kind == "end":
            out.extend(pending.pop(depth, ()))
        out.append(token)
        i += 1
    return out


def _drop_casts(
    tokens: list[Token], notes: list[NormalizationNote]
) -> list[Token]:
    """Drop ``::type`` suffixes (Postgres casts) from the token stream."""
    out: list[Token] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if (
            token.kind == "op"
            and token.text == "::"
            and i + 1 < len(tokens)
            and tokens[i + 1].kind in ("ident", "keyword")
        ):
            notes.append(
                NormalizationNote(
                    construct="::cast",
                    detail=f"cast ::{tokens[i + 1].text} dropped "
                    "(casts do not change lineage)",
                    offset=token.pos,
                )
            )
            i += 2
            continue
        out.append(token)
        i += 1
    return out
