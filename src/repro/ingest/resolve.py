"""Name resolution for ingested statements, with typed ING diagnostics.

Resolution runs against a :class:`Scope`: the deployment's star-schema
catalog (tables, views, meta-report views) plus the suite's own definitions
in file order. Every failure is a typed diagnostic, never an exception —
ingestion fails closed per statement, not per suite:

* ING001 (error) — a FROM/JOIN names a relation nobody defines;
* ING002 (error) — a column reference nothing in scope provides;
* ING003 (error) — an unqualified column matches several FROM relations;
* ING009 (error) — UNION branches disagree on column count.

The checks deliberately mirror how the engine and the dataflow pass will
later interpret the query (joins concatenate outputs, set operations align
positionally), so a statement that resolves cleanly here cannot blow up as
an untyped error further down the pipeline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.relational.catalog import Catalog
from repro.relational.query import Query

__all__ = ["Scope", "resolve_query"]

_MAX_DEPTH = 32


class Scope:
    """What an ingested statement can see: catalog + earlier suite views."""

    def __init__(
        self, catalog: Catalog, suite_views: dict[str, Query] | None = None
    ) -> None:
        self.catalog = catalog
        self.suite_views: dict[str, Query] = dict(suite_views or {})

    def add_view(self, name: str, query: Query) -> None:
        self.suite_views[name] = query

    def has(self, name: str) -> bool:
        return (
            name in self.suite_views
            or self.catalog.is_table(name)
            or self.catalog.is_view(name)
        )

    def outputs(self, name: str, *, _depth: int = 0) -> tuple[str, ...] | None:
        """Output column names of a relation; ``None`` if unresolvable."""
        if _depth > _MAX_DEPTH:
            return None
        if name in self.suite_views:
            return self.query_outputs(self.suite_views[name], _depth=_depth + 1)
        if self.catalog.is_table(name):
            return tuple(self.catalog.table(name).schema.names)
        if self.catalog.is_view(name):
            return self.query_outputs(
                self.catalog.view(name).query, _depth=_depth + 1
            )
        return None

    def query_outputs(
        self, query: Query, *, _depth: int = 0
    ) -> tuple[str, ...] | None:
        """Output column names of a query; expands bare ``SELECT *``."""
        names = query.output_names()
        if names is not None:
            return names
        parts: list[str] = []
        for relation in (query.source,) + tuple(j.table for j in query.joins):
            outs = self.outputs(relation, _depth=_depth + 1)
            if outs is None:
                return None
            parts.extend(outs)
        return tuple(parts)


def resolve_query(
    query: Query, scope: Scope, *, location: str
) -> list[Diagnostic]:
    """All resolution diagnostics for ``query`` (head and UNION branches)."""
    out: list[Diagnostic] = []
    _resolve_block(query, scope, location, out)

    # Positional set-operation alignment (ING009): only meaningful when
    # both sides resolved; unresolvable sides already carry their own
    # errors above.
    head = replace(query, set_ops=())
    head_outs = scope.query_outputs(head)
    for clause in query.set_ops:
        branch_outs = scope.query_outputs(clause.query)
        if head_outs is None or branch_outs is None:
            continue
        if len(head_outs) != len(branch_outs):
            out.append(
                Diagnostic(
                    code="ING009",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"UNION branches produce {len(head_outs)} vs "
                        f"{len(branch_outs)} column(s); a positional union "
                        "cannot align them"
                    ),
                    fix_hint="give every branch the same SELECT list width",
                )
            )
    return out


def _resolve_block(
    query: Query, scope: Scope, location: str, out: list[Diagnostic]
) -> None:
    block = replace(query, set_ops=())
    relations = (block.source,) + tuple(j.table for j in block.joins)

    missing = [name for name in relations if not scope.has(name)]
    for name in missing:
        out.append(
            Diagnostic(
                code="ING001",
                severity=Severity.ERROR,
                location=location,
                message=f"unknown relation {name!r}: not a star-schema "
                "table, catalog view, or suite definition",
                fix_hint="check the spelling, or define the view earlier "
                "in the suite",
            )
        )
    if not missing:
        _resolve_columns(block, relations, scope, location, out)

    for clause in query.set_ops:
        _resolve_block(clause.query, scope, location, out)


def _resolve_columns(
    block: Query,
    relations: tuple[str, ...],
    scope: Scope,
    location: str,
    out: list[Diagnostic],
) -> None:
    provided: dict[str, list[str]] = {}
    for relation in relations:
        outs = scope.outputs(relation)
        if outs is None:
            # A relation in scope but with an unresolvable definition: the
            # statement that defined it already carries the diagnostics.
            return
        for column in outs:
            provided.setdefault(column, []).append(relation)

    # Aggregate and projection aliases name the block's own outputs;
    # HAVING/ORDER BY may reference them even though no relation provides
    # them (their *inputs* are still checked via the expressions' columns).
    own_outputs = {spec.alias for spec in block.aggregates} | {
        item[0] for item in block.select if not isinstance(item, str)
    }

    for name in sorted(block.columns_used()):
        if name in own_outputs:
            continue
        if "." in name:
            relation, column = name.rsplit(".", 1)
            if relation not in relations:
                out.append(
                    Diagnostic(
                        code="ING002",
                        severity=Severity.ERROR,
                        location=location,
                        message=f"qualified name {name!r} references a "
                        "relation that is not in this statement's FROM",
                        fix_hint="qualify with a relation the block joins",
                    )
                )
            elif column not in (scope.outputs(relation) or ()):
                out.append(
                    Diagnostic(
                        code="ING002",
                        severity=Severity.ERROR,
                        location=location,
                        message=f"unknown column {name!r}: "
                        f"{relation!r} does not provide {column!r}",
                        fix_hint=f"available: {', '.join(scope.outputs(relation) or ())}",
                    )
                )
            continue
        owners = provided.get(name, [])
        if not owners:
            out.append(
                Diagnostic(
                    code="ING002",
                    severity=Severity.ERROR,
                    location=location,
                    message=f"unknown column {name!r}: no relation in this "
                    "statement's FROM provides it",
                    fix_hint=f"relations in scope: {', '.join(relations)}",
                )
            )
        elif len(owners) > 1:
            out.append(
                Diagnostic(
                    code="ING003",
                    severity=Severity.ERROR,
                    location=location,
                    message=f"ambiguous column {name!r}: provided by "
                    f"{', '.join(sorted(set(owners)))}",
                    fix_hint="qualify the name as relation.column",
                )
            )
