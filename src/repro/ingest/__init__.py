"""Multi-dialect SQL ingestion: audit report suites you didn't write.

The rest of the library assumes reports are authored in-process against the
:class:`~repro.relational.query.Query` builder. Real BI estates are not like
that: the interesting privacy questions are about the pile of ``.sql`` files
some other team wrote, in whatever dialect their tooling emits. This package
is the static-analysis front-end that closes the gap:

* :mod:`repro.ingest.dialects` — per-dialect token normalization (ANSI,
  Postgres-flavored, T-SQL-flavored) onto one shared token vocabulary;
* :mod:`repro.ingest.parser` — a statement-level parser extending the base
  SQL grammar with ``CREATE VIEW``, ``WITH`` (CTEs), ``UNION [ALL]``, and
  nested subqueries in FROM, compiled to the ordinary Query AST (CTEs and
  FROM-subqueries become synthetic views, so every downstream pass sees
  plain view chains);
* :mod:`repro.ingest.resolve` — name resolution against the star schema
  plus the suite's own definitions, with typed ING diagnostics;
* :mod:`repro.ingest.compile` — the suite driver: parse → resolve →
  static lineage → :class:`~repro.reports.definition.ReportDefinition`\\ s
  auditable by ``repro lint`` and ``repro verify``;
* :mod:`repro.ingest.render` — a SQL renderer whose output reparses to an
  equal query (the round-trip property the tests enforce).

Everything the grammar cannot model fails *closed*: an unsupported
construct, unknown name, or ambiguous reference yields a typed ING
diagnostic and excludes the statement from the compiled catalog — it never
silently narrows to something checkable.
"""

from repro.ingest.compile import (
    IngestedStatement,
    IngestResult,
    emit_deployment,
    ingest_suite,
)
from repro.ingest.dialects import DIALECTS, Dialect
from repro.ingest.parser import SuiteParser, parse_suite_text
from repro.ingest.render import render_expr, render_query
from repro.ingest.resolve import Scope, resolve_query

__all__ = [
    "DIALECTS",
    "Dialect",
    "IngestResult",
    "IngestedStatement",
    "Scope",
    "SuiteParser",
    "emit_deployment",
    "ingest_suite",
    "parse_suite_text",
    "render_expr",
    "render_query",
    "resolve_query",
]
