"""Statement-level parser for ingested SQL suites.

Extends the base single-block grammar of
:mod:`repro.relational.sqlparser` with the statement forms external report
suites actually use::

    CREATE VIEW name AS <set-query> ;
    WITH name AS ( <set-query> ) [, name2 AS ( ... )] <set-query> ;
    <set-query> ;                               -- a report

where ``<set-query>`` is one or more SELECT blocks combined with
``UNION [ALL]``, a FROM item may be a parenthesized subquery with an
alias, and a predicate may compare against a scalar subquery (a single-row
aggregate). CTEs, FROM-subqueries, and scalar subqueries are *hoisted into
synthetic views* (name-mangled per statement, so suites cannot collide) —
scalar subqueries additionally splice in as 1-row CROSS JOINs — which
keeps the compiled artifact inside the plain Query-over-view-chains
fragment every downstream pass — lineage, derivability, region extraction,
all engines — already understands. Nothing downstream needs to know
subqueries exist.

Metadata rides in comment directives immediately preceding a statement::

    -- report: top_drugs
    -- title: Most prescribed drugs
    -- audience: analyst auditor
    -- purpose: care/quality
    SELECT drug, COUNT(*) AS n FROM wide_prescriptions GROUP BY drug;

A file-level ``-- dialect: postgres`` directive (before the first
statement) selects the dialect when the caller does not force one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.errors import ParseError
from repro.relational.expressions import Col, Expr
from repro.relational.query import Query
from repro.relational.sqlparser import Parser, Token, tokenize
from repro.ingest.dialects import Dialect, NormalizationNote

__all__ = ["RawStatement", "SuiteParser", "parse_suite_text", "split_statements"]

_DIRECTIVE_RE = re.compile(r"^\s*--\s*([a-z_]+)\s*:\s*(.+?)\s*$", re.MULTILINE)


@dataclass
class RawStatement:
    """One parsed suite statement, before name resolution."""

    kind: str  # "view" | "report"
    name: str  # view name, or report name from the directive (may be "")
    query: Query
    line: int  # 1-based line of the statement's first token
    source_sql: str  # verbatim statement text (pre-normalization)
    directives: dict[str, str] = field(default_factory=dict)
    notes: list[NormalizationNote] = field(default_factory=list)
    #: CTEs, FROM-subqueries, and scalar subqueries hoisted out of this
    #: statement, in definition order (inner before outer, so registration
    #: just works).
    synthetic_views: list[tuple[str, Query]] = field(default_factory=list)


class SuiteParser(Parser):
    """The ingestion grammar: statements, set-queries, hoisted subqueries."""

    def __init__(
        self, text: str, tokens: list[Token], *, mangle_prefix: str
    ) -> None:
        super().__init__(text, tokens)
        self.mangle_prefix = mangle_prefix
        self.cte_map: dict[str, str] = {}
        self.synthetic_views: list[tuple[str, Query]] = []
        self._sub_counter = 0
        self._scalar_counter = 0
        #: Scalar-subquery views discovered while parsing the current
        #: SELECT block's expressions; spliced in as 1-row cross joins
        #: when the block finishes parsing.
        self._pending_scalar_joins: list[str] = []

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> tuple[str, str, Query]:
        """Parse one statement; returns ``(kind, name, query)``."""
        if self.accept("keyword", "create"):
            self.expect("keyword", "view")
            name = self.expect("ident").text
            self.expect("keyword", "as")
            query = self.parse_set_query()
            self.expect("end")
            return ("view", name, query)
        if self.accept("keyword", "with"):
            self._parse_cte_list()
            query = self.parse_set_query()
            self.expect("end")
            return ("report", "", query)
        query = self.parse_set_query()
        self.expect("end")
        return ("report", "", query)

    def _parse_cte_list(self) -> None:
        while True:
            name_token = self.expect("ident")
            self.expect("keyword", "as")
            self.expect("op", "(")
            query = self.parse_set_query()
            self.expect("op", ")")
            synthetic = f"{self.mangle_prefix}__cte_{name_token.text}"
            # Register before parsing the next CTE: SQL lets later CTEs
            # (and the main query) reference earlier ones.
            self.cte_map[name_token.text] = synthetic
            self.synthetic_views.append((synthetic, query))
            if not self.accept("op", ","):
                break

    # -- scalar subqueries ---------------------------------------------------

    def parse_select_block(self) -> Query:
        """One SELECT block, plus cross joins for its scalar subqueries.

        Scalar subqueries found while parsing this block's expressions are
        hoisted as synthetic single-row aggregate views; each is attached
        here as a 1-row CROSS JOIN. Joins evaluate before WHERE, so the
        mangled scalar column is in scope for the predicate regardless of
        splice order. The pending list is saved/restored around the call so
        nested blocks (FROM-subqueries, UNION branches, nested scalar
        subqueries) each attach exactly their own views.
        """
        saved = self._pending_scalar_joins
        self._pending_scalar_joins = []
        try:
            query = super().parse_select_block()
            pending = self._pending_scalar_joins
        finally:
            self._pending_scalar_joins = saved
        for view in pending:
            query = query.join(view, [], how="cross")
        return query

    def _atom(self) -> Expr:
        token = self.peek()
        nxt = self.peek(1)
        if (
            token.kind == "op"
            and token.text == "("
            and nxt.kind == "keyword"
            and nxt.text == "select"
        ):
            return self._scalar_subquery()
        return super()._atom()

    def _scalar_subquery(self) -> Expr:
        """``( SELECT ... )`` inside an expression, hoisted as a view.

        Only single-row shapes are admitted — a no-GROUP BY aggregate with
        exactly one output column — because the cross-join compilation
        replicates every row of the subquery result. A no-group aggregate
        always yields exactly one row (NULL over empty input), which makes
        the splice value-equivalent to SQL's scalar semantics: a NULL
        scalar makes the comparison UNKNOWN, dropping the row either way.
        """
        open_token = self.expect("op", "(")
        subquery = self.parse_set_query()
        self.expect("op", ")")
        if subquery.set_ops:
            raise self.unsupported(
                "scalar subquery with UNION", token=open_token
            )
        if not subquery.is_aggregate or subquery.group_by:
            raise self.unsupported(
                "scalar subquery that is not a single-row aggregate "
                "(no GROUP BY)",
                token=open_token,
            )
        if subquery.order or subquery.limit_n is not None:
            raise self.unsupported(
                "scalar subquery with ORDER BY/LIMIT", token=open_token
            )
        outputs = subquery.output_names() or ()
        if len(outputs) != 1:
            raise self.unsupported(
                "scalar subquery with more than one output column",
                token=open_token,
            )
        self._scalar_counter += 1
        view = f"{self.mangle_prefix}__scalar{self._scalar_counter}"
        column = f"{view}_val"
        # Rename the output aggregate itself to a mangled name so the
        # cross join can never collide with a column of the enclosing
        # block — and so the view still renders (and reparses) as a plain
        # ``SELECT AGG(...) AS <mangled>`` statement.
        old = outputs[0]
        specs = tuple(
            replace(spec, alias=column) if spec.alias == old else spec
            for spec in subquery.aggregates
        )
        if old not in {spec.alias for spec in subquery.aggregates}:
            raise self.unsupported(
                "scalar subquery whose output is not a plain aggregate",
                token=open_token,
            )
        having = subquery.having
        if having is not None:
            having = having.substitute({old: column})
        select = (column,) if subquery.select else ()
        wrapped = replace(
            subquery, aggregates=specs, having=having, select=select
        )
        self.synthetic_views.append((view, wrapped))
        self._pending_scalar_joins.append(view)
        return Col(column)

    # -- set queries ---------------------------------------------------------

    def parse_set_query(self) -> Query:
        """``block (UNION [ALL] block)*`` with SQL's trailing ORDER/LIMIT."""
        query = self.parse_select_block()
        while self.peek().kind == "keyword" and self.peek().text == "union":
            if query.order or query.limit_n is not None:
                raise self.error(
                    "ORDER BY/LIMIT must follow the last UNION branch; "
                    "they apply to the combined result"
                )
            self.advance()  # UNION
            all_ = self.accept("keyword", "all") is not None
            branch = self.parse_select_block()
            # The final branch's trailing ORDER BY/LIMIT belong to the
            # whole union (SQL), so they move to the head query.
            order, limit_n = branch.order, branch.limit_n
            if order or limit_n is not None:
                from dataclasses import replace

                branch = replace(branch, order=(), limit_n=None)
            query = query.union_with(branch, all=all_)
            if order:
                query = query.order_by(*order)
            if limit_n is not None:
                query = query.limit(limit_n)
        return query

    # -- FROM items ----------------------------------------------------------

    def _relation_name(self) -> str:
        if self.peek().kind == "op" and self.peek().text == "(":
            return self._from_subquery()
        name = self.expect("ident").text
        return self.cte_map.get(name, name)

    def _from_subquery(self) -> str:
        self.expect("op", "(")
        query = self.parse_set_query()
        self.expect("op", ")")
        self.accept("keyword", "as")
        alias = self.expect("ident").text
        self._sub_counter += 1
        synthetic = f"{self.mangle_prefix}__sub{self._sub_counter}_{alias}"
        self.synthetic_views.append((synthetic, query))
        return synthetic


@dataclass
class _Split:
    """One statement's raw material: tokens, text span, leading comments."""

    tokens: list[Token]
    start: int  # offset of the first token
    end: int  # offset just past the statement
    gap_start: int  # offset where the preceding comment gap begins


def split_statements(text: str, dialect: Dialect) -> list[_Split]:
    """Tokenize ``text`` and split on top-level ``;``.

    Splitting happens *after* tokenization, so semicolons inside string
    literals and comments never split a statement. Each split keeps the
    offset of the gap before it, where directive comments live.
    """
    tokens = tokenize(
        text,
        quoted_idents=dialect.quoted_idents,
        bracket_idents=dialect.bracket_idents,
    )
    splits: list[_Split] = []
    current: list[Token] = []
    gap_start = 0
    for token in tokens:
        if token.kind == "end":
            break
        if token.kind == "op" and token.text == ";":
            if current:
                splits.append(
                    _Split(
                        tokens=current + [Token("end", "", token.pos)],
                        start=current[0].pos,
                        end=token.pos,
                        gap_start=gap_start,
                    )
                )
            current = []
            gap_start = token.pos + 1
            continue
        current.append(token)
    if current:
        splits.append(
            _Split(
                tokens=current + [Token("end", "", len(text))],
                start=current[0].pos,
                end=len(text),
                gap_start=gap_start,
            )
        )
    return splits


def directives_in(text: str) -> dict[str, str]:
    """``key: value`` pairs from ``-- key: value`` comment lines."""
    return {m.group(1): m.group(2) for m in _DIRECTIVE_RE.finditer(text)}


def file_dialect(text: str) -> str | None:
    """The file-level ``-- dialect:`` directive, if present.

    Only honored when it appears before any statement text — a dialect
    switch halfway through a file would be ambiguous.
    """
    header: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            break
        header.append(line)
    return directives_in("\n".join(header)).get("dialect")


def parse_suite_text(
    text: str, dialect: Dialect, *, mangle_prefix: str
) -> list[RawStatement]:
    """Parse one file's statements. Raises :class:`ParseError` on the first
    syntactically invalid statement — callers wanting per-statement
    recovery should iterate :func:`split_statements` themselves (the
    compile driver does)."""
    out: list[RawStatement] = []
    for index, split in enumerate(split_statements(text, dialect)):
        out.append(
            parse_one(text, split, dialect, mangle_prefix=f"{mangle_prefix}{index}")
        )
    return out


def parse_one(
    text: str, split: _Split, dialect: Dialect, *, mangle_prefix: str
) -> RawStatement:
    """Parse one split statement into a :class:`RawStatement`."""
    tokens, notes = dialect.normalize(split.tokens)
    parser = SuiteParser(text, tokens, mangle_prefix=mangle_prefix)
    kind, name, query = parser.parse_statement()
    directives = directives_in(text[split.gap_start : split.start])
    if kind == "report" and not name:
        name = directives.get("report", "")
    return RawStatement(
        kind=kind,
        name=name,
        query=query,
        line=1 + text.count("\n", 0, split.start),
        source_sql=text[split.start : split.end].strip(),
        directives=directives,
        notes=notes,
        synthetic_views=parser.synthetic_views,
    )
