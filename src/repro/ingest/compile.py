"""Suite compiler: SQL files in → auditable catalog artifacts out.

:func:`ingest_suite` drives the whole front-end over a directory of
``.sql`` files: split → dialect-normalize → parse → resolve → static
lineage, producing an :class:`IngestResult` whose reports are ordinary
:class:`~repro.reports.definition.ReportDefinition`\\ s (each carrying its
``file:line`` origin and verbatim source SQL) and whose views — explicit
``CREATE VIEW``\\ s plus the synthetic views hoisted from CTEs and
FROM-subqueries — slot into the relational catalog like any hand-built
view.

Failure is per-statement and closed: a statement with any error-severity
ING diagnostic contributes *nothing* to the compiled outputs. There is no
"best effort" mode — an artifact that cannot be fully modeled cannot be
audited, so it must not silently enter the catalog.

:func:`emit_deployment` turns a clean ingest into a saved deployment
(``repro save`` layout) whose baseline is one synthesized universe
meta-report with an approved PLA, so ``repro lint --deployment`` and
``repro verify --deployment`` audit the ingested workload end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.dataflow import column_flows
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.errors import (
    AnalysisError,
    IngestError,
    ParseError,
    UnsupportedConstructError,
)
from repro.ingest.dialects import DIALECTS, Dialect, get_dialect
from repro.ingest.parser import (
    RawStatement,
    file_dialect,
    parse_one,
    split_statements,
)
from repro.ingest.resolve import Scope, resolve_query
from repro.relational.catalog import Catalog, View
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.scenario import Scenario

__all__ = ["IngestedStatement", "IngestResult", "ingest_suite", "emit_deployment"]

DEFAULT_AUDIENCE = ("analyst",)
DEFAULT_PURPOSE = "care/quality"


@dataclass
class IngestedStatement:
    """One suite statement and what became of it."""

    kind: str  # "view" | "report"
    name: str
    origin: str  # "file.sql:line"
    dialect: str
    ok: bool  # False = excluded by error-severity diagnostics
    source_sql: str = ""


@dataclass
class IngestResult:
    """Everything one suite ingestion produced."""

    reports: list[ReportDefinition] = field(default_factory=list)
    views: list[View] = field(default_factory=list)
    diagnostics: DiagnosticReport = field(default_factory=DiagnosticReport)
    #: Per-report static lineage: report name → output column → sorted
    #: base-column sources (the over-approximation ``repro verify``'s
    #: differential property checks against runtime where-provenance).
    lineage: dict[str, dict[str, list[str]]] = field(default_factory=dict)
    statements: list[IngestedStatement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no statement was excluded (no error diagnostics)."""
        return all(s.ok for s in self.statements)

    def summary(self) -> str:
        counts = self.diagnostics.counts()
        findings = (
            "clean"
            if self.diagnostics.clean
            else ", ".join(f"{n} {k}(s)" for k, n in counts.items() if n)
        )
        return (
            f"ingest[{len(self.statements)} statement(s)]: "
            f"{len(self.reports)} report(s), {len(self.views)} view(s); "
            f"{findings}"
        )

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "statements": [
                {
                    "kind": s.kind,
                    "name": s.name,
                    "origin": s.origin,
                    "dialect": s.dialect,
                    "ok": s.ok,
                }
                for s in self.statements
            ],
            "reports": [r.name for r in self.reports],
            "views": [v.name for v in self.views],
            "lineage": self.lineage,
            "diagnostics": self.diagnostics.to_dict(order="source"),
        }


def _overlay_catalog(catalog: Catalog) -> Catalog:
    """A fresh catalog sharing the base tables and views of ``catalog``.

    Ingestion registers suite views here, leaving the caller's catalog
    untouched — a suite that fails halfway must not leak definitions into
    the deployment it was checked against.
    """
    overlay = Catalog()
    for name in catalog.table_names():
        overlay.add_table(catalog.table(name))
    for name in catalog.view_names():
        overlay.add_view(catalog.view(name))
    return overlay


def ingest_suite(
    directory: str | Path,
    *,
    catalog: Catalog,
    dialect: str | None = None,
) -> IngestResult:
    """Ingest every ``*.sql`` file under ``directory`` (sorted, non-recursive).

    ``dialect`` forces one dialect for the whole suite; otherwise each
    file's ``-- dialect:`` directive decides, defaulting to ``ansi``.
    """
    base = Path(directory)
    files = sorted(base.glob("*.sql"))
    if not files:
        raise IngestError(f"no .sql files under {base}")
    forced = get_dialect(dialect) if dialect is not None else None

    result = IngestResult()
    scope = Scope(catalog)
    overlay = _overlay_catalog(catalog)
    taken_names: set[str] = set()
    baseline = _baseline_condition_sources(catalog)

    n_files = 0
    for path in files:
        n_files += 1
        text = path.read_text()
        file_diag = forced or _resolve_file_dialect(path, text, result)
        if file_diag is None:
            continue
        _ingest_file(
            path, text, file_diag, scope, overlay, taken_names, baseline, result
        )

    result.diagnostics.coverage = {
        "files": n_files,
        "statements": len(result.statements),
        "reports": len(result.reports),
        "views": len(result.views),
    }
    return result


def _resolve_file_dialect(
    path: Path, text: str, result: IngestResult
) -> Dialect | None:
    name = file_dialect(text) or "ansi"
    if name not in DIALECTS:
        result.diagnostics.add(
            Diagnostic(
                code="ING005",
                severity=Severity.ERROR,
                location=f"suite:{path.name}",
                message=f"unknown dialect {name!r} in -- dialect: directive",
                fix_hint=f"expected one of {', '.join(sorted(DIALECTS))}",
            )
        )
        return None
    return DIALECTS[name]


def _baseline_condition_sources(catalog: Catalog) -> frozenset[str]:
    """Base columns the deployment's own views already condition on.

    The star schema's wide views join fact to dimensions on surrogate keys;
    those keys show up as condition sources of *every* query over the
    warehouse. They are part of the approved structure, not something the
    ingested SQL chose to filter on, so ING007 subtracts them — the warning
    should name only predicates the suite introduced.
    """
    sources: set[str] = set()
    for name in catalog.view_names():
        try:
            flow = column_flows(Query.from_(name), catalog)
        except AnalysisError:
            continue
        sources |= flow.condition_sources
    return frozenset(sources)


def _ingest_file(
    path: Path,
    text: str,
    dialect: Dialect,
    scope: Scope,
    overlay: Catalog,
    taken_names: set[str],
    baseline: frozenset[str],
    result: IngestResult,
) -> None:
    try:
        splits = split_statements(text, dialect)
    except ParseError as exc:
        line = exc.line or 1
        result.diagnostics.add(
            _parse_diagnostic(exc, f"suite:{path.name}:{line}")
        )
        return

    for index, split in enumerate(splits):
        line = 1 + text.count("\n", 0, split.start)
        location = f"suite:{path.name}:{line}"
        prefix = f"_{path.stem}_{index}"
        try:
            statement = parse_one(text, split, dialect, mangle_prefix=prefix)
        except ParseError as exc:
            result.diagnostics.add(_parse_diagnostic(exc, location))
            result.statements.append(
                IngestedStatement(
                    kind="report",
                    name="",
                    origin=f"{path.name}:{line}",
                    dialect=dialect.name,
                    ok=False,
                    source_sql=text[split.start : split.end].strip(),
                )
            )
            continue
        _compile_statement(
            statement, path, dialect, scope, overlay, taken_names, baseline, result
        )


def _parse_diagnostic(exc: ParseError, location: str) -> Diagnostic:
    if isinstance(exc, UnsupportedConstructError):
        if exc.construct == "window function":
            return Diagnostic(
                code="ING010",
                severity=Severity.ERROR,
                location=location,
                message=str(exc),
                fix_hint="window functions are not modeled by static "
                "lineage yet; pre-compute the analytic column in a view "
                "the deployment approves",
            )
        return Diagnostic(
            code="ING004",
            severity=Severity.ERROR,
            location=location,
            message=str(exc),
            fix_hint="rewrite without the construct, or extend the "
            "ingestion grammar",
        )
    return Diagnostic(
        code="ING005",
        severity=Severity.ERROR,
        location=location,
        message=str(exc),
        fix_hint="fix the statement's syntax for the declared dialect",
    )


def _compile_statement(
    statement: RawStatement,
    path: Path,
    dialect: Dialect,
    scope: Scope,
    overlay: Catalog,
    taken_names: set[str],
    baseline: frozenset[str],
    result: IngestResult,
) -> None:
    origin = f"{path.name}:{statement.line}"
    location = f"suite:{origin}"
    name = statement.name or f"{path.stem}_{statement.line}"

    record = IngestedStatement(
        kind=statement.kind,
        name=name,
        origin=origin,
        dialect=dialect.name,
        ok=False,
        source_sql=statement.source_sql,
    )
    result.statements.append(record)

    for construct, detail in dict.fromkeys(
        (note.construct, note.detail) for note in statement.notes
    ):
        result.diagnostics.add(
            Diagnostic(
                code="ING006",
                severity=Severity.INFO,
                location=location,
                message=f"{construct}: {detail}",
            )
        )

    if name in taken_names or (statement.kind == "view" and scope.has(name)):
        result.diagnostics.add(
            Diagnostic(
                code="ING008",
                severity=Severity.ERROR,
                location=location,
                message=f"duplicate name {name!r}: already defined by this "
                "suite or the deployment catalog",
                fix_hint="rename the view/report",
            )
        )
        return

    # Resolve the hoisted synthetic views in definition order (inner before
    # outer), extending the scope as we go so CTE chains see each other,
    # then the statement's main query.
    diagnostics: list[Diagnostic] = []
    added: list[tuple[str, Query]] = []
    for synth_name, synth_query in statement.synthetic_views:
        diagnostics.extend(resolve_query(synth_query, scope, location=location))
        scope.add_view(synth_name, synth_query)
        added.append((synth_name, synth_query))
    diagnostics.extend(resolve_query(statement.query, scope, location=location))

    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    result.diagnostics.extend(diagnostics)
    if errors:
        # Fail closed: withdraw the synthetic views; the statement
        # contributes nothing to the compiled catalog.
        for synth_name, _ in added:
            scope.suite_views.pop(synth_name, None)
        return

    for synth_name, synth_query in added:
        view = View(
            synth_name,
            synth_query,
            description=f"hoisted from {origin} ({dialect.name})",
        )
        overlay.add_view(view)
        result.views.append(view)

    if statement.kind == "view":
        view = View(
            name,
            statement.query,
            description=f"ingested from {origin} ({dialect.name})",
        )
        scope.add_view(name, statement.query)
        overlay.add_view(view)
        result.views.append(view)
        taken_names.add(name)
        record.ok = True
        return

    try:
        flow = column_flows(statement.query, overlay)
    except AnalysisError as exc:
        result.diagnostics.add(
            Diagnostic(
                code="ING002",
                severity=Severity.ERROR,
                location=location,
                message=f"lineage analysis rejected the statement: {exc}",
            )
        )
        return

    output_sources: set[str] = set()
    lineage: dict[str, list[str]] = {}
    for column, column_flow in flow.columns:
        lineage[column] = sorted(column_flow.sources)
        output_sources |= column_flow.sources
    widened = flow.condition_sources - output_sources - baseline
    if widened:
        result.diagnostics.add(
            Diagnostic(
                code="ING007",
                severity=Severity.WARNING,
                location=location,
                message="report's predicates disclose base columns its "
                f"outputs do not carry: {sorted(widened)}",
                fix_hint="row membership reveals these values; confirm the "
                "covering PLA permits filtering on them",
            )
        )

    audience = tuple(statement.directives.get("audience", "").split()) or (
        DEFAULT_AUDIENCE
    )
    definition = ReportDefinition(
        name=name,
        title=statement.directives.get("title", name),
        query=statement.query,
        audience=frozenset(audience),
        purpose=statement.directives.get("purpose", DEFAULT_PURPOSE),
        description=f"ingested from {origin} ({dialect.name} dialect)",
        origin=origin,
        source_sql=statement.source_sql,
    )
    result.reports.append(definition)
    result.lineage[name] = lineage
    taken_names.add(name)
    record.ok = True


def emit_deployment(
    result: IngestResult,
    out_dir: str | Path,
    *,
    scenario: "Scenario | None" = None,
) -> Path:
    """Save the ingested workload as a complete, auditable deployment.

    The deployment pairs the scenario's star schema with the suite's views
    and reports, baselined by one synthesized universe meta-report whose
    approved PLA carries the deployment's standing requirements (attribute
    access, pseudonymization, aggregation floors, join/integration
    permissions). Row-level intensional conditions are *not* synthesized —
    those belong to the source-level PLAs of the original owners, and
    inventing them here would claim approvals nobody gave.
    """
    from repro.core.annotations import (
        AnonymizationRequirement,
        AttributeAccess,
        IntensionalCondition,
    )
    from repro.core.metareport import MetaReport, MetaReportSet
    from repro.core.pla import PLA, PlaLevel, PlaRegistry
    from repro.persistence.store import save_deployment
    from repro.reports.catalog import ReportCatalog
    from repro.simulation.scenario import build_scenario, standard_annotations

    if scenario is None:
        scenario = build_scenario()

    catalog = _overlay_catalog(scenario.bi_catalog)
    for view in result.views:
        catalog.add_view(view, replace=True)

    universe = scenario.universe_name
    columns = tuple(scenario.wide_columns)
    metareport = MetaReport(
        name="mr_ingested_universe",
        query=Query.from_(universe).project(*columns),
        description="synthesized baseline for the ingested report suite",
    )
    kept = [
        a
        for a in standard_annotations(
            columns,
            aggregation_threshold=scenario.config.aggregation_threshold,
        )
        if not isinstance(a, IntensionalCondition)
    ]
    # Every exposed column needs an attribute-level annotation or lint's
    # PLA001 flags it as falling through the net. The suite's reports do
    # read these columns, so grant the BI roles access explicitly rather
    # than leaving the exposure implicit.
    covered = {
        a.attribute
        for a in kept
        if isinstance(a, (AttributeAccess, AnonymizationRequirement))
    }
    bi_roles = frozenset(
        {"analyst", "auditor", "health_director", "municipality_official"}
    )
    kept.extend(
        AttributeAccess(attribute=column, allowed_roles=bi_roles)
        for column in columns
        if column not in covered
    )
    annotations = tuple(kept)
    pla = PLA(
        name="pla_ingested_universe",
        owner="bi_provider",
        level=PlaLevel.METAREPORT,
        target=metareport.name,
        annotations=annotations,
    ).approved()
    registry = PlaRegistry()
    registry.add(pla)
    metareport.attach_pla(pla)
    metareports = MetaReportSet()
    metareports.add(metareport)
    metareports.register_views(catalog)

    reports = ReportCatalog()
    for definition in result.reports:
        reports.add(definition)

    return save_deployment(
        out_dir,
        catalog=catalog,
        metareports=metareports,
        plas=registry,
        reports=reports,
    )
