"""Render a Query AST back to SQL the ingestion grammar reparses.

The round-trip contract (enforced by a hypothesis property test): for any
query the ingestion front-end can produce, ``parse(render(q))`` yields a
query with the same fingerprint. This is what makes ingested artifacts
*auditable*: the catalog can always show a faithful SQL rendering of what
it is actually checking, and the rendering is provably not a paraphrase.

Rendering targets the ANSI dialect. String literals escape embedded
quotes, dates render as ``DATE '...'`` literals, and UNION branches render
in left-associative order with the head's ORDER BY/LIMIT trailing the last
branch — exactly where the grammar puts them when parsing.
"""

from __future__ import annotations

import datetime

from repro.errors import IngestError
from repro.relational.algebra import AggSpec
from repro.relational.expressions import (
    And,
    Arith,
    Case,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.relational.query import Query

__all__ = ["render_expr", "render_query"]


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise IngestError(f"cannot render literal {value!r} as SQL")


def render_expr(expr: Expr) -> str:
    """Render one expression; parenthesized wherever precedence could bite."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return render_literal(expr.value)
    if isinstance(expr, Comparison):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, And):
        return f"({render_expr(expr.left)} AND {render_expr(expr.right)})"
    if isinstance(expr, Or):
        return f"({render_expr(expr.left)} OR {render_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {render_expr(expr.inner)})"
    if isinstance(expr, InList):
        values = ", ".join(render_literal(v) for v in expr.values)
        return f"{render_expr(expr.target)} IN ({values})"
    if isinstance(expr, IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_expr(expr.target)} {op}"
    if isinstance(expr, Arith):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, Case):
        arms = " ".join(
            f"WHEN {render_expr(w)} THEN {render_expr(t)}"
            for w, t in zip(expr.whens, expr.thens)
        )
        tail = f" ELSE {render_expr(expr.else_)}" if expr.else_ is not None else ""
        return f"(CASE {arms}{tail} END)"
    raise IngestError(f"cannot render expression {expr!r} as SQL")


def _render_agg(spec: AggSpec) -> str:
    inner = "*" if spec.column is None else spec.column
    if spec.distinct:
        inner = f"DISTINCT {inner}"
    return f"{spec.func.upper()}({inner}) AS {spec.alias}"


def _render_block(query: Query) -> str:
    """One SELECT block, FROM through HAVING (no set ops/ORDER/LIMIT)."""
    parts: list[str] = []
    distinct = "DISTINCT " if query.select_distinct else ""
    if query.is_aggregate:
        rendered = {spec.alias: _render_agg(spec) for spec in query.aggregates}
        if query.select:
            items = [
                rendered.get(item, item) if isinstance(item, str) else
                f"{render_expr(item[1])} AS {item[0]}"
                for item in query.select
            ]
        else:
            items = list(query.group_by) + [
                _render_agg(spec) for spec in query.aggregates
            ]
        parts.append(f"SELECT {distinct}{', '.join(items)}")
    elif query.select:
        items = [
            item if isinstance(item, str)
            else f"{render_expr(item[1])} AS {item[0]}"
            for item in query.select
        ]
        parts.append(f"SELECT {distinct}{', '.join(items)}")
    else:
        parts.append(f"SELECT {distinct}*")
    parts.append(f"FROM {query.source}")
    for clause in query.joins:
        if clause.how == "cross":
            parts.append(f"CROSS JOIN {clause.table}")
            continue
        kind = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
        }[clause.how]
        conds = " AND ".join(f"{l} = {r}" for l, r in clause.on)
        parts.append(f"{kind} {clause.table} ON {conds}")
    if query.where is not None:
        parts.append(f"WHERE {render_expr(query.where)}")
    if query.group_by:
        parts.append(f"GROUP BY {', '.join(query.group_by)}")
    if query.having is not None:
        parts.append(f"HAVING {render_expr(query.having)}")
    return " ".join(parts)


def render_query(query: Query) -> str:
    """Render ``query`` (including UNION branches) as one SQL statement."""
    parts = [_render_block(query)]
    for clause in query.set_ops:
        keyword = "UNION" if clause.op == "union" else "UNION ALL"
        parts.append(f"{keyword} {_render_block(clause.query)}")
        for nested in clause.query.set_ops:  # flattened form stays flat
            nested_kw = "UNION" if nested.op == "union" else "UNION ALL"
            parts.append(f"{nested_kw} {_render_block(nested.query)}")
    if query.order:
        keys = ", ".join(f"{c}{' DESC' if d else ''}" for c, d in query.order)
        parts.append(f"ORDER BY {keys}")
    if query.limit_n is not None:
        parts.append(f"LIMIT {query.limit_n}")
    return " ".join(parts)
