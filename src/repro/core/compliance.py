"""Report compliance checking against approved meta-report PLAs (§5).

The checker answers, for each new or modified report: (a) is it derivable
from an approved meta-report at all, and (b) does it satisfy every PLA
annotation of that meta-report — either statically (audience checks, join
prohibitions) or by emitting a *runtime obligation* the enforcement
translator installs (aggregation thresholds, intensional conditions,
anonymization)?

Static verdicts are what make the paper's PLAs "testable": owners, auditors,
and the BI provider can all run the checker against the report catalog
before anything is deployed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cache import LRUCache
from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.containment import DerivabilityResult, source_columns_used
from repro.core.metareport import MetaReport, MetaReportSet
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.relational.catalog import Catalog
from repro.reports.definition import ReportDefinition

__all__ = [
    "ComplianceViolation",
    "RuntimeObligation",
    "ComplianceVerdict",
    "ComplianceChecker",
]


@dataclass(frozen=True)
class ComplianceViolation:
    """A static PLA violation: the report may not be deployed as-is."""

    annotation: str  # annotation description
    reason: str

    def __str__(self) -> str:
        return f"{self.reason} [{self.annotation}]"


@dataclass(frozen=True)
class RuntimeObligation:
    """An enforcement the report engine must apply at generation time."""

    kind: str  # "aggregation_threshold" | "intensional" | "anonymize"
    annotation: Annotation

    def __str__(self) -> str:
        return f"{self.kind}: {self.annotation.describe()}"


@dataclass(frozen=True)
class ComplianceVerdict:
    """The outcome of checking one report definition."""

    report: str
    version: int
    compliant: bool
    covering_metareport: str | None
    violations: tuple[ComplianceViolation, ...] = ()
    obligations: tuple[RuntimeObligation, ...] = ()
    derivability_attempts: tuple[DerivabilityResult, ...] = ()

    def summary(self) -> str:
        status = "COMPLIANT" if self.compliant else "NON-COMPLIANT"
        via = f" via {self.covering_metareport}" if self.covering_metareport else ""
        extra = ""
        if self.violations:
            extra = "; " + "; ".join(str(v) for v in self.violations)
        if self.obligations:
            extra += f" ({len(self.obligations)} runtime obligation(s))"
        return f"{self.report} v{self.version}: {status}{via}{extra}"


@dataclass
class ComplianceChecker:
    """Checks report definitions against a meta-report set's PLAs.

    ``source_identity`` maps each warehouse base table to the
    ``provider/table`` identities in its lineage; it is computed from the
    loaded warehouse once, which is how join-permission annotations written
    in source vocabulary become checkable on warehouse-level queries.
    """

    catalog: Catalog
    metareports: MetaReportSet
    source_identity: dict[str, frozenset[str]] = field(default_factory=dict)
    use_cache: bool = True
    _verdicts: LRUCache = field(
        default_factory=lambda: LRUCache(maxsize=512), repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.source_identity:
            self.source_identity = self._compute_source_identity()

    def _compute_source_identity(self) -> dict[str, frozenset[str]]:
        mapping: dict[str, frozenset[str]] = {}
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            mapping[name] = frozenset(
                f"{rid.provider}/{rid.table}" for rid in table.all_lineage()
            )
        return mapping

    def source_footprint(self, report: ReportDefinition) -> frozenset[str]:
        """``provider/table`` identities a report's data descends from."""
        out: set[str] = set()
        for base in self.catalog.base_relations_of_query(report.query):
            out.update(self.source_identity.get(base, frozenset()))
        return frozenset(out)

    # -- verdict caching -----------------------------------------------------
    #
    # A verdict is a pure function of (report definition, meta-report set
    # incl. the PLA attached to each, catalog DDL). The key fingerprints all
    # three, so *any* mutation — a PLA revision or approval, a report
    # evolution step (``with_query``/``with_audience`` bump the version), a
    # meta-report extension, or catalog DDL — changes the key and the stale
    # verdict becomes unreachable. ``invalidate_cache`` additionally drops
    # entries eagerly.

    def _report_fingerprint(self, report: ReportDefinition) -> tuple:
        return (
            report.name,
            report.version,
            report.query.fingerprint(),
            tuple(sorted(report.audience)),
            report.purpose,
        )

    def _metaset_fingerprint(self) -> tuple:
        parts = []
        for metareport in self.metareports:
            pla = metareport.pla
            pla_fp = (
                None
                if pla is None
                else (
                    pla.name,
                    pla.version,
                    pla.status.value,
                    tuple(a.describe() for a in pla.annotations),
                )
            )
            parts.append((metareport.name, metareport.query.fingerprint(), pla_fp))
        return tuple(parts)

    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss counters of the verdict cache."""
        return self._verdicts.stats.as_dict()

    def invalidate_cache(self) -> int:
        """Drop every cached verdict; returns how many were removed."""
        return self._verdicts.clear()

    # -- the main entry point ------------------------------------------------

    def check_report(self, report: ReportDefinition) -> ComplianceVerdict:
        """Full compliance verdict for one report definition (memoized; see
        the fingerprinting notes above).

        When observability is on, checking emits a ``compliance.check`` span
        and counts the outcome as a meta-report-level enforcement decision
        (``repro_enforcement_decisions_total{level="meta-report",...}``).
        """
        if not TRACER.active():
            return self._check_report_memoized(report)
        with TRACER.span(
            "compliance.check",
            {"report": report.name, "version": report.version},
        ) as span:
            verdict = self._check_report_memoized(report)
            span.set_tag("compliant", verdict.compliant)
            if verdict.covering_metareport:
                span.set_tag("metareport", verdict.covering_metareport)
        self._record_verdict_metrics(verdict)
        return verdict

    @staticmethod
    def _record_verdict_metrics(verdict: ComplianceVerdict) -> None:
        level = instrument.LEVEL_METAREPORT
        if verdict.compliant:
            instrument.record_decision(
                level, "allow", verdict.covering_metareport or "-"
            )
        elif verdict.covering_metareport is None:
            instrument.record_decision(level, "deny", "derivability")
        else:
            instrument.record_decision(
                level, "deny", "pla_violation", count=len(verdict.violations)
            )
        for obligation in verdict.obligations:
            instrument.record_decision(level, "obligation", obligation.kind)

    def _check_report_memoized(self, report: ReportDefinition) -> ComplianceVerdict:
        if not self.use_cache:
            return self._check_report_uncached(report)
        # catalog.uid, not id(): uids are never recycled, so a checker
        # rebound to a new catalog can't collide with a dead one's entries.
        key = (
            self._report_fingerprint(report),
            self._metaset_fingerprint(),
            self.catalog.uid,
            self.catalog.ddl_version,
        )
        # Token before compute: an invalidate_cache() racing the check drops
        # the late fill instead of resurrecting a pre-invalidation verdict.
        token = self._verdicts.fill_token()
        cached = self._verdicts.get(key)
        if TRACER.active():
            instrument.cache_lookup("verdict", cached is not None)
        if cached is not None:
            return cached
        verdict = self._check_report_uncached(report)
        self._verdicts.put_if(key, verdict, token)
        return verdict

    def _check_report_uncached(self, report: ReportDefinition) -> ComplianceVerdict:
        covering, attempts = self.metareports.find_covering(report, self.catalog)
        if covering is None:
            return ComplianceVerdict(
                report=report.name,
                version=report.version,
                compliant=False,
                covering_metareport=None,
                violations=(
                    ComplianceViolation(
                        annotation="derivability",
                        reason=(
                            "report is not derivable from any approved "
                            "meta-report; a new elicitation round is required"
                        ),
                    ),
                ),
                derivability_attempts=attempts,
            )
        violations: list[ComplianceViolation] = []
        obligations: list[RuntimeObligation] = []
        assert covering.pla is not None  # approved implies a PLA
        for annotation in covering.pla.annotations:
            self._check_annotation(report, covering, annotation, violations, obligations)
        return ComplianceVerdict(
            report=report.name,
            version=report.version,
            compliant=not violations,
            covering_metareport=covering.name,
            violations=tuple(violations),
            obligations=tuple(obligations),
            derivability_attempts=attempts,
        )

    # -- per-annotation logic ------------------------------------------------

    def _check_annotation(
        self,
        report: ReportDefinition,
        covering: MetaReport,
        annotation: Annotation,
        violations: list[ComplianceViolation],
        obligations: list[RuntimeObligation],
    ) -> None:
        outputs = set(report.columns() or ())
        used = source_columns_used(report.query)

        if isinstance(annotation, AttributeAccess):
            # Displaying the attribute is access; so is *filtering or
            # grouping* on it — "drugs of the patient named X" discloses
            # X's data even when the name column itself is projected away.
            touches = annotation.attribute in outputs or annotation.attribute in used
            if touches and not annotation.permits(report.audience):
                bad = sorted(set(report.audience) - annotation.allowed_roles)
                how = "see" if annotation.attribute in outputs else "query by"
                violations.append(
                    ComplianceViolation(
                        annotation=annotation.describe(),
                        reason=(
                            f"audience roles {bad} may not {how} "
                            f"{annotation.attribute!r}"
                        ),
                    )
                )
        elif isinstance(annotation, AggregationThreshold):
            if report.query.is_aggregate:
                obligations.append(RuntimeObligation("aggregation_threshold", annotation))
            elif annotation.min_group_size > 1:
                violations.append(
                    ComplianceViolation(
                        annotation=annotation.describe(),
                        reason=(
                            "report exposes record-level rows but the PLA "
                            f"requires aggregation over ≥ "
                            f"{annotation.min_group_size} records"
                        ),
                    )
                )
        elif isinstance(annotation, AnonymizationRequirement):
            if annotation.attribute in outputs or annotation.attribute in used:
                obligations.append(RuntimeObligation("anonymize", annotation))
        elif isinstance(annotation, JoinPermission):
            if not annotation.allowed:
                footprint = self.source_footprint(report)
                if annotation.left in footprint and annotation.right in footprint:
                    violations.append(
                        ComplianceViolation(
                            annotation=annotation.describe(),
                            reason=(
                                "report combines data from "
                                f"{annotation.left} and {annotation.right}"
                            ),
                        )
                    )
        elif isinstance(annotation, IntegrationPermission):
            # Integration is an ETL-time property; at the report level we can
            # only verify the agreed direction and hand the constraint to the
            # ETL registry (see translation.to_etl_registry).
            if not annotation.allowed:
                obligations.append(RuntimeObligation("etl_integration", annotation))
        elif isinstance(annotation, IntensionalCondition):
            relevant = (
                annotation.attribute in outputs
                or annotation.action == "suppress_row"
            )
            if relevant:
                if report.query.is_aggregate and annotation.action == "suppress_cell":
                    violations.append(
                        ComplianceViolation(
                            annotation=annotation.describe(),
                            reason=(
                                "cell-level intensional condition cannot be "
                                "applied to an aggregate report; use "
                                "suppress_row or drop the attribute"
                            ),
                        )
                    )
                else:
                    obligations.append(RuntimeObligation("intensional", annotation))

    def check_catalog(
        self, reports: tuple[ReportDefinition, ...]
    ) -> dict[str, ComplianceVerdict]:
        """Verdicts for a whole report catalog (testing-before-operation)."""
        return {report.name: self.check_report(report) for report in reports}
