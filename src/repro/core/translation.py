"""Translating PLAs into enforceable structures (§6's closing challenge).

"...methods for translating PLAs into internal data structures that can be
used for automated privacy management support at design time or runtime."

Three translations live here:

* :class:`ReportLevelEnforcer` — runs a report under its compliance verdict,
  discharging runtime obligations: aggregation thresholds (lineage-counted),
  intensional conditions (with hidden-column support), anonymization.
* :func:`to_etl_registry` — projects join/integration annotations into an
  :class:`~repro.etl.annotations.EtlPlaRegistry` so ETL flows enforce them.
* :func:`to_vpd_policy` — projects source-level PLAs into VPD rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ComplianceError, EnforcementError
from repro.anonymize.generalization import Hierarchy
from repro.anonymize.pseudonym import Pseudonymizer
from repro.core.annotations import (
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.compliance import ComplianceVerdict
from repro.core.pla import PLA
from repro.etl.annotations import (
    EtlPlaRegistry,
    IntegrationProhibition,
    JoinProhibition,
)
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext
from repro.policy.vpd import ColumnMask, VPDPolicy, VPDRule
from repro.relational.catalog import Catalog
from repro.relational.engine import execute
from repro.relational.table import RowProvenance, Table
from repro.reports.definition import ReportDefinition, ReportInstance

__all__ = ["ReportLevelEnforcer", "to_etl_registry", "to_vpd_policy"]


@dataclass
class ReportLevelEnforcer:
    """Generates reports with their runtime obligations discharged."""

    catalog: Catalog
    pseudonymizer: Pseudonymizer | None = None
    hierarchies: dict[str, Hierarchy] = field(default_factory=dict)

    def generate(
        self,
        report: ReportDefinition,
        context: AccessContext,
        verdict: ComplianceVerdict,
    ) -> ReportInstance:
        """Run ``report`` under ``verdict``; non-compliant verdicts raise.

        When observability is on the run emits a ``report.enforce`` span and
        counts report-level enforcement decisions: allow/deny, rows
        suppressed by obligations, cells anonymized.
        """
        if not TRACER.active():
            return self._generate(report, context, verdict)
        with TRACER.span(
            "report.enforce",
            {"report": report.name, "consumer": context.user.name},
        ) as span:
            level = instrument.LEVEL_REPORT
            try:
                instance = self._generate(report, context, verdict)
            except (ComplianceError, EnforcementError) as exc:
                instrument.record_decision(level, "deny", type(exc).__name__)
                raise
            instrument.record_decision(
                level, "allow", verdict.covering_metareport or "-"
            )
            instrument.record_decision(
                level,
                "suppress_row",
                "obligation",
                count=instance.suppressed_rows,
            )
            for obligation in verdict.obligations:
                if obligation.kind == "anonymize":
                    instrument.record_decision(
                        level,
                        "anonymize",
                        f"anonymize.{obligation.annotation.method}",
                    )
            span.set_tag("suppressed_rows", instance.suppressed_rows)
            return instance

    def _generate(
        self,
        report: ReportDefinition,
        context: AccessContext,
        verdict: ComplianceVerdict,
    ) -> ReportInstance:
        if not verdict.compliant:
            raise ComplianceError(
                f"report {report.name!r} is not compliant: "
                + "; ".join(str(v) for v in verdict.violations)
            )
        if verdict.report != report.name or verdict.version != report.version:
            raise ComplianceError(
                f"verdict is for {verdict.report} v{verdict.version}, "
                f"not {report.name} v{report.version}"
            )
        if not any(context.user.has_role(role) for role in report.audience):
            raise ComplianceError(
                f"user {context.user.name!r} is not in the audience of "
                f"{report.name!r}"
            )
        # Purpose limitation: the consumer's declared purpose must fall under
        # the purpose the report was agreed for.
        if not (
            context.purpose.name == report.purpose
            or context.purpose.name.startswith(report.purpose + "/")
        ):
            raise ComplianceError(
                f"purpose {context.purpose.name!r} is not covered by the "
                f"agreed purpose {report.purpose!r} of {report.name!r}"
            )

        intensional = [
            o.annotation
            for o in verdict.obligations
            if o.kind == "intensional"
        ]
        thresholds = [
            o.annotation
            for o in verdict.obligations
            if o.kind == "aggregation_threshold"
        ]
        anonymize = [
            o.annotation for o in verdict.obligations if o.kind == "anonymize"
        ]

        query, hidden = self._rewrite_for_intensional(report, intensional)
        table = execute(query, self.catalog, name=report.name)
        suppressed = 0

        table, dropped = self._apply_row_conditions(table, intensional)
        suppressed += dropped
        table = self._blank_cells(table, intensional)
        table, dropped = self._apply_thresholds(table, thresholds)
        suppressed += dropped
        table = self._apply_anonymization(table, anonymize)
        if hidden:
            table = self._project_away(table, hidden)
        return ReportInstance(
            definition=report,
            table=table,
            consumer=context.user.name,
            suppressed_rows=suppressed,
            obligations_applied=tuple(str(o) for o in verdict.obligations),
        )

    # -- obligation mechanics ------------------------------------------------

    def _ensure_columns_available(self, query, columns: set[str]):
        """Make hidden condition columns reachable from the query's source.

        A report may be authored over a meta-report view that projects the
        condition column away (it exists only "for purposes of defining
        PLAs"). In that case the enforcer extends the view one level — the
        view's own source still carries the column — and points the query at
        the extended view. Raises when the column is genuinely absent.
        """
        from dataclasses import replace as _replace

        from repro.relational.catalog import View

        source = query.source
        available = self._source_outputs(source)
        missing = {c for c in columns if c not in available}
        if not missing:
            return query
        if not self.catalog.is_view(source):
            raise EnforcementError(
                f"intensional condition references {sorted(missing)}, absent "
                f"from base table {source!r}"
            )
        view_query = self.catalog.view(source).query
        view_outputs = view_query.output_names()
        upstream = self._source_outputs(view_query.source)
        if view_outputs is None or not missing <= set(upstream):
            raise EnforcementError(
                f"cannot reach hidden column(s) {sorted(missing)} through "
                f"view {source!r}"
            )
        extended_name = f"{source}__plaext"
        extended = view_query.project(*view_outputs, *sorted(missing))
        self.catalog.add_view(View(extended_name, extended), replace=True)
        return _replace(query, source=extended_name)

    def _source_outputs(self, relation: str) -> tuple[str, ...]:
        if self.catalog.is_table(relation):
            return self.catalog.table(relation).schema.names
        view_query = self.catalog.view(relation).query
        outputs = view_query.output_names()
        if outputs is not None:
            return outputs
        return self._source_outputs(view_query.source)

    def _rewrite_for_intensional(
        self,
        report: ReportDefinition,
        conditions: list,
    ) -> tuple:
        """Pull hidden condition columns into the query (§5's hidden-HIV trick)."""
        query = report.query
        needed: set[str] = set()
        for condition in conditions:
            needed |= set(condition.condition.columns())
        if needed and not query.joins:
            query = self._ensure_columns_available(query, needed)
        outputs = set(report.columns() or ())
        hidden: list[str] = []
        for condition in conditions:
            assert isinstance(condition, IntensionalCondition)
            for column in sorted(condition.hidden_columns(outputs)):
                if column in hidden:
                    continue
                if query.is_aggregate:
                    if condition.action == "suppress_row":
                        # Row suppression on aggregates applies *before*
                        # grouping, so the condition becomes a WHERE filter
                        # and no hidden column is needed.
                        continue
                    raise EnforcementError(
                        "cell-level intensional condition with hidden "
                        "columns cannot attach to an aggregate report"
                    )
                if not query.select:
                    raise EnforcementError(
                        f"report {report.name!r} must have an explicit "
                        "SELECT list for hidden-column enforcement"
                    )
                query = query.project(*query.select, column)
                hidden.append(column)
        # suppress_row conditions on aggregate reports become pre-filters.
        for condition in conditions:
            if condition.action == "suppress_row" and query.is_aggregate:
                query = query.filter(condition.condition)
        return query, hidden

    def _apply_row_conditions(
        self, table: Table, conditions: list
    ) -> tuple[Table, int]:
        """Drop rows failing suppress_row conditions (non-aggregate path)."""
        row_conditions = [
            c
            for c in conditions
            if c.action == "suppress_row"
            and c.condition.columns() <= set(table.schema.names)
        ]
        if not row_conditions:
            return table, 0
        keep = [
            i
            for i in range(len(table))
            if all(c.condition.evaluate(table.row_dict(i)) for c in row_conditions)
        ]
        dropped = len(table) - len(keep)
        return _subset(table, keep), dropped

    def _blank_cells(self, table: Table, conditions: list) -> Table:
        """Blank cells failing suppress_cell conditions."""
        cell_conditions = [
            c
            for c in conditions
            if c.action == "suppress_cell"
            and c.attribute in table.schema
            and c.condition.columns() <= set(table.schema.names)
        ]
        if not cell_conditions:
            return table
        from repro.relational.schema import Column, Schema

        blanked_columns = {c.attribute for c in cell_conditions}
        schema = Schema(
            Column(col.name, col.ctype, True)
            if col.name in blanked_columns
            else col
            for col in table.schema
        )
        rows = []
        for i in range(len(table)):
            row_dict = table.row_dict(i)
            mutated = list(table.rows[i])
            for condition in cell_conditions:
                if not condition.condition.evaluate(row_dict):
                    mutated[table.schema.index_of(condition.attribute)] = None
            rows.append(tuple(mutated))
        return Table.derived(
            table.name, schema, rows, list(table.provenance), provider=table.provider
        )

    def _apply_thresholds(self, table: Table, thresholds: list) -> tuple[Table, int]:
        """Suppress aggregate rows with too few base contributors."""
        if not thresholds:
            return table, 0
        required = max(t.min_group_size for t in thresholds)
        keep = [i for i in range(len(table)) if len(table.lineage_of(i)) >= required]
        dropped = len(table) - len(keep)
        return _subset(table, keep), dropped

    def _apply_anonymization(self, table: Table, requirements: list) -> Table:
        for requirement in requirements:
            assert isinstance(requirement, AnonymizationRequirement)
            if requirement.attribute not in table.schema:
                continue
            if requirement.method == "pseudonymize":
                if self.pseudonymizer is None:
                    raise EnforcementError(
                        f"PLA requires pseudonymizing {requirement.attribute!r} "
                        "but no Pseudonymizer is configured"
                    )
                table = self.pseudonymizer.apply(
                    table, [requirement.attribute], name=table.name
                )
            elif requirement.method == "suppress":
                table = self._suppress_column(table, requirement.attribute)
            else:  # generalize
                hierarchy = self.hierarchies.get(requirement.attribute)
                if hierarchy is None:
                    raise EnforcementError(
                        f"PLA requires generalizing {requirement.attribute!r} "
                        "but no hierarchy is configured"
                    )
                table = self._generalize_column(
                    table, requirement.attribute, hierarchy,
                    requirement.generalization_level,
                )
        return table

    @staticmethod
    def _suppress_column(table: Table, column: str) -> Table:
        from repro.relational.schema import Column, Schema

        idx = table.schema.index_of(column)
        schema = Schema(
            Column(c.name, c.ctype, True) if c.name == column else c
            for c in table.schema
        )
        rows = [
            tuple(None if j == idx else v for j, v in enumerate(row))
            for row in table.rows
        ]
        return Table.derived(
            table.name, schema, rows, list(table.provenance), provider=table.provider
        )

    @staticmethod
    def _generalize_column(
        table: Table, column: str, hierarchy: Hierarchy, level: int
    ) -> Table:
        from repro.relational.schema import Column, Schema
        from repro.relational.types import ColumnType

        idx = table.schema.index_of(column)
        schema = Schema(
            Column(c.name, ColumnType.STRING, True) if c.name == column else c
            for c in table.schema
        )
        rows = [
            tuple(
                hierarchy.generalize(v, level) if j == idx else v
                for j, v in enumerate(row)
            )
            for row in table.rows
        ]
        return Table.derived(
            table.name, schema, rows, list(table.provenance), provider=table.provider
        )

    @staticmethod
    def _project_away(table: Table, hidden: list[str]) -> Table:
        from repro.relational import algebra

        keep = [c for c in table.schema.names if c not in hidden]
        return algebra.project(table, keep, name=table.name)


def _subset(table: Table, keep: list[int]) -> Table:
    rows = [table.rows[i] for i in keep]
    provs: list[RowProvenance] = [table.provenance[i] for i in keep]
    return Table.derived(table.name, table.schema, rows, provs, provider=table.provider)


# ---------------------------------------------------------------------------
# Cross-layer projections
# ---------------------------------------------------------------------------


def to_etl_registry(plas: Iterable[PLA]) -> EtlPlaRegistry:
    """Project join/integration annotations of PLAs into ETL constraints."""
    registry = EtlPlaRegistry()
    n = 0
    for pla in plas:
        for annotation in pla.annotations:
            if isinstance(annotation, JoinPermission) and not annotation.allowed:
                registry.add(
                    JoinProhibition(
                        name=f"{pla.name}_join_{n}",
                        owner=pla.owner,
                        left=annotation.left,
                        right=annotation.right,
                        reason=f"from PLA {pla.name!r}",
                    )
                )
                n += 1
            elif isinstance(annotation, IntegrationPermission) and not annotation.allowed:
                registry.add(
                    IntegrationProhibition(
                        name=f"{pla.name}_integration_{n}",
                        owner=annotation.owner,
                        reason=f"from PLA {pla.name!r}",
                    )
                )
                n += 1
    return registry


def to_vpd_policy(plas: Iterable[PLA]) -> VPDPolicy:
    """Project source-level PLAs into VPD rules (row predicates + masks).

    Supported at this layer: intensional suppress_row conditions become row
    predicates; attribute-access annotations with an empty role set and
    anonymization ``suppress`` requirements become column masks. Other kinds
    need report- or ETL-side enforcement and are ignored here.
    """
    policy = VPDPolicy()
    by_table: dict[str, dict] = {}
    for pla in plas:
        entry = by_table.setdefault(
            pla.target, {"predicate": None, "masks": []}
        )
        restriction = pla.row_restriction()
        if restriction is not None:
            entry["predicate"] = (
                restriction
                if entry["predicate"] is None
                else entry["predicate"] & restriction
            )
        for annotation in pla.annotations:
            if isinstance(annotation, AnonymizationRequirement) and (
                annotation.method == "suppress"
            ):
                entry["masks"].append(ColumnMask(annotation.attribute))
            elif isinstance(annotation, AttributeAccess) and (
                not annotation.allowed_roles
            ):
                entry["masks"].append(ColumnMask(annotation.attribute))
    for table, entry in by_table.items():
        policy.add_rule(
            VPDRule(
                relation=table,
                predicate=entry["predicate"],
                masks=tuple(entry["masks"]),
            )
        )
    return policy
