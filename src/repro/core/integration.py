"""Multi-owner PLA integration (§2's second named challenge).

"PLA integration. This challenge is related to the integration of multiple
privacy requirements from different sources and checking for their
compliance in data transformations and reporting."

When several owners' PLAs attach to the same target (a meta-report over
integrated data draws from every contributing source), their annotations
must be combined. The rules:

* **strictest wins** where annotations are ordered (thresholds take the
  max; attribute audiences intersect; anonymization takes the stronger
  method, suppression > pseudonymization > generalization by level);
* **prohibitions are absolute** (a join/integration prohibition from any
  owner stands, even if another owner permits the same pair) — but the
  disagreement is *reported* as a conflict so the BI provider can go back
  to the owners rather than silently override one of them;
* **intensional conditions accumulate** (all of them must hold).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.pla import PLA, PlaLevel
from repro.errors import PolicyError

__all__ = ["PlaConflict", "IntegrationResult", "integrate_plas"]

_METHOD_STRENGTH = {"generalize": 1, "pseudonymize": 2, "suppress": 3}


@dataclass(frozen=True)
class PlaConflict:
    """Two owners disagree; the merge picked the protective side."""

    kind: str
    owners: tuple[str, ...]
    detail: str
    resolution: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {' vs '.join(self.owners)}: {self.detail} "
            f"-> {self.resolution}"
        )


@dataclass
class IntegrationResult:
    """The merged annotation set plus the disagreements found on the way."""

    annotations: tuple[Annotation, ...]
    conflicts: tuple[PlaConflict, ...]
    owners: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.conflicts

    def merged_pla(self, *, name: str, target: str) -> PLA:
        """The integrated agreement, owned jointly (owner = 'a+b+c')."""
        return PLA(
            name=name,
            owner="+".join(self.owners),
            level=PlaLevel.METAREPORT,
            target=target,
            annotations=self.annotations,
        )


def integrate_plas(plas: list[PLA]) -> IntegrationResult:
    """Merge several owners' PLAs for one target into one annotation set."""
    if not plas:
        raise PolicyError("nothing to integrate")
    targets = {p.target for p in plas}
    if len(targets) > 1:
        raise PolicyError(
            f"PLAs target different artifacts: {sorted(targets)}; integrate "
            "per target"
        )
    owners = tuple(sorted({p.owner for p in plas}))
    conflicts: list[PlaConflict] = []
    merged: list[Annotation] = []

    # -- aggregation thresholds: strictest wins ------------------------------
    thresholds = [
        (p.owner, a)
        for p in plas
        for a in p.annotations
        if isinstance(a, AggregationThreshold)
    ]
    if thresholds:
        strictest_owner, strictest = max(
            thresholds, key=lambda pair: pair[1].min_group_size
        )
        sizes = {a.min_group_size for _, a in thresholds}
        if len(sizes) > 1:
            conflicts.append(
                PlaConflict(
                    kind="aggregation_threshold",
                    owners=tuple(sorted({o for o, _ in thresholds})),
                    detail=f"thresholds differ: {sorted(sizes)}",
                    resolution=f"strictest wins ({strictest.min_group_size}, "
                    f"from {strictest_owner})",
                )
            )
        merged.append(strictest)

    # -- attribute access: audiences intersect --------------------------------
    by_attribute: dict[str, list[tuple[str, AttributeAccess]]] = {}
    for p in plas:
        for a in p.annotations:
            if isinstance(a, AttributeAccess):
                by_attribute.setdefault(a.attribute, []).append((p.owner, a))
    for attribute, entries in sorted(by_attribute.items()):
        roles = entries[0][1].allowed_roles
        for _, annotation in entries[1:]:
            roles = roles & annotation.allowed_roles
        role_sets = {e[1].allowed_roles for e in entries}
        if len(role_sets) > 1:
            conflicts.append(
                PlaConflict(
                    kind="attribute_access",
                    owners=tuple(sorted({o for o, _ in entries})),
                    detail=f"audiences for {attribute!r} differ",
                    resolution=f"intersection kept ({sorted(roles)})",
                )
            )
        merged.append(AttributeAccess(attribute, frozenset(roles)))

    # -- anonymization: stronger method wins ------------------------------------
    by_anon: dict[str, list[tuple[str, AnonymizationRequirement]]] = {}
    for p in plas:
        for a in p.annotations:
            if isinstance(a, AnonymizationRequirement):
                by_anon.setdefault(a.attribute, []).append((p.owner, a))
    for attribute, entries in sorted(by_anon.items()):
        strongest_owner, strongest = max(
            entries,
            key=lambda pair: (
                _METHOD_STRENGTH[pair[1].method],
                pair[1].generalization_level,
            ),
        )
        if len({(e[1].method, e[1].generalization_level) for e in entries}) > 1:
            conflicts.append(
                PlaConflict(
                    kind="anonymization",
                    owners=tuple(sorted({o for o, _ in entries})),
                    detail=f"methods for {attribute!r} differ",
                    resolution=f"strongest kept ({strongest.method}, "
                    f"from {strongest_owner})",
                )
            )
        merged.append(strongest)

    # -- join permissions: any prohibition stands ----------------------------------
    by_pair: dict[frozenset, list[tuple[str, JoinPermission]]] = {}
    for p in plas:
        for a in p.annotations:
            if isinstance(a, JoinPermission):
                by_pair.setdefault(a.pair(), []).append((p.owner, a))
    for pair, entries in sorted(by_pair.items(), key=lambda kv: sorted(kv[0])):
        verdicts = {e[1].allowed for e in entries}
        prohibiting = [e for e in entries if not e[1].allowed]
        if verdicts == {True}:
            merged.append(entries[0][1])
            continue
        if len(verdicts) > 1:
            conflicts.append(
                PlaConflict(
                    kind="join_permission",
                    owners=tuple(sorted({o for o, _ in entries})),
                    detail=f"{sorted(pair)}: one owner permits, another prohibits",
                    resolution="prohibition stands",
                )
            )
        merged.append(prohibiting[0][1])

    # -- integration permissions: any prohibition stands, per owner --------------------
    by_owner: dict[str, list[tuple[str, IntegrationPermission]]] = {}
    for p in plas:
        for a in p.annotations:
            if isinstance(a, IntegrationPermission):
                by_owner.setdefault(a.owner, []).append((p.owner, a))
    for data_owner, entries in sorted(by_owner.items()):
        verdicts = {e[1].allowed for e in entries}
        if len(verdicts) > 1:
            conflicts.append(
                PlaConflict(
                    kind="integration_permission",
                    owners=tuple(sorted({o for o, _ in entries})),
                    detail=f"integration of {data_owner!r} data disputed",
                    resolution="prohibition stands",
                )
            )
        merged.append(IntegrationPermission(data_owner, allowed=verdicts == {True}))

    # -- intensional conditions: all accumulate (dedup by text) -------------------------
    seen_conditions: set[tuple[str, str, str]] = set()
    for p in plas:
        for a in p.annotations:
            if isinstance(a, IntensionalCondition):
                key = (a.attribute, str(a.condition), a.action)
                if key not in seen_conditions:
                    seen_conditions.add(key)
                    merged.append(a)

    return IntegrationResult(
        annotations=tuple(merged),
        conflicts=tuple(conflicts),
        owners=owners,
    )
