"""The four PLA-engineering levels and their measurable trade-offs (Fig 5).

"...there is a continuum from the PLAs defined on the sources, data
warehouse, meta-reports, and reports, going at increasing levels of
simplicity and volatility of the PLA definitions."

Each level adapter answers the three questions FIG5 quantifies:

* **What must the owner review?** (:meth:`artifacts` → elicitation effort:
  Σ comprehension-weight × element count; weights encode the paper's
  experience that source schemas are the hardest artifacts to discuss and
  concrete reports the easiest.)
* **Does a report-evolution event invalidate the approvals?**
  (:meth:`covers_event` → stability; the meta-report level answers with an
  actual derivability check, the report level must re-elicit on almost
  every change, the source level almost never.)
* **Which requirement kinds are directly testable here?**
  (:attr:`testability` → precision; e.g. a source-level PLA cannot test a
  report aggregation threshold because reports are invisible from the
  source.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.core.containment import source_columns_used
from repro.core.metareport import MetaReportSet
from repro.core.pla import PlaLevel
from repro.relational.catalog import Catalog
from repro.reports.definition import ReportDefinition
from repro.reports.evolution import EvolutionEvent, EvolutionKind
from repro.sources.provider import DataProvider

__all__ = [
    "ElicitationArtifact",
    "COMPREHENSION_WEIGHTS",
    "TESTABILITY",
    "EngineeringLevel",
    "SourceLevel",
    "WarehouseLevel",
    "MetaReportLevel",
    "ReportLevel",
]


@dataclass(frozen=True)
class ElicitationArtifact:
    """One thing the source owner must understand and annotate."""

    kind: str  # key into COMPREHENSION_WEIGHTS
    name: str
    n_elements: int  # columns / operators the owner must consider

    def effort(self) -> float:
        return COMPREHENSION_WEIGHTS[self.kind] * self.n_elements


#: Relative owner effort per schema element, by artifact kind. The ordering
#: (source ≫ ETL > warehouse > meta-report > report) encodes §3–§5's
#: experience: "the schema may be too complex", "the data warehouse is the
#: result of significant data processing and it may be difficult to present
#: and explain", versus reports where owners "see exactly which information
#: is shown to which user". Units are arbitrary "interaction units"; FIG5's
#: claims rest on ordering and ratios, not absolute values.
COMPREHENSION_WEIGHTS: dict[str, float] = {
    "source_table": 4.0,
    "etl_flow": 3.0,
    "warehouse_table": 2.5,
    "metareport": 1.5,
    "report": 1.0,
}

#: Which PLA requirement kinds each level can state as a *directly testable*
#: check (1.0), an approximate/partial check (0.5), or not at all (0.0).
TESTABILITY: dict[PlaLevel, dict[str, float]] = {
    PlaLevel.SOURCE: {
        "attribute_access": 1.0,
        # Reports are invisible from the source; group sizes cannot be tested.
        "aggregation_threshold": 0.0,
        "anonymization": 1.0,
        # Only joins within the owner's own tables are visible; cross-source
        # combinations happen downstream.
        "join_permission": 0.5,
        "integration_permission": 0.5,
        "intensional_condition": 1.0,
    },
    PlaLevel.WAREHOUSE: {
        "attribute_access": 1.0,
        # Cube-level floors are testable, but per-report grouping is not.
        "aggregation_threshold": 0.5,
        "anonymization": 1.0,
        "join_permission": 1.0,  # ETL joins are exactly what is annotated
        "integration_permission": 1.0,
        "intensional_condition": 1.0,
    },
    PlaLevel.METAREPORT: {
        "attribute_access": 1.0,
        "aggregation_threshold": 1.0,
        "anonymization": 1.0,
        "join_permission": 1.0,  # via the source-identity lineage map
        "integration_permission": 1.0,  # projected into the ETL registry
        "intensional_condition": 1.0,
    },
    PlaLevel.REPORT: {
        "attribute_access": 1.0,
        "aggregation_threshold": 1.0,
        "anonymization": 1.0,
        "join_permission": 1.0,
        # "Defining privacy on the reports does not make us exempt from
        # defining PLAs also based on how data is used during transformation."
        "integration_permission": 0.5,
        "intensional_condition": 1.0,
    },
}


class EngineeringLevel(abc.ABC):
    """Common protocol of the four level adapters."""

    level: PlaLevel

    @abc.abstractmethod
    def artifacts(self) -> list[ElicitationArtifact]:
        """What the owner must review to approve PLAs at this level."""

    @abc.abstractmethod
    def covers_event(self, event: EvolutionEvent) -> bool:
        """True if existing approvals survive ``event`` (no re-elicitation)."""

    @abc.abstractmethod
    def note_event(self, event: EvolutionEvent) -> None:
        """Record that ``event`` happened (and was re-elicited if needed)."""

    def reelicitation_artifacts(
        self, event: EvolutionEvent
    ) -> list[ElicitationArtifact]:
        """What the owner must re-review when ``event`` is not covered.

        The default is the incremental artifact the event touches; levels
        override where the granularity differs.
        """
        return [ElicitationArtifact(self._artifact_kind(), event.report, 1)]

    def _artifact_kind(self) -> str:
        return {
            PlaLevel.SOURCE: "source_table",
            PlaLevel.WAREHOUSE: "warehouse_table",
            PlaLevel.METAREPORT: "metareport",
            PlaLevel.REPORT: "report",
        }[self.level]

    def elicitation_effort(self) -> float:
        return sum(artifact.effort() for artifact in self.artifacts())

    def testability(self, kind: str) -> float:
        return TESTABILITY[self.level].get(kind, 0.0)

    def mean_testability(self, kinds: Sequence[str]) -> float:
        if not kinds:
            return 1.0
        return sum(self.testability(k) for k in kinds) / len(kinds)


class SourceLevel(EngineeringLevel):
    """PLAs on the source schemas (§3): stable, but costly and over-broad."""

    level = PlaLevel.SOURCE

    def __init__(self, providers: Sequence[DataProvider]) -> None:
        self.providers = list(providers)

    def artifacts(self) -> list[ElicitationArtifact]:
        out = []
        for provider in self.providers:
            for table_name in provider.table_names():
                table = provider.table(table_name)
                out.append(
                    ElicitationArtifact(
                        kind="source_table",
                        name=f"{provider.name}/{table_name}",
                        n_elements=len(table.schema),
                    )
                )
        return out

    def covers_event(self, event: EvolutionEvent) -> bool:
        # Source PLAs quantify over all the source's data; report churn
        # never touches them. (A new *source table* would, but report
        # evolution events cannot introduce one.)
        return True

    def note_event(self, event: EvolutionEvent) -> None:  # pragma: no cover
        return None

    def over_engineering_ratio(
        self,
        workload: Sequence[ReportDefinition],
        reached_relations: frozenset[str] | set[str],
    ) -> float:
        """Fraction of elicited source columns no report ever uses.

        ``reached_relations`` is the set of ``provider/table`` identities in
        the lineage of the report workload (from
        :meth:`~repro.core.compliance.ComplianceChecker.source_footprint`).
        A source column counts as used only if its table is reached *and*
        some report reads a column of that name — §3's over-engineering is
        everything else the owner was asked to annotate anyway.
        """
        used_columns: set[str] = set()
        for report in workload:
            used_columns.update(source_columns_used(report.query))
        total = 0
        used = 0
        for provider in self.providers:
            for table_name in provider.table_names():
                table = provider.table(table_name)
                total += len(table.schema)
                if f"{provider.name}/{table_name}" not in reached_relations:
                    continue
                used += sum(1 for c in table.schema.names if c in used_columns)
        if total == 0:
            return 0.0
        return 1.0 - used / total


class WarehouseLevel(EngineeringLevel):
    """PLAs on DWH tables and ETL flows (§4)."""

    level = PlaLevel.WAREHOUSE

    def __init__(
        self,
        warehouse_tables: Sequence[tuple[str, int]],  # (name, n_columns)
        etl_flows: Sequence[tuple[str, int]],  # (name, n_operators)
        warehouse_columns: frozenset[str],
    ) -> None:
        self.warehouse_tables = list(warehouse_tables)
        self.etl_flows = list(etl_flows)
        self.warehouse_columns = warehouse_columns

    def artifacts(self) -> list[ElicitationArtifact]:
        out = [
            ElicitationArtifact("warehouse_table", name, n)
            for name, n in self.warehouse_tables
        ]
        out.extend(
            ElicitationArtifact("etl_flow", name, n) for name, n in self.etl_flows
        )
        return out

    def covers_event(self, event: EvolutionEvent) -> bool:
        # Warehouse PLAs survive any report change that stays inside the
        # loaded schema. Only a column outside the warehouse (a new feed)
        # forces re-elicitation.
        if event.kind in (EvolutionKind.ADD_COLUMN, EvolutionKind.CHANGE_GROUPING):
            return event.column in self.warehouse_columns
        if event.kind is EvolutionKind.ADD_REPORT and event.definition is not None:
            used = source_columns_used(event.definition.query)
            return used <= self.warehouse_columns
        return True

    def note_event(self, event: EvolutionEvent) -> None:
        # Re-elicitation at this level means extending the warehouse schema
        # approval with the new column.
        if event.column is not None:
            self.warehouse_columns = self.warehouse_columns | {event.column}
        if event.kind is EvolutionKind.ADD_REPORT and event.definition is not None:
            self.warehouse_columns = self.warehouse_columns | source_columns_used(
                event.definition.query
            )

    def over_engineering_ratio(self, workload: Sequence[ReportDefinition]) -> float:
        """Fraction of warehouse (wide-view) columns the workload never
        touches — smaller than at the source because "the source owner can
        clearly see which data is used and in which form" (§4), but
        "reduced, yet not eliminated"."""
        used_columns: set[str] = set()
        for report in workload:
            used_columns.update(source_columns_used(report.query))
        if not self.warehouse_columns:
            return 0.0
        used = len(used_columns & self.warehouse_columns)
        return max(0.0, 1.0 - used / len(self.warehouse_columns))


class MetaReportLevel(EngineeringLevel):
    """PLAs on meta-reports (§5) — the paper's proposal.

    Coverage follows the §5 lifecycle: a new/changed report is covered when
    it is derivable from an approved meta-report. When it is not, the
    re-elicitation session *extends* the best-matching meta-report with the
    missing columns (the owner approves the wider view), so subsequent
    reports over the same column combination are covered without a new
    interaction — this is how the meta-report set converges toward
    "minimal yet exhaustive".
    """

    level = PlaLevel.METAREPORT

    def __init__(self, metareports: MetaReportSet, catalog: Catalog) -> None:
        self.metareports = metareports
        self.catalog = catalog
        self._known_reports: dict[str, ReportDefinition] = {}
        # Approved extensions per meta-report, granted during re-elicitation.
        self._extensions: dict[str, set[str]] = {
            m.name: set() for m in metareports
        }

    def artifacts(self) -> list[ElicitationArtifact]:
        return [
            ElicitationArtifact(
                "metareport",
                m.name,
                len(m.columns()) + len(self._extensions.get(m.name, ())),
            )
            for m in self.metareports
        ]

    def register_workload(self, workload: Sequence[ReportDefinition]) -> None:
        for report in workload:
            self._known_reports[report.name] = report

    def _extended_columns(self, metareport_name: str) -> set[str]:
        metareport = self.metareports.get(metareport_name)
        return set(metareport.columns()) | self._extensions.get(metareport_name, set())

    def _updated_definition(self, event: EvolutionEvent) -> ReportDefinition | None:
        from repro.reports.catalog import ReportCatalog
        from repro.reports.evolution import apply_event

        shadow = ReportCatalog()
        for definition in self._known_reports.values():
            shadow.add(definition)
        return apply_event(shadow, event)

    def _is_covered(self, report: ReportDefinition) -> bool:
        covering, _ = self.metareports.find_covering(report, self.catalog)
        if covering is not None:
            return True
        used = source_columns_used(report.query)
        return any(
            used <= self._extended_columns(m.name) for m in self.metareports
        )

    def covers_event(self, event: EvolutionEvent) -> bool:
        """Apply the event to a shadow definition, then check derivability."""
        try:
            updated = self._updated_definition(event)
        except Exception:
            return False
        if updated is None:  # DROP_REPORT shrinks exposure; always covered
            return True
        return self._is_covered(updated)

    def note_event(self, event: EvolutionEvent) -> None:
        try:
            updated = self._updated_definition(event)
        except Exception:
            return
        if event.kind is EvolutionKind.DROP_REPORT:
            self._known_reports.pop(event.report, None)
            return
        if updated is None:
            return
        self._known_reports[updated.name] = updated
        if not self._is_covered(updated):
            # Re-elicitation outcome: extend the best-overlapping meta-report
            # with the missing columns; the owner approves the wider view.
            used = source_columns_used(updated.query)
            best = max(
                self.metareports,
                key=lambda m: len(used & self._extended_columns(m.name)),
            )
            self._extensions.setdefault(best.name, set()).update(
                used - self._extended_columns(best.name)
            )

    def reelicitation_artifacts(
        self, event: EvolutionEvent
    ) -> list[ElicitationArtifact]:
        # Re-elicitation at this level extends (or adds) a meta-report; the
        # owner reviews one meta-report-sized artifact, not every report.
        if len(self.metareports):
            avg_columns = max(
                1, self.metareports.total_columns() // len(self.metareports)
            )
        else:
            avg_columns = 1
        return [ElicitationArtifact("metareport", f"extend:{event.report}", avg_columns)]

    def over_engineering_ratio(self, workload: Sequence[ReportDefinition]) -> float:
        """Meta-report columns no workload report uses (near zero by
        construction — they were generated from the workload)."""
        used_columns: set[str] = set()
        for report in workload:
            used_columns.update(source_columns_used(report.query))
        total = self.metareports.total_columns()
        if total == 0:
            return 0.0
        used = sum(
            1
            for metareport in self.metareports
            for column in metareport.columns()
            if column in used_columns
        )
        return max(0.0, 1.0 - used / total)


class ReportLevel(EngineeringLevel):
    """PLAs on each concrete report (§5's starting point)."""

    level = PlaLevel.REPORT

    def __init__(self, workload: Sequence[ReportDefinition]) -> None:
        self._reports: dict[str, ReportDefinition] = {
            report.name: report for report in workload
        }

    def artifacts(self) -> list[ElicitationArtifact]:
        out = []
        for report in self._reports.values():
            columns = report.columns()
            out.append(
                ElicitationArtifact(
                    "report", report.name, len(columns) if columns else 1
                )
            )
        return out

    def covers_event(self, event: EvolutionEvent) -> bool:
        # "collected requirements are defined on each specific report, thus
        # losing their validity with the evolution of the report" — every
        # change except a retirement needs a fresh owner interaction.
        return event.kind is EvolutionKind.DROP_REPORT

    def note_event(self, event: EvolutionEvent) -> None:
        if event.kind is EvolutionKind.DROP_REPORT:
            self._reports.pop(event.report, None)
        elif event.kind is EvolutionKind.ADD_REPORT and event.definition is not None:
            self._reports[event.definition.name] = event.definition

    def reelicitation_artifacts(
        self, event: EvolutionEvent
    ) -> list[ElicitationArtifact]:
        # The whole (new version of the) report goes back to the owner.
        if event.definition is not None:
            columns = event.definition.columns()
            size = len(columns) if columns else 1
        else:
            existing = self._reports.get(event.report)
            columns = existing.columns() if existing else None
            size = len(columns) if columns else 3
        return [ElicitationArtifact("report", event.report, size)]

    def over_engineering_ratio(self) -> float:
        """Zero by construction: "only the PLAs that are actually needed
        are specified" (§5)."""
        return 0.0
