"""PLA annotations: the report/meta-report annotation vocabulary of §5.

"In general, annotations can include i) who can access a certain attribute,
ii) what are the aggregation requirements on a table (how many base elements
should be present before the aggregation), iii) anonymization requirements
on an attribute, iv) join permissions/prohibitions ... and v) integration
permission". Intensional, instance-specific conditions ("medical
examination results can be shown only for patients that are not HIV
positive") are the sixth, cross-cutting kind.

Every annotation knows its ``requirement_kind`` — the vocabulary shared with
:meth:`repro.policy.rbac.PRBACPolicy.can_express`, which is how the ABL-PBAC
benchmark measures the expressiveness gap.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import PolicyError
from repro.relational.expressions import Expr

__all__ = [
    "Annotation",
    "AttributeAccess",
    "AggregationThreshold",
    "AnonymizationRequirement",
    "JoinPermission",
    "IntegrationPermission",
    "IntensionalCondition",
    "ANNOTATION_KINDS",
]

ANNOTATION_KINDS = (
    "attribute_access",
    "aggregation_threshold",
    "anonymization",
    "join_permission",
    "integration_permission",
    "intensional_condition",
)


class Annotation(abc.ABC):
    """Base class: every annotation names its kind and can describe itself."""

    requirement_kind: str = "abstract"

    @abc.abstractmethod
    def describe(self) -> str:
        """Owner-readable statement of the requirement."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class AttributeAccess(Annotation):
    """(i) Who can access a certain attribute."""

    attribute: str
    allowed_roles: frozenset[str]

    requirement_kind = "attribute_access"

    def __post_init__(self) -> None:
        if not self.attribute:
            raise PolicyError("attribute name must be non-empty")

    def permits(self, roles: frozenset[str] | set[str]) -> bool:
        """True if *every* holder of ``roles`` may see the attribute.

        An audience is acceptable only if each of its roles is allowed —
        one unauthorized role in the audience is a disclosure.
        """
        return set(roles) <= self.allowed_roles

    def describe(self) -> str:
        return (
            f"attribute {self.attribute!r} visible only to roles "
            f"{sorted(self.allowed_roles)}"
        )


@dataclass(frozen=True)
class AggregationThreshold(Annotation):
    """(ii) Minimum contributor count before a group may be published."""

    min_group_size: int
    scope: str = ""  # optional attribute the threshold protects, for docs

    requirement_kind = "aggregation_threshold"

    def __post_init__(self) -> None:
        if self.min_group_size < 1:
            raise PolicyError("min_group_size must be at least 1")

    def satisfied_by(self, contributor_count: int) -> bool:
        return contributor_count >= self.min_group_size

    def describe(self) -> str:
        about = f" (protecting {self.scope})" if self.scope else ""
        return (
            f"aggregates must combine at least {self.min_group_size} "
            f"base records{about}"
        )


@dataclass(frozen=True)
class AnonymizationRequirement(Annotation):
    """(iii) An attribute must be anonymized before display."""

    attribute: str
    method: str  # "pseudonymize" | "suppress" | "generalize"
    generalization_level: int = 0  # for method == "generalize"

    requirement_kind = "anonymization"

    _METHODS = ("pseudonymize", "suppress", "generalize")

    def __post_init__(self) -> None:
        if self.method not in self._METHODS:
            raise PolicyError(
                f"unknown anonymization method {self.method!r}; "
                f"expected one of {self._METHODS}"
            )

    def describe(self) -> str:
        extra = (
            f" to level {self.generalization_level}"
            if self.method == "generalize"
            else ""
        )
        return f"attribute {self.attribute!r} must be {self.method}d{extra}"


@dataclass(frozen=True)
class JoinPermission(Annotation):
    """(iv) Permission or prohibition to combine two sources' data.

    Relations are ``provider/table`` identities, matching
    :mod:`repro.etl.annotations`.
    """

    left: str
    right: str
    allowed: bool

    requirement_kind = "join_permission"

    def pair(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def describe(self) -> str:
        verb = "may" if self.allowed else "must NOT"
        return f"data from {self.left} {verb} be combined with {self.right}"


@dataclass(frozen=True)
class IntegrationPermission(Annotation):
    """(v) Permission to use this owner's data to clean/resolve others' data."""

    owner: str
    allowed: bool

    requirement_kind = "integration_permission"

    def describe(self) -> str:
        verb = "may" if self.allowed else "must NOT"
        return f"{self.owner}'s data {verb} be used to clean/resolve other owners' data"


@dataclass(frozen=True)
class IntensionalCondition(Annotation):
    """Instance-specific condition: show ``attribute`` only where ``condition``.

    ``condition`` may reference columns that are *not* displayed — "HIV can
    be a separate column in the same report that is used only for purposes
    of defining PLAs, even if it is not made visible to users". The
    enforcement translator pulls such hidden columns into the query,
    evaluates the condition per row, applies ``action``, and projects the
    hidden columns away again.

    ``action`` is ``"suppress_cell"`` (blank the attribute) or
    ``"suppress_row"`` (drop the row).
    """

    attribute: str
    condition: Expr
    action: str = "suppress_cell"

    requirement_kind = "intensional_condition"

    _ACTIONS = ("suppress_cell", "suppress_row")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise PolicyError(
                f"unknown action {self.action!r}; expected one of {self._ACTIONS}"
            )

    def hidden_columns(self, visible: set[str] | frozenset[str]) -> frozenset[str]:
        """Condition columns not among the visible report columns."""
        return self.condition.columns() - set(visible)

    def describe(self) -> str:
        effect = "blanked" if self.action == "suppress_cell" else "dropped with its row"
        return (
            f"attribute {self.attribute!r} shown only where ({self.condition}); "
            f"otherwise {effect}"
        )
