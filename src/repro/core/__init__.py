"""Core contribution: PLA engineering across source/warehouse/meta-report/report.

This package implements the paper's primary proposal — eliciting and
modeling privacy requirements on reports and meta-reports, checking every
new/changed report for compliance by derivability from an approved
meta-report, and translating PLA annotations into runtime and ETL
enforcement.
"""

from repro.core.annotations import (
    ANNOTATION_KINDS,
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.compliance import (
    ComplianceChecker,
    ComplianceVerdict,
    ComplianceViolation,
    RuntimeObligation,
)
from repro.core.containment import (
    CanonicalQuery,
    DerivabilityResult,
    NotConjunctive,
    canonicalize,
    check_derivability,
    clear_proof_caches,
    is_contained,
    predicate_implies,
    proof_cache_stats,
    set_proof_caching,
    source_columns_used,
)
from repro.core.elicitation import (
    ElicitationLedger,
    ElicitationSession,
    OwnerModel,
    SessionRecord,
)
from repro.core.gap import CoverageGap, CoverageReport, analyze_coverage
from repro.core.integration import IntegrationResult, PlaConflict, integrate_plas
from repro.core.levels import (
    COMPREHENSION_WEIGHTS,
    TESTABILITY,
    ElicitationArtifact,
    EngineeringLevel,
    MetaReportLevel,
    ReportLevel,
    SourceLevel,
    WarehouseLevel,
)
from repro.core.metareport import MetaReport, MetaReportSet, generate_metareports
from repro.core.pla import PLA, PlaLevel, PlaRegistry, PlaStatus
from repro.core.testcases import PlaTestHarness, PlaTestResult
from repro.core.tool import ColumnCard, ElicitationTool
from repro.core.translation import ReportLevelEnforcer, to_etl_registry, to_vpd_policy

__all__ = [
    "ANNOTATION_KINDS",
    "AggregationThreshold",
    "Annotation",
    "AnonymizationRequirement",
    "AttributeAccess",
    "COMPREHENSION_WEIGHTS",
    "CanonicalQuery",
    "ColumnCard",
    "ComplianceChecker",
    "ComplianceVerdict",
    "ComplianceViolation",
    "CoverageGap",
    "CoverageReport",
    "ElicitationTool",
    "analyze_coverage",
    "DerivabilityResult",
    "ElicitationArtifact",
    "ElicitationLedger",
    "ElicitationSession",
    "EngineeringLevel",
    "IntegrationPermission",
    "IntegrationResult",
    "IntensionalCondition",
    "JoinPermission",
    "PlaConflict",
    "integrate_plas",
    "MetaReport",
    "MetaReportLevel",
    "MetaReportSet",
    "NotConjunctive",
    "OwnerModel",
    "PLA",
    "PlaLevel",
    "PlaRegistry",
    "PlaStatus",
    "PlaTestHarness",
    "PlaTestResult",
    "ReportLevel",
    "ReportLevelEnforcer",
    "RuntimeObligation",
    "SessionRecord",
    "SourceLevel",
    "TESTABILITY",
    "WarehouseLevel",
    "canonicalize",
    "check_derivability",
    "clear_proof_caches",
    "generate_metareports",
    "is_contained",
    "predicate_implies",
    "proof_cache_stats",
    "set_proof_caching",
    "source_columns_used",
    "to_etl_registry",
    "to_vpd_policy",
]
