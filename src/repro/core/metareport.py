"""Meta-reports: the paper's proposed PLA-elicitation artifact (§5).

"Meta-reports represent tables or views over the data warehouse that contain
data that can be used to define reports ... an intermediate step between the
complexity and stability of the data warehouse, and the simplicity and
volatility of the final reports."

This module provides the meta-report object, the covering check used by the
compliance engine, and :func:`generate_metareports` — an answer to the
paper's open design challenge of finding "a minimal yet exhaustive set of
meta-reports". The generator clusters the report workload by
column-footprint similarity and emits one wide view per cluster; the
``max_metareports`` knob sweeps the granularity continuum of Fig 5 (1 =
whole-warehouse universe, len(workload) = per-report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PolicyError
from repro.core.containment import (
    DerivabilityResult,
    NotConjunctive,
    check_derivability,
    source_columns_used,
)
from repro.core.pla import PLA, PlaStatus
from repro.relational.catalog import Catalog, View
from repro.relational.expressions import And, Col, Expr, Or
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition

__all__ = [
    "MetaReport",
    "MetaReportSet",
    "generate_metareports",
    "effective_region",
]

_MAX_CHAIN_DEPTH = 32


@dataclass
class MetaReport:
    """A wide view over the warehouse carrying an elicited PLA."""

    name: str
    query: Query
    description: str = ""
    pla: PLA | None = None

    @property
    def approved(self) -> bool:
        """Approved meta-reports are the only valid compliance baselines."""
        return self.pla is not None and self.pla.status is PlaStatus.APPROVED

    def columns(self) -> tuple[str, ...]:
        names = self.query.output_names()
        if names is None:
            raise PolicyError(
                f"meta-report {self.name!r} must have an explicit column list"
            )
        return names

    def attach_pla(self, pla: PLA) -> None:
        if pla.target != self.name:
            raise PolicyError(
                f"PLA targets {pla.target!r}, not meta-report {self.name!r}"
            )
        self.pla = pla

    def as_view(self) -> View:
        return View(self.name, self.query, description=self.description)

    def describe(self) -> str:
        status = "approved" if self.approved else "draft"
        return f"meta-report {self.name!r} ({status}): {', '.join(self.columns())}"


@dataclass
class MetaReportSet:
    """The agreed meta-report collection of one BI deployment."""

    metareports: list[MetaReport] = field(default_factory=list)

    def add(self, metareport: MetaReport) -> MetaReport:
        if any(m.name == metareport.name for m in self.metareports):
            raise PolicyError(f"meta-report {metareport.name!r} already exists")
        self.metareports.append(metareport)
        return metareport

    def get(self, name: str) -> MetaReport:
        for metareport in self.metareports:
            if metareport.name == name:
                return metareport
        raise PolicyError(f"no meta-report named {name!r}")

    def __len__(self) -> int:
        return len(self.metareports)

    def __iter__(self):
        return iter(self.metareports)

    def register_views(self, catalog: Catalog) -> None:
        """Make every meta-report queryable (reports may be authored over them)."""
        for metareport in self.metareports:
            catalog.add_view(metareport.as_view(), replace=True)

    def find_covering(
        self, report: ReportDefinition, catalog: Catalog
    ) -> tuple[MetaReport | None, tuple[DerivabilityResult, ...]]:
        """The first approved meta-report the report is derivable from.

        Returns ``(metareport, attempts)``; ``metareport`` is None when no
        approved meta-report covers the report — the §5 trigger for a fresh
        elicitation round.
        """
        attempts = []
        for metareport in self.metareports:
            if not metareport.approved:
                continue
            result = check_derivability(
                report.query, metareport.name, metareport.query, catalog
            )
            attempts.append(result)
            if result:
                return metareport, tuple(attempts)
        return None, tuple(attempts)

    def total_columns(self) -> int:
        """Total column count across meta-reports — an elicitation-size metric."""
        return sum(len(m.columns()) for m in self.metareports)

    def extend(
        self,
        name: str,
        new_columns: Sequence[str],
        *,
        universe_columns: Sequence[str],
        catalog: Catalog,
        registry: "PlaRegistryLike | None" = None,
    ) -> MetaReport:
        """Extend a meta-report with additional universe columns (§5 lifecycle).

        This is the re-elicitation outcome: when a new report is not
        derivable from any approved meta-report, the owner reviews a wider
        view. The extended meta-report keeps universe column order, its view
        is re-registered, and — if a PLA registry is given — its PLA is
        revised to a new *draft* version awaiting approval (the extension is
        not usable for compliance until the owner approves it again).
        """
        metareport = self.get(name)
        universe_set = set(universe_columns)
        unknown = [c for c in new_columns if c not in universe_set]
        if unknown:
            raise PolicyError(
                f"cannot extend {name!r} with columns outside the universe: {unknown}"
            )
        merged = set(metareport.columns()) | set(new_columns)
        order = {c: i for i, c in enumerate(universe_columns)}
        columns = sorted(merged, key=order.__getitem__)
        metareport.query = Query.from_(metareport.query.source).project(*columns)
        catalog.add_view(metareport.as_view(), replace=True)
        if registry is not None and metareport.pla is not None:
            revised = registry.revise(
                metareport.pla.name, metareport.pla.annotations
            )
            metareport.pla = revised  # draft until the owner re-approves
        return metareport


class PlaRegistryLike:
    """Structural protocol: anything with ``revise(name, annotations)``."""

    def revise(self, name: str, annotations) -> PLA:  # pragma: no cover
        raise NotImplementedError


def effective_region(
    query: Query, catalog: Catalog, *, universe: str
) -> Expr | None:
    """The universe-level row region ``query`` can draw rows from.

    Walks the view chain from ``query.source`` down to ``universe``,
    conjoining each layer's WHERE clause with column names rewritten
    through the layer's aliases, and returns one predicate over the
    universe's columns (``None`` = unrestricted). This is the *runtime*
    region: it reads the views actually registered in the catalog, so a
    drifted view definition shows up here, not in the approved artifacts.

    The region over-approximates on purpose: GROUP BY/HAVING/LIMIT only
    narrow which of the reachable rows surface, so every contributing row
    still satisfies the returned predicate — the sound polarity for the
    verifier's premises. Raises :class:`NotConjunctive` for shapes whose
    region cannot be expressed as one predicate (joins along the chain, a
    predicate over a computed alias, or a source that never reaches the
    universe).
    """
    # A UNION draws rows from every branch, so its region is the OR of the
    # branch regions; one unrestricted branch makes the whole query
    # unrestricted. Each branch resolves its own view chain independently.
    if query.set_ops:
        from dataclasses import replace as _replace

        blocks = [_replace(query, set_ops=())] + [
            clause.query for clause in query.set_ops
        ]
        regions = [
            effective_region(block, catalog, universe=universe)
            for block in blocks
        ]
        if any(region is None for region in regions):
            return None
        combined: Expr = regions[0]  # type: ignore[assignment]
        for region in regions[1:]:
            combined = Or(combined, region)
        return combined

    predicate = query.where
    relation = query.source
    if query.joins:
        raise NotConjunctive(
            f"region of a join over {relation!r} is not a single predicate"
        )
    depth = 0
    while relation != universe:
        depth += 1
        if depth > _MAX_CHAIN_DEPTH:
            raise NotConjunctive(
                f"view chain deeper than {_MAX_CHAIN_DEPTH}; cycle?"
            )
        if not catalog.is_view(relation):
            raise NotConjunctive(
                f"{relation!r} is not a view over universe {universe!r}"
            )
        view_query = catalog.view(relation).query
        if view_query.joins or view_query.is_aggregate:
            raise NotConjunctive(
                f"view {relation!r} joins or aggregates; its region is not "
                "a single universe predicate"
            )
        if view_query.limit_n is not None:
            raise NotConjunctive(f"view {relation!r} carries a LIMIT")
        if view_query.set_ops:
            raise NotConjunctive(
                f"view {relation!r} is a set operation; its region is not "
                "a single universe predicate"
            )
        mapping: dict[str, str] = {}
        computed: set[str] = set()
        for item in view_query.select:
            if isinstance(item, str):
                mapping[item] = item
            else:
                alias, expr = item
                if isinstance(expr, Col):
                    mapping[alias] = expr.name
                else:
                    computed.add(alias)
        if predicate is not None:
            referenced = predicate.columns()
            bad = referenced & computed
            if bad:
                raise NotConjunctive(
                    f"predicate references computed alias(es) {sorted(bad)} "
                    f"of view {relation!r}"
                )
            if mapping:
                predicate = predicate.substitute(mapping)
        if view_query.where is not None:
            predicate = (
                view_query.where
                if predicate is None
                else And(predicate, view_query.where)
            )
        relation = view_query.source
    return predicate



def generate_metareports(
    workload: Sequence[ReportDefinition],
    universe_name: str,
    universe_columns: Sequence[str],
    *,
    max_metareports: int,
    name_prefix: str = "mr",
) -> MetaReportSet:
    """Cluster a report workload into at most ``max_metareports`` meta-reports.

    Each report contributes its source-column footprint (restricted to the
    universe's columns). Footprints are clustered by greedy highest-Jaccard
    merging; each final cluster becomes one meta-report: an unfiltered
    projection of the universe onto the union of its footprints, in universe
    column order (unfiltered and maximally wide = maximally stable).
    """
    if max_metareports < 1:
        raise PolicyError("max_metareports must be at least 1")
    if not workload:
        raise PolicyError("cannot generate meta-reports from an empty workload")
    universe_set = set(universe_columns)

    footprints: list[set[str]] = []
    for report in workload:
        used = {c for c in source_columns_used(report.query) if c in universe_set}
        if not used:
            raise PolicyError(
                f"report {report.name!r} uses no column of universe "
                f"{universe_name!r}; is it defined over a different star?"
            )
        footprints.append(used)

    clusters: list[set[str]] = []
    for footprint in footprints:
        # Identical/subsumed footprints collapse immediately.
        for cluster in clusters:
            if footprint <= cluster:
                break
        else:
            clusters.append(set(footprint))

    def jaccard(a: set[str], b: set[str]) -> float:
        return len(a & b) / len(a | b)

    while len(clusters) > max_metareports:
        best: tuple[float, int, int] = (-1.0, 0, 1)
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                score = jaccard(clusters[i], clusters[j])
                if score > best[0]:
                    best = (score, i, j)
        _, i, j = best
        clusters[i] |= clusters[j]
        del clusters[j]

    order = {c: k for k, c in enumerate(universe_columns)}
    result = MetaReportSet()
    for n, cluster in enumerate(
        sorted(clusters, key=lambda c: sorted(order[x] for x in c))
    ):
        columns = sorted(cluster, key=order.__getitem__)
        query = Query.from_(universe_name).project(*columns)
        result.add(
            MetaReport(
                name=f"{name_prefix}_{n}",
                query=query,
                description=(
                    f"meta-report covering {len(columns)} columns of "
                    f"{universe_name}"
                ),
            )
        )
    return result
