"""Meta-reports as test cases (§5): pre-operation testing of the PLA pipeline.

"Once meta-reports are approved by the data sources they will be used not
only as a reference for the implementation of privacy requirements
compliant ETL procedures but also as a set of test cases on which the
design of the cleaning and reporting activities could be tested before they
are actually put in operation on the real data."

:class:`PlaTestHarness` synthesizes a small fixture dataset from a
meta-report's schema — deliberately including the adversarial rows its PLA
annotations are about (sensitive values for intensional conditions, groups
straddling the aggregation threshold, all audience roles) — runs the full
check→enforce pipeline on the *fixture* instead of real data, and verifies
every annotation's observable guarantee. A failing case means the PLA
implementation would have leaked in production; this is §6's "tested before
they are put in operation" made executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ComplianceError, PolicyError
from repro.anonymize.pseudonym import Pseudonymizer
from repro.core.annotations import (
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntensionalCondition,
)
from repro.core.compliance import ComplianceChecker
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.translation import ReportLevelEnforcer
from repro.policy.subjects import SubjectRegistry
from repro.relational.algebra import AggSpec
from repro.relational.catalog import Catalog, View
from repro.relational.expressions import Col, Comparison, Lit
from repro.relational.query import Query
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition

__all__ = ["PlaTestResult", "PlaTestHarness"]


@dataclass(frozen=True)
class PlaTestResult:
    """Outcome of one generated test case."""

    case: str
    annotation: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.case}: {self.detail or self.annotation}"


@dataclass
class PlaTestHarness:
    """Pre-operation tests for one meta-report's PLA."""

    roles: tuple[str, ...] = ("analyst", "auditor", "health_director")
    fixture_group_size: int = 4  # rows per synthetic group
    results: list[PlaTestResult] = field(default_factory=list)

    # -- fixture synthesis ---------------------------------------------------

    def _fixture_value(self, column: Column, i: int) -> Any:
        if column.ctype is ColumnType.INT:
            return 10 + i
        if column.ctype is ColumnType.FLOAT:
            return 1.5 * (i + 1)
        if column.ctype is ColumnType.BOOL:
            return i % 2 == 0
        if column.ctype is ColumnType.DATE:
            return f"2007-01-{(i % 27) + 1:02d}"
        # Two distinct values per string column: groups over any column stay
        # large enough to survive realistic thresholds, so probes measure
        # the annotation under test rather than incidental sparsity.
        return f"{column.name}_{i % 2}"

    def build_fixture(
        self, metareport: MetaReport, *, group_column: str | None = None
    ) -> tuple[Catalog, Schema]:
        """A synthetic world exercising every annotation of the PLA.

        The fixture table has one big group (≥ threshold contributors) on
        ``group_column``, one singleton group (must be suppressed), and —
        for every intensional condition — rows on both sides of the
        condition.
        """
        if metareport.pla is None:
            raise PolicyError(f"meta-report {metareport.name!r} has no PLA to test")
        # The fixture base carries the meta-report's columns *plus* every
        # hidden column its intensional conditions reference — exactly like
        # the real universe does.
        hidden: list[str] = []
        for annotation in metareport.pla.annotations:
            if isinstance(annotation, IntensionalCondition):
                for column in sorted(annotation.condition.columns()):
                    if column not in metareport.columns() and column not in hidden:
                        hidden.append(column)
        columns = tuple(metareport.columns()) + tuple(hidden)
        schema = Schema([self._fixture_column(c, metareport) for c in columns])

        rows: list[dict[str, Any]] = []
        if group_column is None:
            group_column = self._choose_probe(metareport)[0]
        # Big group: identical first column, distinct elsewhere.
        for i in range(self.fixture_group_size):
            row = {
                c: self._fixture_value(schema.column(c), i) for c in columns
            }
            row[group_column] = f"{group_column}_big"
            rows.append(row)
        # Singleton group.
        singleton = {
            c: self._fixture_value(schema.column(c), 99) for c in columns
        }
        singleton[group_column] = f"{group_column}_solo"
        rows.append(singleton)
        # Intensional edge rows: satisfy and violate each condition.
        for annotation in metareport.pla.annotations:
            if not isinstance(annotation, IntensionalCondition):
                continue
            for satisfied, tag in ((True, "ok"), (False, "hit")):
                row = {
                    c: self._fixture_value(schema.column(c), 50 + len(rows))
                    for c in columns
                }
                row[group_column] = f"{group_column}_big"  # keep the group big
                self._force_condition(row, annotation, satisfied)
                rows.append(row)

        base = Table("fixture_base", schema, provider="fixture")
        for row in rows:
            base.insert({c: row.get(c) for c in columns})
        catalog = Catalog()
        catalog.add_table(base)
        catalog.add_view(
            View(metareport.query.source, Query.from_("fixture_base").project(*columns))
        )
        catalog.add_view(metareport.as_view())
        return catalog, schema

    def _fixture_column(self, name: str, metareport: MetaReport) -> Column:
        # Conditions comparing to numbers force numeric columns.
        assert metareport.pla is not None
        for annotation in metareport.pla.annotations:
            if isinstance(annotation, IntensionalCondition):
                for conjunct in self._comparisons(annotation):
                    if (
                        isinstance(conjunct.left, Col)
                        and conjunct.left.name == name
                        and isinstance(conjunct.right, Lit)
                        and isinstance(conjunct.right.value, (int, float))
                    ):
                        return Column(name, ColumnType.INT)
        return Column(name, ColumnType.STRING)

    @staticmethod
    def _comparisons(annotation: IntensionalCondition) -> list[Comparison]:
        from repro.relational.expressions import conjuncts

        return [
            c for c in conjuncts(annotation.condition) if isinstance(c, Comparison)
        ]

    def _force_condition(
        self, row: dict[str, Any], annotation: IntensionalCondition, satisfied: bool
    ) -> None:
        """Mutate ``row`` so the condition evaluates to ``satisfied``.

        Handles the conjunctive equality/inequality fragment PLAs use in
        practice ("disease != 'HIV'"); other shapes keep the synthetic value
        (the case is then only exercised on the satisfied side).
        """
        for comparison in self._comparisons(annotation):
            if not (
                isinstance(comparison.left, Col)
                and isinstance(comparison.right, Lit)
            ):
                continue
            column, value = comparison.left.name, comparison.right.value
            if column not in row:
                continue
            if comparison.op == "!=":
                row[column] = f"not_{value}" if satisfied else value
            elif comparison.op == "=":
                row[column] = value if satisfied else f"not_{value}"

    # -- the test run -------------------------------------------------------------

    def run(self, metareport: MetaReport) -> list[PlaTestResult]:
        """Generate the fixture and verify every annotation's guarantee."""
        self.results = []
        group_column, probe_role = self._choose_probe(metareport)
        catalog, schema = self.build_fixture(metareport, group_column=group_column)
        pla = metareport.pla
        assert pla is not None

        metareports = MetaReportSet()
        metareports.metareports.append(metareport)  # share the approved object
        checker = ComplianceChecker(catalog=catalog, metareports=metareports)
        enforcer = ReportLevelEnforcer(
            catalog=catalog, pseudonymizer=Pseudonymizer(salt="pla-test")
        )
        subjects = SubjectRegistry()
        subjects.purposes.declare("test")
        for role in self.roles:
            subjects.add_role(role)
            subjects.add_user(f"user_{role}", role)

        for annotation in pla.annotations:
            if isinstance(annotation, AggregationThreshold):
                self._test_threshold(
                    annotation, metareport, checker, enforcer, subjects,
                    group_column, probe_role,
                )
            elif isinstance(annotation, IntensionalCondition):
                self._test_intensional(
                    annotation, metareport, checker, enforcer, subjects,
                    group_column, probe_role,
                )
            elif isinstance(annotation, AttributeAccess):
                self._test_attribute_access(annotation, metareport, checker)
            elif isinstance(annotation, AnonymizationRequirement):
                self._test_anonymization(
                    annotation, metareport, checker, enforcer, subjects, group_column
                )
        return self.results

    def _choose_probe(self, metareport: MetaReport) -> tuple[str, str]:
        """A (group column, role) pair the PLA's access rules permit.

        The harness's probe reports must not trip attribute-access rules by
        accident — those get their own dedicated case.
        """
        assert metareport.pla is not None
        access = {
            a.attribute: a.allowed_roles
            for a in metareport.pla.annotations
            if isinstance(a, AttributeAccess)
        }
        # Prefer an unrestricted column with any role.
        for column in metareport.columns():
            if column not in access:
                return column, self.roles[0]
        # Otherwise find a column/role pair the rules allow.
        for column in metareport.columns():
            for role in self.roles:
                if {role} <= access[column]:
                    return column, role
        raise PolicyError(
            "no (column, role) combination is viewable under this PLA; "
            "nothing can be reported at all"
        )

    def _record(self, case: str, annotation, passed: bool, detail: str = "") -> None:
        self.results.append(
            PlaTestResult(
                case=case,
                annotation=annotation.describe(),
                passed=passed,
                detail=detail,
            )
        )

    def _report(
        self, metareport: MetaReport, group_column: str, *, audience: frozenset[str]
    ) -> ReportDefinition:
        query = (
            Query.from_(metareport.name)
            .group(group_column)
            .agg(AggSpec("count", None, "n"))
            .project(group_column, "n")
        )
        return ReportDefinition(
            name="pla_test_report",
            title="PLA test",
            query=query,
            audience=audience,
            purpose="test",
        )

    def _deliver(self, report, checker, enforcer, subjects):
        verdict = checker.check_report(report)
        if not verdict.compliant:
            raise ComplianceError(
                "; ".join(str(v) for v in verdict.violations)
            )
        role = sorted(report.audience)[0]
        context = subjects.context(f"user_{role}", "test")
        return enforcer.generate(report, context, verdict)

    def _test_threshold(
        self, annotation, metareport, checker, enforcer, subjects,
        group_column, probe_role,
    ) -> None:
        audience = frozenset({probe_role})
        try:
            instance = self._deliver(
                self._report(metareport, group_column, audience=audience),
                checker, enforcer, subjects,
            )
        except ComplianceError as exc:
            self._record(
                "threshold/undersized-group-suppressed", annotation, False, str(exc)
            )
            return
        ok = all(
            len(instance.table.lineage_of(i)) >= annotation.min_group_size
            for i in range(len(instance.table))
        )
        solo_published = any(
            str(row.get(group_column, "")).endswith("_solo")
            for row in instance.table.iter_dicts()
        )
        self._record(
            "threshold/undersized-group-suppressed",
            annotation,
            ok and not solo_published,
            f"published {len(instance.table)} group(s), "
            f"suppressed {instance.suppressed_rows}",
        )

    def _test_intensional(
        self, annotation, metareport, checker, enforcer, subjects,
        group_column, probe_role,
    ) -> None:
        audience = frozenset({probe_role})
        try:
            instance = self._deliver(
                self._report(metareport, group_column, audience=audience),
                checker, enforcer, subjects,
            )
        except ComplianceError as exc:
            self._record("intensional/edge-rows", annotation, False, str(exc))
            return
        # The big group had fixture_group_size + 2 rows; exactly one of the
        # two edge rows violates the condition, so with suppress_row the
        # group's contributor count must drop by one.
        big = [
            i
            for i in range(len(instance.table))
            if str(instance.table.row_dict(i).get(group_column, "")).endswith("_big")
        ]
        if annotation.action == "suppress_row" and big:
            contributors = len(instance.table.lineage_of(big[0]))
            expected = self.fixture_group_size + 1  # one edge row removed
            self._record(
                "intensional/edge-rows",
                annotation,
                contributors == expected,
                f"big group aggregated {contributors} rows (expected {expected})",
            )
        else:
            self._record(
                "intensional/edge-rows",
                annotation,
                True,
                "cell-level condition exercised at generation",
            )

    def _test_attribute_access(self, annotation, metareport, checker) -> None:
        outsiders = [r for r in self.roles if r not in annotation.allowed_roles]
        if annotation.attribute not in metareport.columns() or not outsiders:
            self._record("attribute-access/outsider-blocked", annotation, True,
                         "no outsider role to test")
            return
        report = ReportDefinition(
            name="pla_test_access",
            title="t",
            query=Query.from_(metareport.name).project(annotation.attribute)
            .group(annotation.attribute).agg(AggSpec("count", None, "n"))
            .project(annotation.attribute, "n"),
            audience=frozenset({outsiders[0]}),
            purpose="test",
        )
        verdict = checker.check_report(report)
        self._record(
            "attribute-access/outsider-blocked",
            annotation,
            not verdict.compliant,
            f"verdict for role {outsiders[0]!r}: "
            + ("blocked" if not verdict.compliant else "NOT blocked"),
        )

    def _test_anonymization(
        self, annotation, metareport, checker, enforcer, subjects, group_column
    ) -> None:
        if annotation.method != "pseudonymize":
            self._record("anonymization/applied", annotation, True, "non-pseudonym method")
            return
        allowed_roles = [r for r in self.roles]
        report = ReportDefinition(
            name="pla_test_anon",
            title="t",
            query=Query.from_(metareport.name)
            .group(annotation.attribute)
            .agg(AggSpec("count", None, "n"))
            .project(annotation.attribute, "n"),
            audience=frozenset({allowed_roles[-1]}),
            purpose="test",
        )
        verdict = checker.check_report(report)
        if not verdict.compliant:
            self._record(
                "anonymization/applied", annotation, True,
                "report blocked outright (stricter than required)",
            )
            return
        role = sorted(report.audience)[0]
        instance = enforcer.generate(
            report, subjects.context(f"user_{role}", "test"), verdict
        )
        values = instance.table.column_values(annotation.attribute)
        self._record(
            "anonymization/applied",
            annotation,
            all(str(v).startswith("anon-") for v in values),
            f"{len(values)} value(s) checked",
        )

    def summary(self) -> str:
        passed = sum(1 for r in self.results if r.passed)
        return f"PLA tests: {passed}/{len(self.results)} passed"
