"""The privacy-requirements elicitation tool of §5, as a text protocol.

"The interaction between the BI provider and the data source can be
assisted by a privacy requirements elicitation tool with a simple graphical
user interface (GUI), which enables the BI provider to explain the
provenance of each data element and the transformations/integrations it
goes through. Privacy requirements will then be collected and formalized
directly in the tool by annotating reports and provenance schemes."

This module is that tool with the pixels removed: it renders, for each
meta-report, what the owner actually sees — columns with their provenance
explanations, sample rows with sensitive values masked for the session —
and collects proposed annotations into a draft PLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ElicitationError
from repro.core.annotations import Annotation
from repro.core.metareport import MetaReport
from repro.core.pla import PLA, PlaLevel, PlaRegistry
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.where import where_of_cell
from repro.relational.catalog import Catalog
from repro.relational.engine import execute

__all__ = ["ColumnCard", "ElicitationTool"]


@dataclass(frozen=True)
class ColumnCard:
    """One column as presented to the owner: name, samples, provenance."""

    column: str
    sample_values: tuple[str, ...]
    origin_cells: tuple[str, ...]  # where-provenance of the first sample
    origin_relations: tuple[str, ...]  # provider/table identities

    def render(self) -> str:
        samples = ", ".join(self.sample_values) or "(no data)"
        origins = ", ".join(self.origin_relations) or "(synthetic)"
        return f"{self.column}: e.g. {samples}  <- from {origins}"


@dataclass
class ElicitationTool:
    """One elicitation sitting over one meta-report."""

    catalog: Catalog
    provenance: ProvenanceGraph | None = None
    sample_rows: int = 3
    _proposed: dict[str, list[Annotation]] = field(default_factory=dict)

    # -- presentation -------------------------------------------------------

    def column_cards(self, metareport: MetaReport) -> list[ColumnCard]:
        """The owner-facing cards: values plus where they come from."""
        table = execute(metareport.query, self.catalog, name=metareport.name)
        cards = []
        for column in metareport.columns():
            samples = []
            for i in range(min(self.sample_rows, len(table))):
                value = table.row_dict(i).get(column)
                samples.append("NULL" if value is None else str(value))
            origin_cells: tuple[str, ...] = ()
            origin_relations: tuple[str, ...] = ()
            if len(table):
                refs = sorted(where_of_cell(table, 0, column))
                origin_cells = tuple(str(ref) for ref in refs[:3])
                origin_relations = tuple(
                    sorted({f"{ref.row.provider}/{ref.row.table}" for ref in refs})
                )
            cards.append(
                ColumnCard(
                    column=column,
                    sample_values=tuple(samples),
                    origin_cells=origin_cells,
                    origin_relations=origin_relations,
                )
            )
        return cards

    def present(self, metareport: MetaReport) -> str:
        """The full owner-facing view of one meta-report."""
        lines = [f"META-REPORT {metareport.name!r}"]
        if metareport.description:
            lines.append(f"  {metareport.description}")
        lines.append("  columns:")
        for card in self.column_cards(metareport):
            lines.append(f"    - {card.render()}")
        if self.provenance is not None:
            try:
                source = metareport.query.source
                lines.append("  transformations:")
                for node in self.provenance.upstream_datasets(source):
                    if node.kind == "source":
                        lines.append(f"    - starts at {node.label()}")
            except Exception:
                pass  # provenance graph may not know this view; cards suffice
        return "\n".join(lines)

    # -- collection -----------------------------------------------------------

    def propose(self, metareport: MetaReport, annotation: Annotation) -> Annotation:
        """Record an annotation the owner stated during the discussion."""
        if hasattr(annotation, "attribute"):
            attribute = annotation.attribute  # type: ignore[attr-defined]
            if attribute not in metareport.columns():
                raise ElicitationError(
                    f"annotation targets {attribute!r}, which meta-report "
                    f"{metareport.name!r} does not show"
                )
        self._proposed.setdefault(metareport.name, []).append(annotation)
        return annotation

    def proposed_for(self, metareport_name: str) -> tuple[Annotation, ...]:
        return tuple(self._proposed.get(metareport_name, ()))

    def finalize(
        self,
        metareport: MetaReport,
        *,
        owner: str,
        registry: PlaRegistry,
        approve: bool = True,
    ) -> PLA:
        """Turn the collected annotations into a (approved) PLA."""
        proposed = self._proposed.get(metareport.name)
        if not proposed:
            raise ElicitationError(
                f"no annotations proposed for {metareport.name!r}"
            )
        pla = PLA(
            name=f"pla_{metareport.name}",
            owner=owner,
            level=PlaLevel.METAREPORT,
            target=metareport.name,
            annotations=tuple(proposed),
        )
        registry.add(pla)
        if approve:
            pla = registry.approve(pla.name)
        metareport.attach_pla(pla)
        self._proposed.pop(metareport.name, None)
        return pla
