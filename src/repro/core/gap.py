"""PLA coverage/gap analysis: is the agreed PLA set complete?

§6: "Errors in capturing the intentions of the source owners ... are
discovered only when the system is released and it is too late." The gap
analyzer compares what the deployed meta-report PLAs actually constrain
against a requirement checklist (elicited or generated), and lists every
requirement no approved annotation covers — *before* release.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.metareport import MetaReportSet

__all__ = ["CoverageGap", "CoverageReport", "analyze_coverage"]


@dataclass(frozen=True)
class CoverageGap:
    """One requirement no approved annotation covers."""

    requirement: str  # the requirement's description
    kind: str
    reason: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.requirement} — {self.reason}"


@dataclass(frozen=True)
class CoverageReport:
    """The outcome of one gap analysis."""

    requirements_total: int
    covered: int
    gaps: tuple[CoverageGap, ...]

    @property
    def complete(self) -> bool:
        return not self.gaps

    @property
    def coverage(self) -> float:
        if self.requirements_total == 0:
            return 1.0
        return self.covered / self.requirements_total

    def summary(self) -> str:
        return (
            f"PLA coverage: {self.covered}/{self.requirements_total} "
            f"({self.coverage:.0%}); {len(self.gaps)} gap(s)"
        )


def _covers(agreed: Annotation, required: Annotation) -> bool:
    """Does an approved annotation satisfy a required one (same kind)?

    Coverage is *at least as strict*: a stricter agreed annotation covers a
    looser requirement, never the reverse.
    """
    if isinstance(required, AttributeAccess) and isinstance(agreed, AttributeAccess):
        return (
            agreed.attribute == required.attribute
            and agreed.allowed_roles <= required.allowed_roles
        )
    if isinstance(required, AggregationThreshold) and isinstance(
        agreed, AggregationThreshold
    ):
        return agreed.min_group_size >= required.min_group_size
    if isinstance(required, AnonymizationRequirement) and isinstance(
        agreed, AnonymizationRequirement
    ):
        if agreed.attribute != required.attribute:
            return False
        if agreed.method == required.method:
            return agreed.generalization_level >= required.generalization_level
        # Suppression is the strictest method; it covers any requirement.
        return agreed.method == "suppress"
    if isinstance(required, JoinPermission) and isinstance(agreed, JoinPermission):
        if required.allowed:
            return True  # a permission requirement needs no constraint
        return not agreed.allowed and agreed.pair() == required.pair()
    if isinstance(required, IntegrationPermission) and isinstance(
        agreed, IntegrationPermission
    ):
        if required.allowed:
            return True
        return not agreed.allowed and agreed.owner == required.owner
    if isinstance(required, IntensionalCondition) and isinstance(
        agreed, IntensionalCondition
    ):
        if agreed.attribute != required.attribute:
            return False
        # Conservative: conditions must match syntactically; suppress_row
        # (drops the whole row) covers a suppress_cell requirement.
        same_condition = str(agreed.condition) == str(required.condition)
        stricter_action = agreed.action == required.action or (
            agreed.action == "suppress_row" and required.action == "suppress_cell"
        )
        return same_condition and stricter_action
    return False


def analyze_coverage(
    metareports: MetaReportSet,
    requirements: list[Annotation],
) -> CoverageReport:
    """Check every requirement against the approved meta-report PLAs.

    A requirement is covered if *some* approved meta-report carries an
    annotation at least as strict. Attribute-scoped requirements on columns
    no meta-report exposes are covered vacuously (the data is not shown at
    all — stricter than any annotation).
    """
    agreed: list[Annotation] = []
    exposed_columns: set[str] = set()
    for metareport in metareports:
        if not metareport.approved or metareport.pla is None:
            continue
        agreed.extend(metareport.pla.annotations)
        exposed_columns.update(metareport.columns())

    gaps: list[CoverageGap] = []
    covered = 0
    for required in requirements:
        attribute = getattr(required, "attribute", None)
        if attribute is not None and attribute not in exposed_columns:
            covered += 1  # never shown anywhere: vacuously safe
            continue
        if any(_covers(a, required) for a in agreed):
            covered += 1
            continue
        gaps.append(
            CoverageGap(
                requirement=required.describe(),
                kind=required.requirement_kind,
                reason="no approved annotation is at least this strict",
            )
        )
    return CoverageReport(
        requirements_total=len(requirements),
        covered=covered,
        gaps=tuple(gaps),
    )
