"""Elicitation sessions: the owner–provider interactions FIG5 accounts for.

An :class:`ElicitationSession` walks a source owner through the artifacts of
one engineering level, accumulating interaction cost, and yields draft PLAs.
The owner's side (comprehension model) lives in :mod:`repro.simulation`;
this module is the provider-side protocol and the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ElicitationError
from repro.core.levels import ElicitationArtifact, EngineeringLevel
from repro.core.pla import PLA, PlaRegistry

__all__ = ["OwnerModel", "SessionRecord", "ElicitationSession", "ElicitationLedger"]


class OwnerModel(Protocol):
    """What the session needs from a (simulated or real) source owner."""

    name: str

    def comprehension_cost(self, artifact: ElicitationArtifact) -> float:
        """Interaction units spent understanding one artifact."""

    def review(self, artifact: ElicitationArtifact) -> bool:
        """Whether the owner approves annotating this artifact (False =
        another meeting is needed; the session retries once)."""


@dataclass(frozen=True)
class SessionRecord:
    """Ledger entry for one completed session."""

    owner: str
    level: str
    artifacts_reviewed: int
    cost: float
    trigger: str  # "initial" | "re-elicitation:<event>"


@dataclass
class ElicitationSession:
    """One sitting with one owner over one level's artifacts."""

    owner: OwnerModel
    level: EngineeringLevel
    trigger: str = "initial"
    _finished: bool = field(default=False, repr=False)

    def run(self, artifacts: list[ElicitationArtifact] | None = None) -> SessionRecord:
        """Review the level's artifacts (or an explicit subset) once.

        A rejected artifact is re-explained (costing again) — the paper's
        "methodologies for interacting with the source owners in order to
        quickly converge" challenge shows up here as a retry cost.
        """
        if self._finished:
            raise ElicitationError("session already ran; open a new one")
        self._finished = True
        to_review = artifacts if artifacts is not None else self.level.artifacts()
        cost = 0.0
        for artifact in to_review:
            cost += self.owner.comprehension_cost(artifact)
            if not self.owner.review(artifact):
                cost += self.owner.comprehension_cost(artifact)
        return SessionRecord(
            owner=self.owner.name,
            level=self.level.level.value,
            artifacts_reviewed=len(to_review),
            cost=cost,
            trigger=self.trigger,
        )


@dataclass
class ElicitationLedger:
    """All sessions of one deployment, plus the PLAs they produced."""

    records: list[SessionRecord] = field(default_factory=list)
    registry: PlaRegistry = field(default_factory=PlaRegistry)

    def record(self, session_record: SessionRecord) -> SessionRecord:
        self.records.append(session_record)
        return session_record

    def file_pla(self, pla: PLA) -> PLA:
        """Register a PLA drafted during a session and approve it."""
        self.registry.add(pla)
        return self.registry.approve(pla.name)

    def total_cost(self) -> float:
        return sum(record.cost for record in self.records)

    def cost_by_trigger(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for record in self.records:
            key = "initial" if record.trigger == "initial" else "re-elicitation"
            out[key] = out.get(key, 0.0) + record.cost
        return out

    def session_count(self) -> int:
        return len(self.records)
