"""Query containment and derivability — the meta-report compliance mechanism.

§5: "Each time a new report is created or an existing one is modified, PLAs
on the meta-reports are used to determine if the new report is
privacy-compliant. This can be often done easily as the reports can, at
least conceptually, be expressed as a subset or view over a meta-report."

Two layers:

* :func:`check_derivability` — the pragmatic check used by the compliance
  engine: a report query is derivable from a meta-report if its relations,
  columns, predicate, and aggregation can all be re-expressed over the
  meta-report's output. Sound under the shared-universe assumption (both
  are carved from the same star join), which is how meta-reports are built.
* :func:`is_contained` — genuine conjunctive-query containment via the
  homomorphism theorem (Chandra–Merlin), extended conservatively with
  comparison predicates: Q1 ⊆ Q2 is reported only when a containment
  mapping exists *and* Q1's constraints imply the mapped constraints of
  Q2. Sound but incomplete in the presence of inequalities — exactly the
  right polarity for a privacy check (never wrongly declares compliance).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.cache import LRUCache
from repro.errors import QueryError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    conjuncts,
)
from repro.relational.query import Query

__all__ = [
    "predicate_implies",
    "conjunction_inconsistent",
    "DerivabilityResult",
    "check_derivability",
    "source_columns_used",
    "CanonicalQuery",
    "canonicalize",
    "is_contained",
    "NotConjunctive",
    "proof_cache_stats",
    "clear_proof_caches",
    "set_proof_caching",
]


class NotConjunctive(QueryError):
    """The query/predicate falls outside the conjunctive fragment."""


# ---------------------------------------------------------------------------
# Proof memoization
#
# Derivability and containment are pure functions of the two query trees and
# the catalog's *definitions* (schemas, views) — never of row data. Keys are
# therefore ``(fingerprints..., catalog.uid, catalog.ddl_version)``: any DDL
# change versions old entries out, and a registered mutation hook evicts the
# affected catalog's entries eagerly. ``NotConjunctive`` outcomes are cached
# too (as a sentinel) and re-raised, since proving "outside the fragment"
# costs the same canonicalization work as a positive proof.
# ---------------------------------------------------------------------------

_PROOF_CACHE_SIZE = 4096
_derivability_cache = LRUCache(maxsize=_PROOF_CACHE_SIZE)
_containment_cache = LRUCache(maxsize=_PROOF_CACHE_SIZE)
_caching_enabled = True
_hooked_catalogs: set[int] = set()
_hook_lock = threading.Lock()


def _on_catalog_mutation(catalog: Catalog, name: str) -> None:
    cat_uid = catalog.uid
    _derivability_cache.invalidate_where(lambda k: k[-2] == cat_uid)
    _containment_cache.invalidate_where(lambda k: k[-2] == cat_uid)


def _hook_catalog(catalog: Catalog) -> None:
    with _hook_lock:
        if catalog.uid in _hooked_catalogs:
            return
        _hooked_catalogs.add(catalog.uid)
    catalog.add_mutation_hook(_on_catalog_mutation)


def set_proof_caching(enabled: bool) -> bool:
    """Toggle proof memoization (e.g. for cold-path benchmarks); returns the
    previous setting. Disabling also drops all cached proofs."""
    global _caching_enabled
    previous = _caching_enabled
    _caching_enabled = enabled
    if not enabled:
        _derivability_cache.clear()
        _containment_cache.clear()
    return previous


def proof_cache_stats() -> dict[str, dict[str, Any]]:
    """Hit/miss counters and entry counts for the proof caches."""
    return {
        "derivability": {
            **_derivability_cache.stats.as_dict(),
            "entries": len(_derivability_cache),
        },
        "containment": {
            **_containment_cache.stats.as_dict(),
            "entries": len(_containment_cache),
        },
    }


def clear_proof_caches() -> int:
    """Drop all memoized proofs; returns how many entries were removed."""
    return _derivability_cache.clear() + _containment_cache.clear()


# ---------------------------------------------------------------------------
# Predicate implication (per-column interval reasoning, conservative)
# ---------------------------------------------------------------------------


@dataclass
class _ColumnConstraints:
    """Accumulated constraints on one column from a conjunction."""

    eq: Any | None = None
    has_eq: bool = False
    lower: Any | None = None  # value of strongest lower bound
    lower_strict: bool = False
    upper: Any | None = None
    upper_strict: bool = False
    not_eq: set[Any] = field(default_factory=set)
    in_set: set[Any] | None = None  # None = unconstrained
    not_null: bool = False

    def add(self, op: str, value: Any) -> None:
        if op == "=":
            if self.has_eq and self.eq != value:
                # Contradiction; the conjunction is unsatisfiable, which
                # trivially implies anything. Record as-is; implication
                # handling below treats eq specially.
                pass
            self.eq = value
            self.has_eq = True
        elif op == "!=":
            self.not_eq.add(value)
        elif op in (">", ">="):
            strict = op == ">"
            if self.lower is None or value > self.lower or (
                value == self.lower and strict and not self.lower_strict
            ):
                self.lower = value
                self.lower_strict = strict
        elif op in ("<", "<="):
            strict = op == "<"
            if self.upper is None or value < self.upper or (
                value == self.upper and strict and not self.upper_strict
            ):
                self.upper = value
                self.upper_strict = strict
        else:  # pragma: no cover - callers validate ops
            raise NotConjunctive(f"unsupported op {op!r}")

    def add_in(self, values: set[Any]) -> None:
        self.in_set = values if self.in_set is None else (self.in_set & values)

    # -- implication checks ------------------------------------------------

    def implies(self, op: str, value: Any) -> bool:
        """Do these constraints guarantee ``column op value``?"""
        if self.has_eq:
            return _eval_cmp(self.eq, op, value)
        if self.in_set is not None and all(
            _eval_cmp(v, op, value) for v in self.in_set
        ):
            return True
        if op == "=":
            return False  # only eq/in can force equality
        if op == "!=":
            if value in self.not_eq:
                return True
            if self.lower is not None and _eval_cmp(value, "<", self.lower) or (
                self.lower is not None and value == self.lower and self.lower_strict
            ):
                return True
            if self.upper is not None and _eval_cmp(value, ">", self.upper) or (
                self.upper is not None and value == self.upper and self.upper_strict
            ):
                return True
            return False
        if op in (">", ">="):
            if self.lower is None:
                return False
            if self.lower > value:
                return True
            if self.lower == value:
                return self.lower_strict or op == ">="
            return False
        if op in ("<", "<="):
            if self.upper is None:
                return False
            if self.upper < value:
                return True
            if self.upper == value:
                return self.upper_strict or op == "<="
            return False
        return False

    def implies_in(self, values: set[Any]) -> bool:
        if self.has_eq:
            return self.eq in values
        if self.in_set is not None:
            return self.in_set <= values
        return False

    def implies_not_null(self) -> bool:
        return (
            self.not_null
            or self.has_eq
            or self.lower is not None
            or self.upper is not None
            or self.in_set is not None
        )


def _eval_cmp(left: Any, op: str, right: Any) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    return False


def _decompose(predicate: Expr | None) -> dict[str, _ColumnConstraints]:
    """Per-column constraints of a conjunctive predicate.

    Raises :class:`NotConjunctive` on OR/NOT/column-column comparisons and
    other shapes outside the fragment.
    """
    constraints: dict[str, _ColumnConstraints] = {}

    def bucket(column: str) -> _ColumnConstraints:
        return constraints.setdefault(column, _ColumnConstraints())

    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, Comparison):
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Col) and isinstance(right, Lit):
                bucket(left.name).add(conjunct.op, right.value)
            elif isinstance(left, Lit) and isinstance(right, Col):
                from repro.relational.expressions import FLIPPED_OP

                bucket(right.name).add(FLIPPED_OP[conjunct.op], left.value)
            else:
                raise NotConjunctive(f"non col-lit comparison: {conjunct}")
        elif isinstance(conjunct, InList):
            if not isinstance(conjunct.target, Col):
                raise NotConjunctive(f"IN over non-column: {conjunct}")
            bucket(conjunct.target.name).add_in(set(conjunct.values))
        elif isinstance(conjunct, IsNull):
            if not isinstance(conjunct.target, Col):
                raise NotConjunctive(f"IS NULL over non-column: {conjunct}")
            if not conjunct.negated:
                raise NotConjunctive("IS NULL (non-negated) not in fragment")
            bucket(conjunct.target.name).not_null = True
        else:
            raise NotConjunctive(f"non-conjunctive shape: {conjunct}")
    return constraints


def predicate_implies(stronger: Expr | None, weaker: Expr | None) -> bool:
    """Conservative test that ``stronger`` implies ``weaker``.

    ``None`` means TRUE (no restriction). Returns False when the fragment
    cannot certify the implication — never a false positive.
    """
    if weaker is None:
        return True
    # _decompose keeps the last value for repeated equalities on one column,
    # so an internally contradictory side must be settled first: an empty
    # premise implies anything; nothing (we can certify) implies an empty
    # conclusion.
    if conjunction_inconsistent(stronger):
        return True
    if conjunction_inconsistent(weaker):
        return False
    try:
        have = _decompose(stronger)
        need = _decompose(weaker)
    except NotConjunctive:
        # Fall back to syntactic subsumption: every needed conjunct appears
        # verbatim among the available conjuncts.
        if stronger is None:
            return False
        available = {str(c) for c in conjuncts(stronger)}
        return all(str(c) in available for c in conjuncts(weaker))
    for column, needed in need.items():
        having = have.get(column, _ColumnConstraints())
        if needed.has_eq and not having.implies("=", needed.eq):
            return False
        for value in needed.not_eq:
            if not having.implies("!=", value):
                return False
        if needed.lower is not None:
            op = ">" if needed.lower_strict else ">="
            if not having.implies(op, needed.lower):
                return False
        if needed.upper is not None:
            op = "<" if needed.upper_strict else "<="
            if not having.implies(op, needed.upper):
                return False
        if needed.in_set is not None and not having.implies_in(needed.in_set):
            return False
        if needed.not_null and not having.implies_not_null():
            return False
    return True


def conjunction_inconsistent(predicate: Expr | None) -> bool:
    """Sound, fast test that a conjunctive predicate admits no satisfying row.

    ``True`` only when the per-column interval/equality abstraction proves
    emptiness; ``False`` means "not provably empty here" (the exact solver
    in :mod:`repro.verify` decides the rest by enumeration). Predicates
    outside the conjunctive fragment are never claimed inconsistent.
    Integer bounds are treated densely (``5 < x < 6`` is *not* claimed
    empty), so the abstraction stays sound for float-typed columns too.
    """
    if predicate is None:
        return False
    # _decompose's eq handling keeps the last value on x=a AND x=b; detect
    # conflicting equalities directly from the conjunct list first.
    eq_values: dict[str, Any] = {}
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Col) and isinstance(right, Lit):
                column, value = left.name, right.value
            elif isinstance(left, Lit) and isinstance(right, Col):
                column, value = right.name, left.value
            else:
                continue
            if column in eq_values and eq_values[column] != value:
                return True
            eq_values[column] = value
    try:
        buckets = _decompose(predicate)
    except NotConjunctive:
        return False
    return any(_bucket_empty(b) for b in buckets.values())


def _bucket_empty(b: _ColumnConstraints) -> bool:
    """Does this one column's constraint set rule out every value?"""
    if b.has_eq:
        v = b.eq
        if v in b.not_eq:
            return True
        if b.in_set is not None and v not in b.in_set:
            return True
        if b.lower is not None and (
            _eval_cmp(v, "<", b.lower) or (v == b.lower and b.lower_strict)
        ):
            return True
        if b.upper is not None and (
            _eval_cmp(v, ">", b.upper) or (v == b.upper and b.upper_strict)
        ):
            return True
        return False
    if b.in_set is not None:
        survivors = set(b.in_set) - b.not_eq
        if b.lower is not None:
            op = ">" if b.lower_strict else ">="
            survivors = {v for v in survivors if _eval_cmp(v, op, b.lower)}
        if b.upper is not None:
            op = "<" if b.upper_strict else "<="
            survivors = {v for v in survivors if _eval_cmp(v, op, b.upper)}
        return not survivors
    if b.lower is not None and b.upper is not None:
        if _eval_cmp(b.lower, ">", b.upper):
            return True
        if b.lower == b.upper and (b.lower_strict or b.upper_strict):
            return True
    return False


# ---------------------------------------------------------------------------
# Derivability: report ⊑ meta-report (the compliance engine's check)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DerivabilityResult:
    """Outcome of a derivability check, with owner-readable reasons."""

    derivable: bool
    metareport: str
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.derivable


def check_derivability(
    report_query: Query,
    metareport_name: str,
    metareport_query: Query,
    catalog: Catalog,
) -> DerivabilityResult:
    """Can ``report_query`` be expressed as σπγ over the meta-report?

    Sufficient conditions (all must hold):

    1. every base relation of the report is covered by the meta-report;
    2. every column the report uses is an output of the meta-report (a
       report authored directly ``FROM metareport`` satisfies this by
       construction for its own outputs);
    3. the report's predicate implies the meta-report's predicate (a report
       can only *narrow* what the owner approved);
    4. aggregation compatibility: the report's GROUP BY columns are
       meta-report outputs and aggregated columns are meta-report outputs.

    Results are memoized per catalog DDL generation (the proof never reads
    row data); see :func:`proof_cache_stats`.
    """
    if not _caching_enabled:
        return _check_derivability_uncached(
            report_query, metareport_name, metareport_query, catalog
        )
    key = (
        report_query.fingerprint(),
        metareport_name,
        metareport_query.fingerprint(),
        catalog.uid,
        catalog.ddl_version,
    )
    # Token captured before the lookup/compute: a DDL mutation landing
    # mid-proof invalidates the generation and the late fill is dropped
    # instead of resurrecting a proof over superseded definitions.
    token = _derivability_cache.fill_token()
    cached = _derivability_cache.get(key)
    if TRACER.active():
        instrument.cache_lookup("derivability", cached is not None)
    if cached is not None:
        return cached
    result = _check_derivability_uncached(
        report_query, metareport_name, metareport_query, catalog
    )
    _hook_catalog(catalog)
    _derivability_cache.put_if(key, result, token)
    return result


def _check_derivability_uncached(
    report_query: Query,
    metareport_name: str,
    metareport_query: Query,
    catalog: Catalog,
) -> DerivabilityResult:
    # A UNION report is derivable iff each SELECT block is: the union of
    # subsets of the meta-report is itself a subset. Check the head block
    # (sans set-op tail) and every branch independently, pooling reasons.
    if report_query.set_ops:
        reasons = []
        blocks = (replace(report_query, set_ops=()),) + tuple(
            clause.query for clause in report_query.set_ops
        )
        for block in blocks:
            part = _check_derivability_uncached(
                block, metareport_name, metareport_query, catalog
            )
            reasons.extend(part.reasons)
        return DerivabilityResult(
            derivable=not reasons,
            metareport=metareport_name,
            reasons=tuple(dict.fromkeys(reasons)),
        )
    if metareport_query.set_ops:
        return DerivabilityResult(
            derivable=False,
            metareport=metareport_name,
            reasons=("meta-reports must be non-union wide views",),
        )

    reasons: list[str] = []

    report_bases = catalog.base_relations_of_query(report_query)
    if catalog.is_view(metareport_name):
        meta_bases = catalog.base_relations(metareport_name)
    else:
        meta_bases = catalog.base_relations_of_query(metareport_query)
    uncovered = report_bases - meta_bases
    # Note: a report authored FROM the meta-report has no uncovered bases by
    # construction — unless it JOINs other relations in, which must flag.
    if uncovered:
        reasons.append(
            f"report touches base relations outside the meta-report: {sorted(uncovered)}"
        )

    meta_outputs = metareport_query.output_names()
    if meta_outputs is None:
        meta_outputs = _expanded_outputs(metareport_query, catalog)
    used = source_columns_used(report_query)
    unknown = {c for c in used if c not in meta_outputs}
    if unknown:
        reasons.append(
            f"report uses columns the meta-report does not expose: {sorted(unknown)}"
        )

    # A report authored FROM the meta-report view inherits its filter when
    # executed, so the implication requirement applies only to reports
    # expressed over other relations (the warehouse universe).
    if report_query.source != metareport_name and not predicate_implies(
        report_query.where, metareport_query.where
    ):
        reasons.append(
            "report predicate does not imply the meta-report's predicate "
            f"({report_query.where} vs {metareport_query.where})"
        )

    if metareport_query.is_aggregate:
        reasons.append("meta-reports must be non-aggregate wide views")

    return DerivabilityResult(
        derivable=not reasons,
        metareport=metareport_name,
        reasons=tuple(reasons),
    )


def source_columns_used(query: Query) -> frozenset[str]:
    """Columns a query reads from its *source relations*.

    Unlike :meth:`Query.columns_used`, aggregate aliases and post-aggregation
    references (SELECT/HAVING/ORDER BY over group outputs) are excluded —
    those name query outputs, not source columns.
    """
    used: set[str] = set()
    for clause in query.joins:
        for lname, rname in clause.on:
            used.add(lname)
            used.add(rname)
    if query.where is not None:
        used.update(query.where.columns())
    used.update(query.group_by)
    for spec in query.aggregates:
        if spec.column is not None:
            used.add(spec.column)
    if not query.is_aggregate:
        for item in query.select:
            if isinstance(item, str):
                used.add(item)
            else:
                used.update(item[1].columns())
        for column, _ in query.order:
            used.add(column)
    return frozenset(used)


def _expanded_outputs(query: Query, catalog: Catalog) -> tuple[str, ...]:
    """Output names of a SELECT * query, resolved through the catalog."""
    names: list[str] = []
    for relation in query.referenced_relations():
        if catalog.is_table(relation):
            names.extend(catalog.table(relation).schema.names)
        else:
            view_query = catalog.view(relation).query
            outs = view_query.output_names()
            if outs is None:
                outs = _expanded_outputs(view_query, catalog)
            names.extend(outs)
    return tuple(names)


# ---------------------------------------------------------------------------
# Conjunctive-query containment (homomorphism theorem)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Atom:
    relation: str
    variables: tuple[int, ...]  # one variable id per schema column


@dataclass
class CanonicalQuery:
    """A conjunctive query in canonical form.

    Variables are integers; ``head`` maps output column name → variable;
    ``constraints`` holds per-variable comparison constraints.
    """

    atoms: list[_Atom] = field(default_factory=list)
    head: dict[str, int] = field(default_factory=dict)
    constraints: dict[int, _ColumnConstraints] = field(default_factory=dict)
    n_vars: int = 0


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def make(self) -> int:
        v = len(self.parent)
        self.parent[v] = v
        return v

    def find(self, v: int) -> int:
        while self.parent[v] != v:
            self.parent[v] = self.parent[self.parent[v]]
            v = self.parent[v]
        return v

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra


def canonicalize(query: Query, catalog: Catalog) -> CanonicalQuery:
    """Canonical form of a conjunctive query over *base tables*.

    Requirements: inner joins only, no aggregation/DISTINCT/ORDER/LIMIT,
    conjunctive predicate, every referenced relation a base table, and
    column names unambiguous across the joined relations (qualified names
    are resolved per relation).
    """
    if query.is_aggregate or query.select_distinct or query.order or (
        query.limit_n is not None
    ):
        raise NotConjunctive("aggregation/distinct/order/limit not in CQ fragment")
    if query.set_ops:
        raise NotConjunctive("set operations (UNION) not in CQ fragment")
    relations = query.referenced_relations()
    for clause in query.joins:
        if clause.how != "inner":
            raise NotConjunctive("outer joins not in CQ fragment")
    for relation in relations:
        if not catalog.is_table(relation):
            raise NotConjunctive(f"{relation!r} is not a base table")

    uf = _UnionFind()
    atoms_vars: list[dict[str, int]] = []
    qualified_owner: dict[str, tuple[int, str]] = {}
    for i, relation in enumerate(relations):
        schema = catalog.table(relation).schema
        var_map = {column: uf.make() for column in schema.names}
        atoms_vars.append(var_map)
        for column in schema.names:
            qualified_owner[f"{relation}.{column}"] = (i, column)

    def resolve_upto(name: str, last_atom: int) -> int:
        """Resolve a (possibly qualified) name among atoms[0..last_atom]."""
        if name in qualified_owner:
            atom_idx, column = qualified_owner[name]
            if atom_idx > last_atom:
                raise NotConjunctive(f"{name!r} not yet in scope")
            return atoms_vars[atom_idx][column]
        owners = [
            i for i in range(last_atom + 1) if name in atoms_vars[i]
        ]
        if not owners:
            raise NotConjunctive(f"unknown column {name!r}")
        if len(owners) > 1:
            raise NotConjunctive(f"ambiguous column name {name!r}; qualify it")
        return atoms_vars[owners[0]][name]

    def resolve(name: str) -> int:
        return resolve_upto(name, len(relations) - 1)

    for clause_idx, clause in enumerate(query.joins):
        for lname, rname in clause.on:
            right_relation = relations[clause_idx + 1]
            right_schema = catalog.table(right_relation).schema
            rcol = rname.split(".")[-1]
            if rcol not in right_schema:
                raise NotConjunctive(
                    f"join column {rname!r} not in {right_relation!r}"
                )
            uf.union(
                resolve_upto(lname, clause_idx),
                atoms_vars[clause_idx + 1][rcol],
            )

    # Constraints from the WHERE clause.
    constraint_buckets: dict[int, _ColumnConstraints] = {}
    if query.where is not None:
        for conjunct in conjuncts(query.where):
            if isinstance(conjunct, Comparison) and isinstance(
                conjunct.left, Col
            ) and isinstance(conjunct.right, Col):
                if conjunct.op != "=":
                    raise NotConjunctive("var-var inequality not in fragment")
                uf.union(resolve(conjunct.left.name), resolve(conjunct.right.name))
        per_column = _decompose(_strip_var_var(query.where))
        for name, constraints in per_column.items():
            root = uf.find(resolve(name))
            bucket = constraint_buckets.setdefault(root, _ColumnConstraints())
            _merge_constraints(bucket, constraints)

    canonical = CanonicalQuery()
    for i, relation in enumerate(relations):
        schema = catalog.table(relation).schema
        canonical.atoms.append(
            _Atom(
                relation,
                tuple(uf.find(atoms_vars[i][c]) for c in schema.names),
            )
        )
    if query.select:
        for item in query.select:
            name = item if isinstance(item, str) else item[0]
            expr = Col(name) if isinstance(item, str) else item[1]
            if not isinstance(expr, Col):
                raise NotConjunctive(f"computed head column {name!r} not in fragment")
            canonical.head[name] = uf.find(resolve(expr.name))
    else:
        for name in _expanded_outputs(query, catalog):
            canonical.head[name] = uf.find(resolve(name))
    canonical.constraints = constraint_buckets
    canonical.n_vars = len(uf.parent)
    return canonical


def _strip_var_var(predicate: Expr) -> Expr | None:
    """Remove var=var conjuncts (handled via union-find) from a predicate."""
    remaining = [
        c
        for c in conjuncts(predicate)
        if not (
            isinstance(c, Comparison)
            and isinstance(c.left, Col)
            and isinstance(c.right, Col)
        )
    ]
    if not remaining:
        return None
    expr = remaining[0]
    for c in remaining[1:]:
        expr = expr & c
    return expr


def _merge_constraints(into: _ColumnConstraints, other: _ColumnConstraints) -> None:
    if other.has_eq:
        into.add("=", other.eq)
    for v in other.not_eq:
        into.add("!=", v)
    if other.lower is not None:
        into.add(">" if other.lower_strict else ">=", other.lower)
    if other.upper is not None:
        into.add("<" if other.upper_strict else "<=", other.upper)
    if other.in_set is not None:
        into.add_in(set(other.in_set))
    into.not_null = into.not_null or other.not_null


def is_contained(q1: Query, q2: Query, catalog: Catalog) -> bool:
    """Sound check that Q1 ⊆ Q2 (every Q1 answer is a Q2 answer).

    Uses the homomorphism theorem with conservative comparison handling.
    Raises :class:`NotConjunctive` when either query leaves the fragment.

    Results (including ``NotConjunctive`` outcomes) are memoized per catalog
    DDL generation; see :func:`proof_cache_stats`.
    """
    if not _caching_enabled:
        return _is_contained_uncached(q1, q2, catalog)
    key = (q1.fingerprint(), q2.fingerprint(), catalog.uid, catalog.ddl_version)
    token = _containment_cache.fill_token()
    cached = _containment_cache.get(key)
    if TRACER.active():
        instrument.cache_lookup("containment", cached is not None)
    if cached is not None:
        kind, payload = cached
        if kind == "raise":
            raise NotConjunctive(*payload)
        return payload
    try:
        result = _is_contained_uncached(q1, q2, catalog)
    except NotConjunctive as exc:
        _hook_catalog(catalog)
        _containment_cache.put_if(key, ("raise", exc.args), token)
        raise
    _hook_catalog(catalog)
    _containment_cache.put_if(key, ("value", result), token)
    return result


def _is_contained_uncached(q1: Query, q2: Query, catalog: Catalog) -> bool:
    c1 = canonicalize(q1, catalog)
    c2 = canonicalize(q2, catalog)
    # Containment compares answer sets, so the heads must expose the same
    # columns (alignment is by name).
    if set(c1.head) != set(c2.head):
        return False
    return _find_homomorphism(c2, c1)


def _find_homomorphism(source: CanonicalQuery, target: CanonicalQuery) -> bool:
    """Is there a containment mapping ``source`` → ``target``?

    Maps each source atom onto a target atom of the same relation with a
    consistent variable mapping; head variables must align by column name;
    target constraints must imply the mapped source constraints.
    """
    candidates: list[list[_Atom]] = []
    for atom in source.atoms:
        options = [t for t in target.atoms if t.relation == atom.relation]
        if not options:
            return False
        candidates.append(options)

    for assignment in itertools.product(*candidates):
        mapping: dict[int, int] = {}
        ok = True
        for src_atom, dst_atom in zip(source.atoms, assignment):
            for sv, dv in zip(src_atom.variables, dst_atom.variables):
                if mapping.get(sv, dv) != dv:
                    ok = False
                    break
                mapping[sv] = dv
            if not ok:
                break
        if not ok:
            continue
        # Heads align by name.
        if any(
            mapping.get(sv) != target.head.get(name)
            for name, sv in source.head.items()
        ):
            continue
        # Target constraints must imply mapped source constraints.
        if _constraints_ok(source, target, mapping):
            return True
    return False


def _constraints_ok(
    source: CanonicalQuery, target: CanonicalQuery, mapping: dict[int, int]
) -> bool:
    for sv, needed in source.constraints.items():
        dv = mapping.get(sv)
        if dv is None:
            return False
        having = target.constraints.get(dv, _ColumnConstraints())
        if needed.has_eq and not having.implies("=", needed.eq):
            return False
        for value in needed.not_eq:
            if not having.implies("!=", value):
                return False
        if needed.lower is not None and not having.implies(
            ">" if needed.lower_strict else ">=", needed.lower
        ):
            return False
        if needed.upper is not None and not having.implies(
            "<" if needed.upper_strict else "<=", needed.upper
        ):
            return False
        if needed.in_set is not None and not having.implies_in(needed.in_set):
            return False
        if needed.not_null and not having.implies_not_null():
            return False
    return True
