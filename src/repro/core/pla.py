"""Privacy Level Agreements: the unit of agreement between owner and BI provider.

A PLA binds a set of annotations to a *target* artifact at one of the four
engineering levels (source table, warehouse table/ETL, meta-report, report).
PLAs have a lifecycle — drafted during elicitation, approved by the owner,
possibly superseded — because §5's stability analysis is precisely about how
often approvals must be redone.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.errors import PolicyError
from repro.core.annotations import Annotation, IntensionalCondition
from repro.relational.expressions import And, Expr

__all__ = ["PlaLevel", "PlaStatus", "PLA", "PlaRegistry"]


class PlaLevel(enum.Enum):
    """Where in the BI stack the PLA's target lives (the Fig 5 continuum)."""

    SOURCE = "source"
    WAREHOUSE = "warehouse"
    METAREPORT = "metareport"
    REPORT = "report"


class PlaStatus(enum.Enum):
    DRAFT = "draft"
    APPROVED = "approved"
    SUPERSEDED = "superseded"


@dataclass(frozen=True)
class PLA:
    """One privacy level agreement."""

    name: str
    owner: str  # the source owner who imposes it
    level: PlaLevel
    target: str  # artifact name the annotations attach to
    annotations: tuple[Annotation, ...]
    status: PlaStatus = PlaStatus.DRAFT
    version: int = 1

    def __post_init__(self) -> None:
        if not self.name or not self.owner or not self.target:
            raise PolicyError("PLA name, owner, and target must be non-empty")
        if not self.annotations:
            raise PolicyError(f"PLA {self.name!r} carries no annotations")

    def approved(self) -> "PLA":
        """The owner signs off on this draft."""
        return replace(self, status=PlaStatus.APPROVED)

    def superseded(self) -> "PLA":
        return replace(self, status=PlaStatus.SUPERSEDED)

    def revised(self, annotations: Iterable[Annotation]) -> "PLA":
        """A new draft version replacing these annotations (re-elicitation)."""
        return replace(
            self,
            annotations=tuple(annotations),
            status=PlaStatus.DRAFT,
            version=self.version + 1,
        )

    def annotations_of_kind(self, kind: str) -> tuple[Annotation, ...]:
        return tuple(a for a in self.annotations if a.requirement_kind == kind)

    def row_restriction(self) -> Expr | None:
        """Conjunction of this PLA's row-suppression visibility conditions.

        The predicate describing which rows the owner allows the target to
        show (``suppress_row`` intensional conditions AND-ed together);
        ``None`` when the PLA imposes no row-level restriction. This is the
        per-target region both the VPD translator and the cross-level
        verifier reason over.
        """
        predicate: Expr | None = None
        for a in self.annotations:
            if isinstance(a, IntensionalCondition) and a.action == "suppress_row":
                predicate = (
                    a.condition
                    if predicate is None
                    else And(predicate, a.condition)
                )
        return predicate

    def describe(self) -> str:
        lines = [
            f"PLA {self.name!r} v{self.version} by {self.owner} on "
            f"{self.level.value}:{self.target} [{self.status.value}]"
        ]
        lines.extend(f"  - {a.describe()}" for a in self.annotations)
        return "\n".join(lines)


@dataclass
class PlaRegistry:
    """All PLAs of one BI deployment, indexed by level and target."""

    plas: list[PLA] = field(default_factory=list)

    def add(self, pla: PLA) -> PLA:
        if any(p.name == pla.name and p.version == pla.version for p in self.plas):
            raise PolicyError(f"PLA {pla.name!r} v{pla.version} already registered")
        self.plas.append(pla)
        return pla

    def approve(self, name: str) -> PLA:
        """Mark the latest version of ``name`` approved, superseding older ones."""
        versions = [p for p in self.plas if p.name == name]
        if not versions:
            raise PolicyError(f"no PLA named {name!r}")
        latest = max(versions, key=lambda p: p.version)
        updated = latest.approved()
        self.plas = [
            p.superseded()
            if p.name == name and p.version < latest.version
            and p.status is PlaStatus.APPROVED
            else p
            for p in self.plas
        ]
        self._replace(latest, updated)
        return updated

    def _replace(self, old: PLA, new: PLA) -> None:
        self.plas = [new if p is old else p for p in self.plas]

    def revise(self, name: str, annotations: Iterable[Annotation]) -> PLA:
        """Create a new draft version of ``name`` (a re-elicitation outcome)."""
        versions = [p for p in self.plas if p.name == name]
        if not versions:
            raise PolicyError(f"no PLA named {name!r}")
        revised = max(versions, key=lambda p: p.version).revised(annotations)
        return self.add(revised)

    # -- queries ----------------------------------------------------------

    def approved_for_target(self, level: PlaLevel, target: str) -> tuple[PLA, ...]:
        """Approved PLAs attached to one artifact."""
        return tuple(
            p
            for p in self.plas
            if p.level is level and p.target == target
            and p.status is PlaStatus.APPROVED
        )

    def approved_at_level(self, level: PlaLevel) -> tuple[PLA, ...]:
        return tuple(
            p
            for p in self.plas
            if p.level is level and p.status is PlaStatus.APPROVED
        )

    def by_owner(self, owner: str) -> tuple[PLA, ...]:
        return tuple(p for p in self.plas if p.owner == owner)

    def iter_annotations(
        self, level: PlaLevel | None = None
    ) -> Iterator[tuple[PLA, Annotation]]:
        """All (pla, annotation) pairs from approved PLAs, optionally by level."""
        for pla in self.plas:
            if pla.status is not PlaStatus.APPROVED:
                continue
            if level is not None and pla.level is not level:
                continue
            for annotation in pla.annotations:
                yield pla, annotation

    def annotation_count(self, level: PlaLevel | None = None) -> int:
        return sum(1 for _ in self.iter_annotations(level))

    def requirement_kind_histogram(self) -> dict[str, int]:
        """How many approved annotations exist per requirement kind."""
        counts: dict[str, int] = {}
        for _, annotation in self.iter_annotations():
            kind = annotation.requirement_kind
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        approved = [p for p in self.plas if p.status is PlaStatus.APPROVED]
        if not approved:
            return "(no approved PLAs)"
        grouped = itertools.groupby(
            sorted(approved, key=lambda p: (p.level.value, p.target, p.name)),
            key=lambda p: p.level,
        )
        lines = []
        for level, plas in grouped:
            lines.append(f"{level.value}:")
            lines.extend(f"  {p.name} on {p.target} ({len(p.annotations)} annotations)" for p in plas)
        return "\n".join(lines)
