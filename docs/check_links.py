#!/usr/bin/env python
"""Docs link checker: every cross-reference in docs/*.md and README.md
must resolve.

Checked link classes:

* relative markdown links (``[x](docs/FOO.md)``, ``[x](FOO.md#anchor)``) —
  the target file must exist relative to the linking document;
* intra-document anchors (``[x](#section)``) — a heading with that GitHub
  slug must exist in the same document;
* cross-document anchors (``[x](FOO.md#section)``) — the heading must
  exist in the target document.

External links (``http(s)://``, ``mailto:``) are out of scope: CI must
not depend on the network. Bare file mentions in prose or code spans are
not links and are not checked.

Exit status is the number of broken links, so both CI and
``tests/test_docs_links.py`` can gate on it directly.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Documents whose links are checked: every docs/*.md plus the README.
def documents() -> list[pathlib.Path]:
    return sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]


# [text](target) — but not images ![..](..) and not footnote refs.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes.

    Emphasis markers are stripped but literal underscores are kept
    (``BENCH_engine.json`` → ``bench_enginejson``); non-ASCII symbols are
    dropped like other punctuation.
    """
    text = re.sub(r"[`*]", "", heading.strip()).lower()
    text = re.sub(r"[^a-z0-9_\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    body = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING_RE.finditer(body):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_document(path: pathlib.Path) -> list[str]:
    errors: list[str] = []
    body = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link {target!r}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor {target!r}"
                )
    return errors


def main() -> int:
    errors: list[str] = []
    docs = documents()
    for doc in docs:
        errors.extend(check_document(doc))
    for err in errors:
        print(err)
    print(f"checked {len(docs)} documents: {len(errors)} broken link(s)")
    return len(errors)


if __name__ == "__main__":
    raise SystemExit(main())
