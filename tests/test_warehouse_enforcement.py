"""Tests for the warehouse-level enforcement point (§4)."""

import pytest

from repro.errors import ComplianceError
from repro.policy import IntensionalAssociation, SubjectRegistry
from repro.relational import Catalog, Query, Table, View, make_schema, parse_expression, parse_query
from repro.relational.types import ColumnType
from repro.warehouse import (
    ColumnAnnotation,
    PrivacyMetadataRegistry,
    TableAnnotation,
    WarehouseEnforcer,
)


@pytest.fixture
def world():
    catalog = Catalog()
    presc = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", 60),
        ("Bob", "DR", "asthma", 10),
        ("Dana", "DR", "asthma", 10),
        ("Math", "DM", "diabetes", 10),
    ]
    catalog.add_table(Table.from_rows("dwh_presc", presc, rows, provider="warehouse"))
    exams = make_schema(("patient", ColumnType.STRING), ("result", ColumnType.FLOAT))
    catalog.add_table(
        Table.from_rows("dwh_exams", exams, [("Alice", 1.0)], provider="warehouse")
    )
    catalog.add_view(
        View("joined", Query.from_("dwh_presc").join("dwh_exams", [("patient", "patient")]))
    )

    metadata = PrivacyMetadataRegistry()
    metadata.annotate_column(
        ColumnAnnotation(
            "dwh_presc", "patient",
            sensitivity="identifying",
            allowed_roles=frozenset({"health_director"}),
        )
    )
    metadata.annotate_table(
        TableAnnotation(
            "dwh_presc",
            min_aggregation=2,
            joinable_with=frozenset(),  # joins with nothing
            allowed_purposes=frozenset({"care"}),
        )
    )
    metadata.add_row_rule(
        IntensionalAssociation(
            "hiv", "dwh_presc", parse_expression("disease = 'HIV'"),
            {"deny_row": True},
        )
    )

    subjects = SubjectRegistry()
    subjects.purposes.declare("care/quality")
    subjects.purposes.declare("marketing")
    subjects.add_role("analyst")
    subjects.add_role("health_director")
    subjects.add_user("ann", "analyst")
    subjects.add_user("dora", "health_director")
    return WarehouseEnforcer(catalog=catalog, metadata=metadata), subjects


class TestStaticGate:
    def test_purpose_restriction(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug, COUNT(*) AS n FROM dwh_presc GROUP BY drug")
        ok = enforcer.check(query, subjects.context("ann", "care/quality"))
        assert ok == []
        bad = enforcer.check(query, subjects.context("ann", "marketing"))
        assert any("purpose" in r for r in bad)

    def test_column_role_restriction(self, world):
        enforcer, subjects = world
        query = parse_query(
            "SELECT patient, COUNT(*) AS n FROM dwh_presc GROUP BY patient"
        )
        denied = enforcer.check(query, subjects.context("ann", "care/quality"))
        assert any("restricted to roles" in r for r in denied)
        allowed = enforcer.check(query, subjects.context("dora", "care/quality"))
        assert allowed == []

    def test_join_permission(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug FROM joined")
        reasons = enforcer.check(query, subjects.context("ann", "care/quality"))
        assert any("joining" in r for r in reasons)

    def test_record_level_sensitive_exposure_blocked(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT patient, drug FROM dwh_presc")
        reasons = enforcer.check(query, subjects.context("dora", "care/quality"))
        assert any("aggregation" in r for r in reasons)

    def test_record_level_non_sensitive_allowed(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug, cost FROM dwh_presc")
        assert enforcer.check(query, subjects.context("ann", "care/quality")) == []


class TestGuardedExecution:
    def test_row_rules_and_floor_applied(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug, COUNT(*) AS n FROM dwh_presc GROUP BY drug")
        table, suppressed = enforcer.run(
            query, subjects.context("ann", "care/quality")
        )
        # DH aggregates only the HIV row: the group row itself matches the
        # intensional deny rule? No — the rule keys on 'disease', absent
        # from the aggregate output; but the floor (2) removes DH and DM.
        assert dict(table.rows) == {"DR": 2}
        assert suppressed == 2

    def test_row_rules_on_detail_output(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug, disease, cost FROM dwh_presc")
        table, suppressed = enforcer.run(
            query, subjects.context("ann", "care/quality")
        )
        assert "HIV" not in table.column_values("disease")
        assert suppressed == 1

    def test_rejection_raises(self, world):
        enforcer, subjects = world
        query = parse_query("SELECT drug FROM joined")
        with pytest.raises(ComplianceError):
            enforcer.run(query, subjects.context("ann", "care/quality"))
