"""Unit tests for the Query builder and the Catalog."""

import pytest

from repro.errors import CatalogError, QueryError
from repro.relational import Catalog, Query, View
from repro.relational.algebra import AggSpec
from repro.relational.expressions import col
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType


class TestQueryBuilder:
    def test_from_requires_name(self):
        with pytest.raises(QueryError):
            Query.from_("")

    def test_builder_is_immutable(self):
        base = Query.from_("t")
        filtered = base.filter(col("a") > 1)
        assert base.where is None and filtered.where is not None

    def test_filter_ands_predicates(self):
        q = Query.from_("t").filter(col("a") > 1).filter(col("b") > 2)
        assert "AND" in str(q.where)

    def test_join_clause_validation(self):
        with pytest.raises(QueryError):
            Query.from_("t").join("u", [], how="inner")
        with pytest.raises(QueryError):
            Query.from_("t").join("u", [("a", "b")], how="cross")

    def test_referenced_relations(self):
        q = Query.from_("t").join("u", [("a", "b")]).join("v", [("c", "d")])
        assert q.referenced_relations() == ("t", "u", "v")

    def test_output_names_with_select(self):
        q = Query.from_("t").project("a", ("b2", col("b")))
        assert q.output_names() == ("a", "b2")

    def test_output_names_with_aggregate(self):
        q = Query.from_("t").group("g").agg(AggSpec("count", None, "n"))
        assert q.output_names() == ("g", "n")

    def test_output_names_select_star(self):
        assert Query.from_("t").output_names() is None

    def test_columns_used(self):
        q = (
            Query.from_("t")
            .join("u", [("a", "b")])
            .filter(col("c") > 1)
            .group("g")
            .agg(AggSpec("sum", "m", "s"))
            .order_by("g")
        )
        assert q.columns_used() == frozenset({"a", "b", "c", "g", "m"})

    def test_describe_is_sqlish(self):
        q = (
            Query.from_("t")
            .filter(col("a") > 1)
            .group("g")
            .agg(AggSpec("count", None, "n"))
            .order_by(("n", True))
            .limit(5)
        )
        text = q.describe()
        for fragment in ("SELECT", "FROM t", "WHERE", "GROUP BY g", "ORDER BY n DESC", "LIMIT 5"):
            assert fragment in text

    def test_limit_negative_rejected(self):
        with pytest.raises(QueryError):
            Query.from_("t").limit(-1)


class TestCatalog:
    def _table(self, name="t"):
        return Table.from_rows(
            name, make_schema(("a", ColumnType.INT)), [(1,)], provider="p"
        )

    def test_add_and_lookup(self):
        cat = Catalog()
        cat.add_table(self._table())
        assert cat.is_table("t") and "t" in cat
        assert cat.table("t").rows == [(1,)]

    def test_duplicate_name_rejected(self):
        cat = Catalog()
        cat.add_table(self._table())
        with pytest.raises(CatalogError):
            cat.add_table(self._table())

    def test_replace_allowed_when_requested(self):
        cat = Catalog()
        cat.add_table(self._table())
        cat.add_table(self._table(), replace=True)

    def test_view_registration_and_names(self):
        cat = Catalog()
        cat.add_table(self._table())
        cat.add_view(View("v", Query.from_("t")))
        assert cat.is_view("v")
        assert cat.view_names() == ("v",)
        assert cat.table_names() == ("t",)

    def test_missing_lookups_raise(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.table("nope")
        with pytest.raises(CatalogError):
            cat.view("nope")
        with pytest.raises(CatalogError):
            cat.drop("nope")

    def test_drop(self):
        cat = Catalog()
        cat.add_table(self._table())
        cat.drop("t")
        assert "t" not in cat

    def test_self_referencing_view_rejected(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.add_view(View("v", Query.from_("v")))

    def test_base_relations_through_views(self):
        cat = Catalog()
        cat.add_table(self._table("t"))
        cat.add_table(self._table("u"))
        cat.add_view(View("v1", Query.from_("t")))
        cat.add_view(View("v2", Query.from_("v1").join("u", [("a", "a")])))
        assert cat.base_relations("v2") == frozenset({"t", "u"})

    def test_base_relations_of_query(self):
        cat = Catalog()
        cat.add_table(self._table("t"))
        cat.add_view(View("v", Query.from_("t")))
        q = Query.from_("v")
        assert cat.base_relations_of_query(q) == frozenset({"t"})
