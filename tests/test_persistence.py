"""Tests for JSON serialization and deployment save/load."""

import datetime

import pytest

from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    ComplianceChecker,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    PlaLevel,
    PlaStatus,
)
from repro.persistence import (
    PersistenceError,
    annotation_from_json,
    annotation_to_json,
    expr_from_json,
    expr_to_json,
    load_deployment,
    pla_from_json,
    pla_to_json,
    query_from_json,
    query_to_json,
    report_from_json,
    report_to_json,
    save_deployment,
)
from repro.relational import parse_expression, parse_query
from repro.reports import ReportDefinition


EXPRESSIONS = [
    "a = 1",
    "a != 'x'",
    "a > 1.5 AND b < 3",
    "a IN (1, 2, 3) OR NOT c = 'y'",
    "a IS NOT NULL",
    "a + b * 2 > 10",
    "d >= DATE '2007-02-12'",
]


class TestExprJson:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_roundtrip(self, text):
        expr = parse_expression(text)
        back = expr_from_json(expr_to_json(expr))
        assert str(back) == str(expr)

    def test_date_literal_roundtrip(self):
        expr = parse_expression("d = DATE '2007-02-12'")
        back = expr_from_json(expr_to_json(expr))
        row = {"d": datetime.date(2007, 2, 12)}
        assert back.evaluate(row) and expr.evaluate(row)

    def test_semantics_preserved(self):
        expr = parse_expression("a > 1 AND b IN ('x', 'y')")
        back = expr_from_json(expr_to_json(expr))
        for row in ({"a": 2, "b": "x"}, {"a": 0, "b": "x"}, {"a": 2, "b": "z"}):
            assert back.evaluate(row) == expr.evaluate(row)

    def test_unknown_op_rejected(self):
        with pytest.raises(PersistenceError):
            expr_from_json({"op": "xor"})

    def test_not_a_payload_rejected(self):
        with pytest.raises(PersistenceError):
            expr_from_json("a = 1")  # type: ignore[arg-type]


QUERIES = [
    "SELECT * FROM t",
    "SELECT a, b AS bee FROM t WHERE a > 1",
    "SELECT a, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY a HAVING n > 1",
    "SELECT DISTINCT a FROM t JOIN u ON x = y LEFT JOIN v ON p = q "
    "ORDER BY a DESC LIMIT 5",
    "SELECT a * 2 AS doubled FROM t",
    "SELECT COUNT(DISTINCT a) AS kinds FROM t",
]


class TestQueryJson:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_roundtrip_describe_stable(self, sql):
        query = parse_query(sql)
        back = query_from_json(query_to_json(query))
        assert back.describe() == query.describe()
        assert back == query

    def test_version_checked(self):
        payload = query_to_json(parse_query("SELECT a FROM t"))
        payload["v"] = 99
        with pytest.raises(PersistenceError):
            query_from_json(payload)


ANNOTATIONS = [
    AttributeAccess("patient", frozenset({"director", "analyst"})),
    AggregationThreshold(5, scope="patient"),
    AnonymizationRequirement("zip", "generalize", 2),
    JoinPermission("a/x", "b/y", False),
    IntegrationPermission("muni", True),
    IntensionalCondition(
        "result", parse_expression("disease != 'HIV'"), "suppress_cell"
    ),
]


class TestPlaJson:
    @pytest.mark.parametrize("annotation", ANNOTATIONS, ids=lambda a: a.requirement_kind)
    def test_annotation_roundtrip(self, annotation):
        back = annotation_from_json(annotation_to_json(annotation))
        assert back.describe() == annotation.describe()
        assert back.requirement_kind == annotation.requirement_kind

    def test_pla_roundtrip_preserves_status_and_version(self):
        pla = PLA(
            "p", "hospital", PlaLevel.METAREPORT, "mr",
            tuple(ANNOTATIONS), status=PlaStatus.APPROVED, version=3,
        )
        back = pla_from_json(pla_to_json(pla))
        assert back.status is PlaStatus.APPROVED
        assert back.version == 3
        assert back.describe() == pla.describe()

    def test_report_roundtrip(self):
        report = ReportDefinition(
            "r", "Title",
            parse_query("SELECT a, COUNT(*) AS n FROM t GROUP BY a"),
            frozenset({"analyst", "auditor"}), "care/quality",
            description="d", version=2,
        )
        back = report_from_json(report_to_json(report))
        assert back == report

    def test_malformed_pla_rejected(self):
        with pytest.raises(PersistenceError):
            pla_from_json({"name": "p"})

    def test_unknown_annotation_kind_rejected(self):
        with pytest.raises(PersistenceError):
            annotation_from_json({"kind": "telepathy"})


class TestDeploymentStore:
    def test_full_roundtrip_scenario(self, tmp_path, scenario):
        root = save_deployment(
            tmp_path / "deploy",
            catalog=scenario.bi_catalog,
            metareports=scenario.metareports,
            plas=scenario.pla_registry,
            reports=scenario.report_catalog,
        )
        loaded = load_deployment(root)

        # Same tables, same data.
        assert loaded.catalog.table_names() == scenario.bi_catalog.table_names()
        original = scenario.bi_catalog.table("dwh_prescriptions")
        restored = loaded.catalog.table("dwh_prescriptions")
        assert restored.rows == original.rows

        # Same meta-reports with approved PLAs.
        assert len(loaded.metareports) == len(scenario.metareports)
        assert all(m.approved for m in loaded.metareports)

        # Same report catalog (names + current versions).
        assert loaded.reports.names() == scenario.report_catalog.names()
        for name in loaded.reports.names():
            assert (
                loaded.reports.current(name).query.describe()
                == scenario.report_catalog.current(name).query.describe()
            )

    def test_loaded_deployment_checks_identically(self, tmp_path, scenario):
        root = save_deployment(
            tmp_path / "deploy",
            catalog=scenario.bi_catalog,
            metareports=scenario.metareports,
            plas=scenario.pla_registry,
            reports=scenario.report_catalog,
        )
        loaded = load_deployment(root)
        checker = ComplianceChecker(
            catalog=loaded.catalog, metareports=loaded.metareports
        )
        original = {
            name: verdict.compliant
            for name, verdict in scenario.checker.check_catalog(
                scenario.report_catalog.all_current()
            ).items()
        }
        reloaded = {
            name: verdict.compliant
            for name, verdict in checker.check_catalog(
                loaded.reports.all_current()
            ).items()
        }
        assert reloaded == original

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_deployment(tmp_path / "nope")

    def test_dropped_reports_survive(self, tmp_path, scenario):
        from repro.reports import ReportCatalog

        reports = ReportCatalog()
        reports.add(scenario.workload[0])
        reports.add(scenario.workload[1])
        reports.drop(scenario.workload[0].name)
        root = save_deployment(
            tmp_path / "d2",
            catalog=scenario.bi_catalog,
            metareports=scenario.metareports,
            plas=scenario.pla_registry,
            reports=reports,
        )
        loaded = load_deployment(root)
        assert scenario.workload[0].name not in loaded.reports
        assert scenario.workload[1].name in loaded.reports
        # History of the dropped report is retained for auditing.
        assert loaded.reports.history(scenario.workload[0].name)
