"""Tests for report diffing and the calendar dimension."""

import pytest

from repro.errors import ReproError, WarehouseError
from repro.relational import Catalog, parse_expression, parse_query
from repro.relational.algebra import AggSpec
from repro.reports import EvolutionEvent, EvolutionKind, ReportCatalog, ReportDefinition, apply_event, diff_definitions
from repro.warehouse import Cube, StarSchema, build_date_dimension, build_fact
from repro.workloads import paper_prescriptions


def base_report(version=1):
    return ReportDefinition(
        "r", "t",
        parse_query("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
        frozenset({"analyst"}), "care",
        version=version,
    )


class TestReportDiff:
    def test_identical_versions_empty(self):
        diff = diff_definitions(base_report(), base_report(version=2))
        assert diff.is_empty
        assert diff.elements_touched == 0
        assert "no owner-visible change" in diff.describe()

    def test_column_and_grouping_changes(self):
        catalog = ReportCatalog()
        catalog.add(base_report())
        updated = apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.ADD_COLUMN, report="r", column="disease"
            ),
        )
        diff = diff_definitions(base_report(), updated)
        assert diff.columns_added == ("disease",)
        assert diff.grouping_added == ("disease",)
        assert diff.elements_touched == 2
        assert "+cols ['disease']" in diff.describe()

    def test_predicate_change(self):
        old = base_report()
        new = old.with_query(old.query.filter(parse_expression("disease != 'HIV'")))
        diff = diff_definitions(old, new)
        assert diff.predicate_changed
        assert "HIV" in diff.new_predicate
        assert diff.old_predicate == ""

    def test_audience_change(self):
        old = base_report()
        new = old.with_audience(frozenset({"analyst", "auditor"}))
        diff = diff_definitions(old, new)
        assert diff.audience_added == ("auditor",)
        assert diff.audience_removed == ()

    def test_different_reports_rejected(self):
        other = ReportDefinition(
            "other", "t", base_report().query, frozenset({"analyst"}), "care"
        )
        with pytest.raises(ReproError):
            diff_definitions(base_report(), other)


class TestDateDimension:
    @pytest.fixture
    def cube(self):
        presc = paper_prescriptions()
        dim_date, extended = build_date_dimension("day", presc, "date")
        fact = build_fact(
            "rx",
            extended,
            [
                (
                    dim_date,
                    {
                        "date": "date",
                        "date_month": "date_month",
                        "date_year": "date_year",
                    },
                )
            ],
            measures=[],
            degenerate=["patient", "drug"],
        )
        star = StarSchema("rx", fact, [dim_date])
        catalog = Catalog()
        star.register(catalog)
        return Cube(star, catalog)

    def test_levels(self, cube):
        assert cube.star.dimension("day").levels == (
            "date", "date_month", "date_year",
        )

    def test_yearly_rollup(self, cube):
        cq = cube.base_query(["date_year"], [AggSpec("count", None, "n")])
        out = cube.evaluate(cq)
        assert dict(out.rows) == {2007: 4, 2008: 1}

    def test_drilldown_to_month(self, cube):
        cq = cube.base_query(["date_year"], [AggSpec("count", None, "n")])
        monthly = cube.drilldown(cq, "date_year")
        out = cube.evaluate(monthly)
        assert dict(out.rows)["2007-02"] == 1
        assert len(out) == 5

    def test_rollup_chain_day_to_year(self, cube):
        cq = cube.base_query(["date"], [AggSpec("count", None, "n")])
        month = cube.rollup(cq, "date")
        assert month.group_by == ("date_month",)
        year = cube.rollup(month, "date_month")
        assert year.group_by == ("date_year",)

    def test_non_date_column_rejected(self):
        presc = paper_prescriptions()
        with pytest.raises(WarehouseError):
            build_date_dimension("bad", presc, "drug")

    def test_null_dates_supported(self):
        from repro.relational import Table, make_schema
        from repro.relational.types import ColumnType

        schema = make_schema(("d", ColumnType.DATE))
        table = Table.from_rows("t", schema, [("2007-02-12",), (None,)])
        dim_date, extended = build_date_dimension("day", table, "d")
        nulls = [r for r in extended.iter_dicts() if r["d"] is None]
        assert nulls and nulls[0]["d_year"] is None and nulls[0]["d_month"] is None
