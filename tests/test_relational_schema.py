"""Unit tests for Schema and Column."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.types import ColumnType


def simple_schema() -> Schema:
    return Schema(
        [
            Column("a", ColumnType.INT, nullable=False),
            Column("b", ColumnType.STRING),
        ]
    )


class TestSchemaBasics:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("x", ColumnType.INT), Column("x", ColumnType.STRING)])

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)

    def test_names_and_len(self):
        schema = simple_schema()
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_contains(self):
        schema = simple_schema()
        assert "a" in schema and "z" not in schema

    def test_column_lookup(self):
        schema = simple_schema()
        assert schema.column("a").ctype is ColumnType.INT
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_index_of(self):
        schema = simple_schema()
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_has_all(self):
        schema = simple_schema()
        assert schema.has_all(["a", "b"])
        assert not schema.has_all(["a", "z"])


class TestSchemaOperations:
    def test_project_reorders(self):
        schema = simple_schema().project(["b", "a"])
        assert schema.names == ("b", "a")

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().project(["z"])

    def test_rename(self):
        schema = simple_schema().rename({"a": "alpha"})
        assert schema.names == ("alpha", "b")
        assert schema.column("alpha").nullable is False

    def test_rename_unknown_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().rename({"z": "zeta"})

    def test_concat_disjoint(self):
        other = Schema([Column("c", ColumnType.FLOAT)])
        combined = simple_schema().concat(other)
        assert combined.names == ("a", "b", "c")

    def test_concat_collision_without_qualifiers_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().concat(simple_schema())

    def test_concat_collision_with_qualifiers(self):
        combined = simple_schema().concat(
            simple_schema(), disambiguate=("l", "r")
        )
        assert combined.names == ("l.a", "l.b", "r.a", "r.b")

    def test_as_nullable(self):
        col = Column("a", ColumnType.INT, nullable=False)
        assert col.as_nullable().nullable is True
        nullable = Column("b", ColumnType.INT, nullable=True)
        assert nullable.as_nullable() is nullable

    def test_describe_mentions_types(self):
        text = simple_schema().describe()
        assert "a: int NOT NULL" in text and "b: string" in text
