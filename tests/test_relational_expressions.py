"""Unit tests for the expression AST."""

import pytest

from repro.errors import QueryError
from repro.relational.expressions import (
    Arith,
    Col,
    Comparison,
    InList,
    IsNull,
    Lit,
    Not,
    col,
    conjuncts,
    lit,
)


ROW = {"age": 30, "name": "Ada", "score": None}


class TestAtoms:
    def test_col_evaluates(self):
        assert col("age").evaluate(ROW) == 30

    def test_col_missing_raises(self):
        with pytest.raises(QueryError):
            col("missing").evaluate(ROW)

    def test_lit_evaluates(self):
        assert lit(7).evaluate(ROW) == 7

    def test_columns_sets(self):
        expr = (col("age") > 10) & (col("name") == "Ada")
        assert expr.columns() == frozenset({"age", "name"})


class TestComparison:
    def test_operators(self):
        assert (col("age") > 10).evaluate(ROW)
        assert (col("age") >= 30).evaluate(ROW)
        assert (col("age") < 31).evaluate(ROW)
        assert (col("age") <= 30).evaluate(ROW)
        assert (col("age") == 30).evaluate(ROW)
        assert (col("age") != 31).evaluate(ROW)

    def test_null_comparisons_false(self):
        assert not (col("score") > 0).evaluate(ROW)
        assert not (col("score") == None).evaluate(ROW)  # noqa: E711

    def test_incomparable_types_raise(self):
        with pytest.raises(QueryError):
            (col("name") > 10).evaluate(ROW)

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~~", Col("a"), Lit(1))


class TestBoolean:
    def test_and_or_not(self):
        t = col("age") > 0
        f = col("age") > 100
        assert (t & t).evaluate(ROW)
        assert not (t & f).evaluate(ROW)
        assert (t | f).evaluate(ROW)
        assert Not(f).evaluate(ROW)

    def test_in_list(self):
        assert InList(col("name"), ("Ada", "Bo")).evaluate(ROW)
        assert not InList(col("name"), ("Bo",)).evaluate(ROW)

    def test_in_list_null_is_false(self):
        assert not InList(col("score"), (None, 1)).evaluate(ROW)

    def test_is_null(self):
        assert IsNull(col("score")).evaluate(ROW)
        assert not IsNull(col("age")).evaluate(ROW)
        assert IsNull(col("age"), negated=True).evaluate(ROW)


class TestArith:
    def test_basic_math(self):
        assert Arith("+", col("age"), lit(5)).evaluate(ROW) == 35
        assert Arith("*", col("age"), lit(2)).evaluate(ROW) == 60

    def test_null_propagates(self):
        assert Arith("+", col("score"), lit(1)).evaluate(ROW) is None

    def test_division_by_zero_is_null(self):
        assert Arith("/", col("age"), lit(0)).evaluate(ROW) is None

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Arith("%", Col("a"), Lit(2))


class TestSubstitute:
    def test_substitute_renames_columns(self):
        expr = (col("a") > 1) & InList(col("b"), (1, 2)) | IsNull(col("c"))
        renamed = expr.substitute({"a": "x", "c": "z"})
        assert renamed.columns() == frozenset({"x", "b", "z"})

    def test_substitute_preserves_semantics(self):
        expr = col("a") > 1
        renamed = expr.substitute({"a": "x"})
        assert renamed.evaluate({"x": 5})


class TestStructuralEquality:
    """Regression: ``Col.__eq__`` is the DSL's comparison builder, so
    composite nodes define their own structural equality — two predicates
    over *different columns* must never compare equal."""

    def test_different_columns_not_equal(self):
        from repro.relational import parse_expression as P

        assert P("a > 1") != P("b > 1")
        assert P("a IN (1, 2)") != P("b IN (1, 2)")
        assert P("a IS NULL") != P("b IS NULL")
        assert P("NOT a = 1") != P("NOT b = 1")
        assert P("a + 1 > 2") != P("b + 1 > 2")
        assert P("a > 1 AND c = 2") != P("b > 1 AND c = 2")
        assert P("a > 1 OR c = 2") != P("b > 1 OR c = 2")

    def test_identical_predicates_equal_and_hash_alike(self):
        from repro.relational import parse_expression as P

        left, right = P("a > 1 AND b IN (1, 2)"), P("a > 1 AND b IN (1, 2)")
        assert left == right
        assert hash(left) == hash(right)

    def test_queries_with_different_predicates_differ(self):
        from repro.relational import parse_query

        q1 = parse_query("SELECT x FROM t WHERE a > 1")
        q2 = parse_query("SELECT x FROM t WHERE b > 1")
        assert q1 != q2
        assert q1 == parse_query("SELECT x FROM t WHERE a > 1")

    def test_cross_type_comparison_is_unequal(self):
        from repro.relational import parse_expression as P

        assert P("a > 1") != P("a IS NULL")
        assert P("a > 1") != "a > 1"


class TestConjuncts:
    def test_flattens_nested_ands(self):
        expr = ((col("a") > 1) & (col("b") > 2)) & (col("c") > 3)
        parts = list(conjuncts(expr))
        assert len(parts) == 3

    def test_or_is_single_conjunct(self):
        expr = (col("a") > 1) | (col("b") > 2)
        assert len(list(conjuncts(expr))) == 1

    def test_none_yields_nothing(self):
        assert list(conjuncts(None)) == []
