"""Tests for the elicitation tool model and meta-report extension."""

import pytest

from repro.errors import ElicitationError, PolicyError
from repro.core import (
    PLA,
    AggregationThreshold,
    AttributeAccess,
    ElicitationTool,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    PlaStatus,
    check_derivability,
)
from repro.relational import Catalog, Query, Table, View, make_schema, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportDefinition

COLUMNS = ("patient", "drug", "disease", "cost")


@pytest.fixture
def world():
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", 60),
        ("Bob", "DR", "asthma", 10),
        ("Math", "DM", "diabetes", 10),
    ]
    cat.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
    cat.add_view(View("wide", Query.from_("base").project(*COLUMNS)))
    mrs = MetaReportSet()
    mrs.add(MetaReport("mr", Query.from_("wide").project("patient", "drug")))
    mrs.register_views(cat)
    return cat, mrs


class TestElicitationTool:
    def test_column_cards_show_values_and_origins(self, world):
        cat, mrs = world
        tool = ElicitationTool(catalog=cat)
        cards = tool.column_cards(mrs.get("mr"))
        by_name = {c.column: c for c in cards}
        assert set(by_name) == {"patient", "drug"}
        assert "Alice" in by_name["patient"].sample_values
        assert by_name["patient"].origin_relations == ("hospital/base",)
        assert any("base#0.patient" in cell for cell in by_name["patient"].origin_cells)

    def test_present_renders_owner_view(self, world):
        cat, mrs = world
        tool = ElicitationTool(catalog=cat)
        text = tool.present(mrs.get("mr"))
        assert "META-REPORT 'mr'" in text
        assert "hospital/base" in text

    def test_propose_and_finalize(self, world):
        cat, mrs = world
        tool = ElicitationTool(catalog=cat)
        metareport = mrs.get("mr")
        tool.propose(metareport, AggregationThreshold(5))
        tool.propose(
            metareport, AttributeAccess("patient", frozenset({"director"}))
        )
        registry = PlaRegistry()
        pla = tool.finalize(metareport, owner="hospital", registry=registry)
        assert pla.status is PlaStatus.APPROVED
        assert metareport.approved
        assert len(pla.annotations) == 2
        # Annotations drained after finalize:
        assert tool.proposed_for("mr") == ()

    def test_propose_unknown_attribute_rejected(self, world):
        cat, mrs = world
        tool = ElicitationTool(catalog=cat)
        with pytest.raises(ElicitationError):
            tool.propose(
                mrs.get("mr"), AttributeAccess("cost", frozenset({"director"}))
            )

    def test_finalize_without_proposals_rejected(self, world):
        cat, mrs = world
        tool = ElicitationTool(catalog=cat)
        with pytest.raises(ElicitationError):
            tool.finalize(mrs.get("mr"), owner="hospital", registry=PlaRegistry())


class TestMetaReportExtension:
    def _approved(self, world):
        cat, mrs = world
        registry = PlaRegistry()
        metareport = mrs.get("mr")
        pla = PLA("pla_mr", "hospital", PlaLevel.METAREPORT, "mr",
                  (AggregationThreshold(2),))
        registry.add(pla)
        metareport.attach_pla(registry.approve("pla_mr"))
        return cat, mrs, registry, metareport

    def test_extend_adds_columns_in_universe_order(self, world):
        cat, mrs, registry, metareport = self._approved(world)
        mrs.extend(
            "mr", ["cost"], universe_columns=COLUMNS, catalog=cat,
        )
        assert metareport.columns() == ("patient", "drug", "cost")

    def test_extend_reregisters_view(self, world):
        cat, mrs, registry, metareport = self._approved(world)
        mrs.extend("mr", ["disease"], universe_columns=COLUMNS, catalog=cat)
        from repro.relational import execute

        out = execute(parse_query("SELECT disease FROM mr"), cat)
        assert len(out) == 3

    def test_extend_revises_pla_to_draft(self, world):
        cat, mrs, registry, metareport = self._approved(world)
        mrs.extend(
            "mr", ["disease"], universe_columns=COLUMNS, catalog=cat,
            registry=registry,
        )
        assert metareport.pla is not None
        assert metareport.pla.status is PlaStatus.DRAFT
        assert metareport.pla.version == 2
        assert not metareport.approved  # unusable until re-approved

    def test_extension_makes_report_derivable_after_reapproval(self, world):
        cat, mrs, registry, metareport = self._approved(world)
        report = ReportDefinition(
            "r", "t",
            parse_query("SELECT drug, SUM(cost) AS total FROM wide GROUP BY drug"),
            frozenset({"analyst"}), "care",
        )
        before, _ = mrs.find_covering(report, cat)
        assert before is None  # cost not exposed yet
        mrs.extend(
            "mr", ["cost"], universe_columns=COLUMNS, catalog=cat, registry=registry,
        )
        metareport.attach_pla(registry.approve("pla_mr"))
        after, _ = mrs.find_covering(report, cat)
        assert after is metareport
        assert check_derivability(report.query, "mr", metareport.query, cat)

    def test_extend_outside_universe_rejected(self, world):
        cat, mrs, registry, metareport = self._approved(world)
        with pytest.raises(PolicyError):
            mrs.extend(
                "mr", ["exam_type"], universe_columns=COLUMNS, catalog=cat
            )

    def test_extend_unknown_metareport_rejected(self, world):
        cat, mrs = world
        with pytest.raises(PolicyError):
            mrs.extend("ghost", ["cost"], universe_columns=COLUMNS, catalog=cat)
