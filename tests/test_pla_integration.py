"""Tests for multi-owner PLA integration (§2's integration challenge)."""

import pytest

from repro.errors import PolicyError
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    PlaLevel,
    integrate_plas,
)
from repro.relational import parse_expression


def pla(owner, *annotations, target="mr"):
    return PLA(
        name=f"pla_{owner}",
        owner=owner,
        level=PlaLevel.METAREPORT,
        target=target,
        annotations=tuple(annotations),
    )


class TestThresholds:
    def test_strictest_wins_and_conflict_reported(self):
        result = integrate_plas(
            [
                pla("hospital", AggregationThreshold(5)),
                pla("municipality", AggregationThreshold(10)),
            ]
        )
        thresholds = [
            a for a in result.annotations if isinstance(a, AggregationThreshold)
        ]
        assert thresholds == [AggregationThreshold(10)]
        assert len(result.conflicts) == 1
        assert result.conflicts[0].kind == "aggregation_threshold"
        assert "strictest wins" in result.conflicts[0].resolution

    def test_agreement_is_clean(self):
        result = integrate_plas(
            [
                pla("hospital", AggregationThreshold(5)),
                pla("municipality", AggregationThreshold(5)),
            ]
        )
        assert result.clean


class TestAttributeAccess:
    def test_audiences_intersect(self):
        result = integrate_plas(
            [
                pla(
                    "hospital",
                    AttributeAccess("patient", frozenset({"analyst", "director"})),
                ),
                pla(
                    "municipality",
                    AttributeAccess("patient", frozenset({"director", "official"})),
                ),
            ]
        )
        access = [a for a in result.annotations if isinstance(a, AttributeAccess)]
        assert access[0].allowed_roles == frozenset({"director"})
        assert any(c.kind == "attribute_access" for c in result.conflicts)

    def test_different_attributes_both_kept(self):
        result = integrate_plas(
            [
                pla("hospital", AttributeAccess("patient", frozenset({"a"}))),
                pla("lab", AttributeAccess("result", frozenset({"b"}))),
            ]
        )
        assert result.clean
        attributes = {
            a.attribute
            for a in result.annotations
            if isinstance(a, AttributeAccess)
        }
        assert attributes == {"patient", "result"}


class TestAnonymization:
    def test_stronger_method_wins(self):
        result = integrate_plas(
            [
                pla("hospital", AnonymizationRequirement("patient", "pseudonymize")),
                pla("municipality", AnonymizationRequirement("patient", "suppress")),
            ]
        )
        anon = [
            a
            for a in result.annotations
            if isinstance(a, AnonymizationRequirement)
        ]
        assert anon[0].method == "suppress"
        assert any(c.kind == "anonymization" for c in result.conflicts)

    def test_generalization_levels_ordered(self):
        result = integrate_plas(
            [
                pla("a", AnonymizationRequirement("zip", "generalize", 1)),
                pla("b", AnonymizationRequirement("zip", "generalize", 3)),
            ]
        )
        anon = [
            a
            for a in result.annotations
            if isinstance(a, AnonymizationRequirement)
        ]
        assert anon[0].generalization_level == 3


class TestProhibitions:
    def test_join_prohibition_stands_over_permission(self):
        result = integrate_plas(
            [
                pla("hospital", JoinPermission("m/res", "l/exams", True)),
                pla("municipality", JoinPermission("m/res", "l/exams", False)),
            ]
        )
        joins = [a for a in result.annotations if isinstance(a, JoinPermission)]
        assert len(joins) == 1 and not joins[0].allowed
        assert any(c.kind == "join_permission" for c in result.conflicts)
        assert "prohibition stands" in str(result.conflicts[0])

    def test_agreeing_permissions_clean(self):
        result = integrate_plas(
            [
                pla("a", JoinPermission("x/t", "y/u", True)),
                pla("b", JoinPermission("y/u", "x/t", True)),  # order-insensitive
            ]
        )
        assert result.clean

    def test_integration_permission_dispute(self):
        result = integrate_plas(
            [
                pla("hospital", IntegrationPermission("municipality", True)),
                pla("municipality", IntegrationPermission("municipality", False)),
            ]
        )
        perms = [
            a for a in result.annotations if isinstance(a, IntegrationPermission)
        ]
        assert len(perms) == 1 and not perms[0].allowed


class TestIntensional:
    def test_conditions_accumulate_and_dedupe(self):
        hiv = IntensionalCondition(
            "disease", parse_expression("disease != 'HIV'"), "suppress_row"
        )
        cancer = IntensionalCondition(
            "disease", parse_expression("disease != 'cancer'"), "suppress_row"
        )
        result = integrate_plas(
            [pla("hospital", hiv), pla("lab", hiv, cancer)]
        )
        conditions = [
            a for a in result.annotations if isinstance(a, IntensionalCondition)
        ]
        assert len(conditions) == 2
        assert result.clean


class TestMergedPla:
    def test_merged_pla_joint_ownership(self):
        result = integrate_plas(
            [
                pla("hospital", AggregationThreshold(5)),
                pla("municipality", AggregationThreshold(5)),
            ]
        )
        merged = result.merged_pla(name="joint", target="mr")
        assert merged.owner == "hospital+municipality"
        assert merged.target == "mr"

    def test_mismatched_targets_rejected(self):
        with pytest.raises(PolicyError):
            integrate_plas(
                [
                    pla("a", AggregationThreshold(5), target="mr_0"),
                    pla("b", AggregationThreshold(5), target="mr_1"),
                ]
            )

    def test_empty_input_rejected(self):
        with pytest.raises(PolicyError):
            integrate_plas([])

    def test_merged_pla_enforces_end_to_end(self, paper_catalog):
        """The integrated agreement drives the normal compliance pipeline."""
        from repro.core import ComplianceChecker, MetaReport, MetaReportSet, PlaRegistry
        from repro.relational import Query, parse_query
        from repro.reports import ReportDefinition

        result = integrate_plas(
            [
                pla("hospital", AggregationThreshold(2)),
                pla(
                    "municipality",
                    AggregationThreshold(3),
                    AttributeAccess("patient", frozenset({"director"})),
                ),
            ]
        )
        metareport = MetaReport(
            "mr",
            Query.from_("prescriptions").project("patient", "drug", "disease"),
        )
        registry = PlaRegistry()
        merged = result.merged_pla(name="joint", target="mr")
        registry.add(merged)
        metareport.attach_pla(registry.approve("joint"))
        metareports = MetaReportSet()
        metareports.add(metareport)
        metareports.register_views(paper_catalog)
        checker = ComplianceChecker(catalog=paper_catalog, metareports=metareports)
        verdict = checker.check_report(
            ReportDefinition(
                "r", "t",
                parse_query("SELECT patient, COUNT(*) AS n FROM mr GROUP BY patient"),
                frozenset({"analyst"}), "care",
            )
        )
        # The municipality's stricter audience rule survived the merge.
        assert not verdict.compliant
        assert any("may not see 'patient'" in str(v) for v in verdict.violations)