"""Tests for §5's 'meta-reports as test cases' harness."""

import pytest

from repro.errors import PolicyError
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntensionalCondition,
    MetaReport,
    PlaLevel,
    PlaRegistry,
    PlaTestHarness,
)
from repro.relational import Query, parse_expression


def approved_metareport(annotations) -> MetaReport:
    metareport = MetaReport(
        "mr", Query.from_("wide").project("patient", "drug", "disease")
    )
    registry = PlaRegistry()
    pla = PLA("p", "hospital", PlaLevel.METAREPORT, "mr", tuple(annotations))
    registry.add(pla)
    metareport.attach_pla(registry.approve("p"))
    return metareport


FULL_PLA = (
    AggregationThreshold(3),
    IntensionalCondition(
        "disease", parse_expression("disease != 'HIV'"), "suppress_row"
    ),
    AttributeAccess("patient", frozenset({"health_director"})),
    AnonymizationRequirement("patient", "pseudonymize"),
)


class TestFixtureSynthesis:
    def test_fixture_contains_edge_rows(self):
        metareport = approved_metareport(FULL_PLA)
        harness = PlaTestHarness()
        catalog, schema = harness.build_fixture(metareport, group_column="drug")
        base = catalog.table("fixture_base")
        diseases = set(base.column_values("disease"))
        assert "HIV" in diseases  # the violating side of the condition
        assert any(d != "HIV" for d in diseases)
        groups = base.column_values("drug")
        assert groups.count("drug_big") >= harness.fixture_group_size
        assert groups.count("drug_solo") == 1

    def test_fixture_registers_metareport_view(self):
        metareport = approved_metareport(FULL_PLA)
        catalog, _ = PlaTestHarness().build_fixture(metareport)
        assert "mr" in catalog and "wide" in catalog

    def test_pla_required(self):
        bare = MetaReport("mr", Query.from_("wide").project("a"))
        with pytest.raises(PolicyError):
            PlaTestHarness().build_fixture(bare)


class TestHarnessRun:
    def test_full_pla_all_cases_pass(self):
        harness = PlaTestHarness()
        results = harness.run(approved_metareport(FULL_PLA))
        assert len(results) == 4
        assert all(r.passed for r in results), [str(r) for r in results]
        assert "4/4" in harness.summary()

    def test_threshold_only(self):
        harness = PlaTestHarness()
        results = harness.run(approved_metareport((AggregationThreshold(2),)))
        assert [r.case for r in results] == ["threshold/undersized-group-suppressed"]
        assert results[0].passed

    def test_cell_level_intensional_case(self):
        harness = PlaTestHarness()
        results = harness.run(
            approved_metareport(
                (
                    IntensionalCondition(
                        "drug",
                        parse_expression("disease != 'HIV'"),
                        "suppress_cell",
                    ),
                )
            )
        )
        assert results and all(r.passed for r in results)

    def test_fully_restricted_pla_rejected(self):
        annotations = tuple(
            AttributeAccess(column, frozenset())
            for column in ("patient", "drug", "disease")
        )
        with pytest.raises(PolicyError):
            PlaTestHarness().run(approved_metareport(annotations))

    def test_scenario_metareports_pass_their_own_tests(self, scenario):
        """The deployed PLAs must survive their own pre-operation tests."""
        harness = PlaTestHarness(
            roles=("analyst", "auditor", "health_director", "municipality_official")
        )
        for metareport in scenario.metareports:
            results = harness.run(metareport)
            assert results, metareport.name
            failed = [str(r) for r in results if not r.passed]
            assert not failed, f"{metareport.name}: {failed}"
