"""Targeted tests for smaller utilities and less-traveled branches."""

import pytest

from repro.bench import format_table, print_series, print_table
from repro.core import ElicitationTool, MetaReport
from repro.core.translation import to_vpd_policy
from repro.policy import Decision, Obligation
from repro.provenance import DatasetNode, ProvenanceGraph, TransformNode
from repro.relational import Query, Table, make_schema
from repro.relational.types import ColumnType


class TestBenchTables:
    def test_format_basic(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 2, "b": None}], title="T"
        )
        assert "T" in text and "===" not in text.splitlines()[0]
        assert "-" in text  # NULL placeholder
        assert "a" in text and "b" in text

    def test_format_float_rounding(self):
        text = format_table([{"v": 1.23456}])
        assert "1.235" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_print_helpers(self, capsys):
        print_table([{"a": 1}], title="t")
        print_series("s", [(1, 2)], x="k", y="v")
        out = capsys.readouterr().out
        assert "t" in out and "k" in out and "v" in out


class TestPolicyBits:
    def test_decision_truthiness(self):
        assert Decision(True, "ok")
        assert not Decision(False, "no")

    def test_obligation_str(self):
        assert str(Obligation("notify")) == "notify"
        assert str(Obligation("delete", "after 30d")) == "delete(after 30d)"


class TestVpdProjectionBranches:
    def test_empty_role_attribute_access_becomes_mask(self):
        from repro.core import PLA, AttributeAccess, PlaLevel

        pla = PLA(
            "p", "o", PlaLevel.SOURCE, "t",
            (AttributeAccess("secret", frozenset()),),
        )
        policy = to_vpd_policy([pla])
        assert [m.column for m in policy.rules["t"].masks] == ["secret"]

    def test_roleful_attribute_access_not_masked(self):
        from repro.core import PLA, AttributeAccess, PlaLevel

        pla = PLA(
            "p", "o", PlaLevel.SOURCE, "t",
            (AttributeAccess("col", frozenset({"analyst"})),),
        )
        policy = to_vpd_policy([pla])
        assert policy.rules["t"].masks == ()


class TestProvenanceGraphBranches:
    def test_multi_path_transformations_deduped(self):
        graph = ProvenanceGraph()
        src = DatasetNode("s", "source", owner="o")
        mid_a = DatasetNode("a", "staging")
        mid_b = DatasetNode("b", "staging")
        out = DatasetNode("r", "report")
        split = TransformNode("split", "copy")
        graph.add_transform(split, [src], mid_a)
        graph.add_transform(TransformNode("split2", "copy"), [src], mid_b)
        graph.add_transform(TransformNode("merge", "union"), [mid_a], out)
        graph.add_transform(TransformNode("merge2", "union"), [mid_b], out)
        transforms = graph.transformations_between("s", "r")
        names = [t.name for t in transforms]
        assert len(names) == len(set(names)) == 4

    def test_explain_no_sources(self):
        graph = ProvenanceGraph()
        graph.add_dataset(DatasetNode("lonely", "report"))
        assert "no recorded sources" in graph.explain("lonely")


class TestElicitationToolProvenanceBranch:
    def test_present_with_graph_lists_sources(self, paper_catalog):
        graph = ProvenanceGraph()
        src = DatasetNode("prescriptions", "source", owner="hospital")
        wide = DatasetNode("nohiv", "metareport")
        graph.add_transform(TransformNode("view", "project"), [src], wide)
        tool = ElicitationTool(catalog=paper_catalog, provenance=graph)
        metareport = MetaReport(
            "nohiv_mr",
            Query.from_("nohiv").project("patient", "drug"),
        )
        text = tool.present(metareport)
        assert "nohiv_mr" in text and "patient" in text


class TestTableOddities:
    def test_head(self):
        schema = make_schema(("a", ColumnType.INT))
        t = Table.from_rows("t", schema, [(i,) for i in range(10)])
        assert t.head(3) == [{"a": 0}, {"a": 1}, {"a": 2}]

    def test_empty_pretty(self):
        schema = make_schema(("a", ColumnType.INT))
        t = Table("t", schema)
        assert "a" in t.pretty()

    def test_rename_identity(self):
        from repro.relational import rename

        schema = make_schema(("a", ColumnType.INT))
        t = Table.from_rows("t", schema, [(1,)])
        out = rename(t, {})
        assert out.schema.names == ("a",) and out.rows == t.rows


class TestRenderingNoSuppression:
    def test_footer_without_enforcement(self, paper_catalog):
        from repro.policy import SubjectRegistry
        from repro.relational import parse_query
        from repro.reports import ReportDefinition, ReportEngine, render_text

        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        engine = ReportEngine(paper_catalog)
        definition = ReportDefinition(
            "plain", "Plain",
            parse_query("SELECT patient FROM prescriptions"),
            frozenset({"analyst"}), "care",
        )
        text = render_text(engine.generate(definition, subjects.context("ann", "care")))
        assert "suppressed" not in text
        assert "privacy enforcement applied" not in text
        assert "5 row(s)" in text


class TestApiDocInSync:
    def test_api_md_matches_generator(self, tmp_path, monkeypatch):
        import importlib.util
        import pathlib
        import shutil

        root = pathlib.Path(__file__).parent.parent
        generator = root / "docs" / "generate_api.py"
        committed = (root / "docs" / "API.md").read_text()
        workdir = tmp_path / "docs"
        workdir.mkdir()
        shutil.copy(generator, workdir / "generate_api.py")
        spec = importlib.util.spec_from_file_location(
            "generate_api", workdir / "generate_api.py"
        )
        module = importlib.util.module_from_spec(spec)
        assert spec.loader is not None
        spec.loader.exec_module(module)
        module.main()
        regenerated = (workdir / "API.md").read_text()
        assert regenerated == committed, (
            "docs/API.md is stale; run python docs/generate_api.py"
        )


class TestOwnerAgentBounds:
    def test_confusion_probability_capped(self):
        from repro.core import ElicitationArtifact
        from repro.simulation import OwnerAgent

        artifact = ElicitationArtifact("source_table", "t", 1)
        # Even a hopeless owner approves eventually: probability ≤ 0.9.
        results = [
            OwnerAgent("h", expertise=0.0, confusion_scale=10.0, seed=s).review(artifact)
            for s in range(200)
        ]
        assert any(results)
