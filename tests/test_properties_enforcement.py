"""Property-based tests on enforcement-layer invariants.

* VPD soundness: rewritten results are a subset of the unrestricted results
  and every returned row satisfies the policy predicate;
* CSV round-trip: any table survives dump/load bit-exactly;
* gateway monotonicity: a gateway never *adds* rows, and pseudonymization
  is consistent across exports;
* threshold enforcement: after enforcement no delivered aggregate row has
  fewer contributors than the strictest threshold.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.policy import SubjectRegistry, VPDPolicy, VPDRule
from repro.relational import (
    Catalog,
    ColumnType,
    Table,
    dumps_csv,
    execute,
    loads_csv,
    make_schema,
    parse_query,
)
from repro.relational.expressions import Col, Comparison, Lit

SCHEMA = make_schema(
    ("patient", ColumnType.STRING),
    ("disease", ColumnType.STRING),
    ("cost", ColumnType.INT),
)

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["Alice", "Bob", "Chris", "Dana"]),
        st.sampled_from(["HIV", "asthma", "flu"]),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=30,
)

predicate_strategy = st.builds(
    lambda column, op, value: Comparison(op, Col(column), Lit(value)),
    st.sampled_from(["disease", "cost"]),
    st.sampled_from(["=", "!=", "<", ">="]),
    st.one_of(
        st.sampled_from(["HIV", "asthma"]),
        st.integers(min_value=0, max_value=100),
    ),
)


def _subjects() -> SubjectRegistry:
    reg = SubjectRegistry()
    reg.purposes.declare("care")
    reg.add_role("analyst")
    reg.add_user("ann", "analyst")
    return reg


class TestVpdSoundness:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(rows=rows_strategy, predicate=predicate_strategy)
    def test_rewritten_subset_and_predicate_holds(self, rows, predicate):
        catalog = Catalog()
        catalog.add_table(Table.from_rows("t", SCHEMA, rows, provider="p"))
        policy = VPDPolicy()
        policy.add_rule(VPDRule("t", predicate))
        context = _subjects().context("ann", "care")
        query = parse_query("SELECT patient, disease, cost FROM t")
        try:
            restricted = policy.run(query, catalog, context)
        except Exception:
            return  # type mismatch between predicate and column: not a case
        unrestricted = execute(query, catalog)
        restricted_set = list(restricted.rows)
        unrestricted_set = list(unrestricted.rows)
        for row in restricted_set:
            assert row in unrestricted_set
        names = restricted.schema.names
        for row in restricted_set:
            assert predicate.evaluate(dict(zip(names, row)))


class TestCsvRoundtripProperty:
    @given(rows=rows_strategy)
    def test_roundtrip_identity(self, rows):
        table = Table.from_rows("t", SCHEMA, rows, provider="p")
        back = loads_csv(dumps_csv(table), name="t", provider="p")
        assert back.rows == table.rows
        assert back.schema.names == table.schema.names

    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",), blacklist_characters="\r"
                    ),
                    max_size=20,
                ),
            ),
            max_size=15,
        )
    )
    def test_roundtrip_arbitrary_strings(self, values):
        schema = make_schema(("v", ColumnType.STRING))
        table = Table.from_rows("t", schema, [(v,) for v in values])
        back = loads_csv(dumps_csv(table), name="t")
        # Caveat: CSV cannot distinguish NULL from the empty string.
        expected = [(None if v in (None, "") else v,) for v in values]
        assert back.rows == expected


class TestThresholdProperty:
    @settings(
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
        max_examples=25,
    )
    @given(rows=rows_strategy, k=st.integers(min_value=1, max_value=6))
    def test_no_delivered_group_below_threshold(self, rows, k):
        from repro.core import (
            PLA,
            AggregationThreshold,
            ComplianceChecker,
            MetaReport,
            MetaReportSet,
            PlaLevel,
            PlaRegistry,
            ReportLevelEnforcer,
        )
        from repro.relational import Query, View
        from repro.reports import ReportDefinition

        catalog = Catalog()
        catalog.add_table(Table.from_rows("t", SCHEMA, rows, provider="p"))
        catalog.add_view(
            View("wide", Query.from_("t").project("patient", "disease", "cost"))
        )
        metareports = MetaReportSet()
        metareport = MetaReport(
            "mr", Query.from_("wide").project("patient", "disease", "cost")
        )
        registry = PlaRegistry()
        pla = PLA("p1", "o", PlaLevel.METAREPORT, "mr", (AggregationThreshold(k),))
        registry.add(pla)
        metareport.attach_pla(registry.approve("p1"))
        metareports.add(metareport)
        metareports.register_views(catalog)

        checker = ComplianceChecker(catalog=catalog, metareports=metareports)
        enforcer = ReportLevelEnforcer(catalog=catalog)
        report = ReportDefinition(
            "r", "t",
            parse_query("SELECT disease, COUNT(*) AS n FROM wide GROUP BY disease"),
            frozenset({"analyst"}), "care",
        )
        verdict = checker.check_report(report)
        assert verdict.compliant
        instance = enforcer.generate(
            report, _subjects().context("ann", "care"), verdict
        )
        for i in range(len(instance.table)):
            assert len(instance.table.lineage_of(i)) >= k
