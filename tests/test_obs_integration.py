"""Observability threaded through the pipeline: spans, levels, audit linkage.

Covers the end-to-end contract: disabled observability changes *nothing*
(results and audit log bytes identical to the pre-observability format),
enabled observability produces one trace per delivery whose ID lands in the
disclosure record, and enforcement decisions are counted at all four of the
paper's pipeline levels (source, warehouse, meta-report, report).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.audit import AuditLog
from repro.cli import ROLE_TO_USER
from repro.errors import ComplianceError
from repro.etl import DedupeOp, EtlFlow, EtlPlaRegistry, ExtractOp, OperationRestriction
from repro.obs import instrument
from repro.policy import SubjectRegistry
from repro.relational import parse_query
from repro.relational.execconfig import ExecutionConfig
from repro.reports.delivery import DeliveryService
from repro.sources import CellPolicy, ConsentRegistry, DataProvider, ProviderKind, SourceGateway
from repro.warehouse import PrivacyMetadataRegistry, TableAnnotation, WarehouseEnforcer

REPORT = "rpt_001"


@pytest.fixture()
def clean_obs():
    """Disabled, empty global obs state; restored afterwards."""
    previous = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    obs.TRACER.enabled = previous
    obs.reset()


def fresh_service(scenario) -> DeliveryService:
    """A delivery service with its own audit log (session fixture stays clean)."""
    return DeliveryService(
        reports=scenario.report_catalog,
        checker=scenario.checker,
        enforcer=scenario.enforcer,
        subjects=scenario.subjects,
        audit_log=AuditLog(),
    )


def deliver_one(scenario, service: DeliveryService, report: str = REPORT):
    definition = scenario.report_catalog.current(report)
    role = sorted(definition.audience)[0]
    return service.deliver(
        report, user=ROLE_TO_USER[role], purpose=definition.purpose
    )


class TestDisabledIsInvisible:
    def test_results_identical_enabled_vs_disabled(self, scenario, clean_obs):
        off = deliver_one(scenario, fresh_service(scenario))
        obs.enable()
        on = deliver_one(scenario, fresh_service(scenario))
        obs.disable()
        assert on.table.rows == off.table.rows
        assert on.table.schema.names == off.table.schema.names
        assert on.suppressed_rows == off.suppressed_rows
        assert on.obligations_applied == off.obligations_applied

    def test_disabled_audit_record_is_pre_obs_format(self, scenario, clean_obs):
        service = fresh_service(scenario)
        deliver_one(scenario, service)
        record = service.audit_log.last()
        assert record.trace_id == ""
        # The canonical payload must not grow a field when obs is off —
        # 12 fields / 11 separators, exactly the pre-observability bytes.
        assert record.payload().count("|") == 11
        assert service.audit_log.verify_chain()

    def test_disabled_records_no_spans_or_metrics(self, scenario, clean_obs):
        deliver_one(scenario, fresh_service(scenario))
        assert list(obs.TRACER.finished) == []
        assert instrument.DELIVERIES.samples() == []
        assert instrument.QUERIES.samples() == []


class TestTraceAuditLinkage:
    def test_audit_record_carries_delivery_trace_id(self, scenario, clean_obs):
        obs.enable()
        service = fresh_service(scenario)
        deliver_one(scenario, service)
        obs.disable()
        record = service.audit_log.last()
        roots = [s for s in obs.TRACER.finished if s.name == "report.deliver"]
        assert len(roots) == 1
        assert record.trace_id == roots[0].trace_id
        assert record.trace_id in record.payload()
        assert service.audit_log.verify_chain()

    def test_delivery_trace_is_one_tree(self, scenario, clean_obs):
        obs.enable()
        service = fresh_service(scenario)
        deliver_one(scenario, service)
        obs.disable()
        (trace_id,) = obs.TRACER.trace_ids()
        spans = obs.TRACER.spans(trace_id)
        names = {s.name for s in spans}
        assert {"report.deliver", "compliance.check", "report.enforce",
                "query.execute"} <= names
        (root,) = [s for s in spans if s.parent_id is None]
        assert root.name == "report.deliver"
        assert root.tags["outcome"] == "delivered"
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id  # no orphans

    def test_audit_table_exposes_trace_id_column(self, scenario, clean_obs):
        obs.enable()
        service = fresh_service(scenario)
        deliver_one(scenario, service)
        obs.disable()
        table = service.audit_log.as_table()
        assert "trace_id" in table.schema.names
        value = table.row_dict(0)["trace_id"]
        assert value == service.audit_log.last().trace_id

    def test_config_observe_forces_tracing_without_global_enable(
        self, paper_catalog, clean_obs
    ):
        assert not obs.enabled()
        query = parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug")
        from repro.relational.engine import execute

        execute(query, paper_catalog, config=ExecutionConfig(observe=True))
        names = [s.name for s in obs.TRACER.finished]
        assert "query.execute" in names
        assert not obs.enabled()  # global state untouched

    def test_config_observe_false_suppresses_even_when_enabled(
        self, paper_catalog, clean_obs
    ):
        obs.enable()
        query = parse_query("SELECT drug FROM prescriptions")
        from repro.relational.engine import execute

        execute(query, paper_catalog, config=ExecutionConfig(observe=False))
        obs.disable()
        assert [s.name for s in obs.TRACER.finished] == []


class TestFourLevels:
    """Enforcement decisions are labeled with the paper's pipeline levels."""

    def _levels(self):
        return {labels[0] for labels, _ in instrument.DECISIONS.samples()}

    def test_source_level(self, prescriptions, policies, clean_obs):
        provider = DataProvider("hospital", ProviderKind.HOSPITAL)
        provider.add_table(prescriptions)
        provider.consents = ConsentRegistry.from_policies_table(policies)
        subjects = SubjectRegistry()
        subjects.purposes.declare("care/quality")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        gateway = SourceGateway(provider)
        gateway.add_cell_policy(CellPolicy("disease", "show_disease", action="suppress"))

        obs.enable()
        gateway.export_table("prescriptions", subjects.context("ann", "care/quality"))
        obs.disable()

        assert self._levels() == {instrument.LEVEL_SOURCE}
        samples = dict(instrument.DECISIONS.samples())
        assert samples[("source", "anonymize", "cell_policy.suppress")] >= 1
        assert any(s.name == "source.export" for s in obs.TRACER.finished)

    def test_warehouse_level(self, paper_catalog, clean_obs):
        metadata = PrivacyMetadataRegistry()
        metadata.annotate_table(
            TableAnnotation("prescriptions", min_aggregation=2)
        )
        subjects = SubjectRegistry()
        subjects.purposes.declare("care/quality")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        enforcer = WarehouseEnforcer(catalog=paper_catalog, metadata=metadata)

        obs.enable()
        enforcer.run(
            parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"),
            subjects.context("ann", "care/quality"),
        )
        obs.disable()

        assert instrument.LEVEL_WAREHOUSE in self._levels()
        assert any(s.name == "warehouse.enforce" for s in obs.TRACER.finished)

    def test_metareport_and_report_levels(self, scenario, clean_obs):
        obs.enable()
        deliver_one(scenario, fresh_service(scenario))
        obs.disable()
        levels = self._levels()
        assert instrument.LEVEL_METAREPORT in levels
        assert instrument.LEVEL_REPORT in levels
        samples = dict(instrument.DECISIONS.samples())
        # The meta-report allow names the covering meta-report.
        metareport_allows = [
            labels for labels in samples
            if labels[0] == "meta-report" and labels[1] == "allow"
        ]
        assert metareport_allows and all(l[2].startswith("mr_") for l in metareport_allows)

    def test_refused_delivery_counts_and_tags(self, scenario, clean_obs):
        service = fresh_service(scenario)
        noncompliant = [
            d.name
            for d in scenario.report_catalog.all_current()
            if not scenario.checker.check_report(d).compliant
        ]
        if not noncompliant:
            pytest.skip("scenario has no non-compliant report")
        obs.enable()
        with pytest.raises(ComplianceError):
            deliver_one(scenario, service, noncompliant[0])
        obs.disable()
        assert instrument.DELIVERIES.value(("refused",)) == 1
        (root,) = [s for s in obs.TRACER.finished if s.name == "report.deliver"]
        assert root.tags["outcome"] == "refused"

    def test_etl_level(self, prescriptions, clean_obs):
        flow = EtlFlow("tiny")
        flow.add(ExtractOp("x", prescriptions, "staged"))
        flow.add(DedupeOp("dedup", "staged", "deduped"))
        pla = EtlPlaRegistry()
        pla.add(
            OperationRestriction(
                "no-dedup", "hospital", "hospital/prescriptions",
                frozenset({"dedupe"}),
            )
        )
        obs.enable()
        result = flow.run(pla=pla)
        obs.disable()
        assert result.skipped == ["dedup"]
        samples = dict(instrument.DECISIONS.samples())
        assert samples[("warehouse", "deny_op", "etl_pla")] == 1
        assert instrument.ETL_OPS.value(("executed",)) == 1
        assert instrument.ETL_OPS.value(("skipped",)) == 1
        names = [s.name for s in obs.TRACER.finished]
        assert names.count("etl.op") == 1  # only the executed op gets a span
        assert "etl.flow" in names

    def test_cache_metrics_hit_and_miss(self, scenario, clean_obs):
        obs.enable()
        service = fresh_service(scenario)
        deliver_one(scenario, service)
        deliver_one(scenario, service)  # second pass hits warm caches
        obs.disable()
        samples = dict(instrument.CACHE_LOOKUPS.samples())
        caches = {labels[0] for labels in samples}
        assert "verdict" in caches
        assert samples.get(("verdict", "hit"), 0) >= 1
