"""Unit tests for subjects, P-RBAC, VPD rewriting, and intensional metadata."""

import pytest

from repro.errors import PolicyError, QueryError
from repro.policy import (
    AccessContext,
    ColumnMask,
    IntensionalAssociation,
    MetadataStore,
    PRBACPolicy,
    PurposeTree,
    SubjectRegistry,
    VPDPolicy,
    VPDRule,
)
from repro.relational import Query, View, parse_expression, parse_query


@pytest.fixture
def subjects():
    reg = SubjectRegistry()
    for purpose in ("care", "care/quality", "admin/reimbursement"):
        reg.purposes.declare(purpose)
    reg.add_role("analyst")
    reg.add_role("director")
    reg.add_user("ann", "analyst")
    reg.add_user("dora", "director", "analyst")
    return reg


class TestSubjects:
    def test_purpose_tree_containment(self, subjects):
        assert subjects.purposes.allows("care", "care/quality")
        assert not subjects.purposes.allows("care/quality", "care")
        assert not subjects.purposes.allows("admin/reimbursement", "care")

    def test_declare_creates_ancestors(self):
        tree = PurposeTree()
        tree.declare("a/b/c")
        assert "a" in tree and "a/b" in tree

    def test_undeclared_purpose_raises(self, subjects):
        with pytest.raises(PolicyError):
            subjects.purposes.get("nonexistent")

    def test_user_roles(self, subjects):
        assert subjects.user("dora").has_role("director")
        assert not subjects.user("ann").has_role("director")

    def test_user_with_undeclared_role_rejected(self, subjects):
        with pytest.raises(PolicyError):
            subjects.add_user("eve", "hacker")

    def test_context_describe(self, subjects):
        ctx = subjects.context("ann", "care/quality")
        assert "ann" in ctx.describe() and "care/quality" in ctx.describe()


class TestPRBAC:
    def test_grant_and_check(self, subjects):
        policy = PRBACPolicy(subjects.purposes)
        policy.grant("analyst", "prescriptions", ["drug", "cost"], purpose="care")
        ctx = subjects.context("ann", "care/quality")
        assert policy.check(ctx, "prescriptions", ["drug"])
        assert policy.check(ctx, "prescriptions", ["drug", "cost"])

    def test_denied_outside_columns(self, subjects):
        policy = PRBACPolicy(subjects.purposes)
        policy.grant("analyst", "prescriptions", ["drug"], purpose="care")
        ctx = subjects.context("ann", "care")
        assert not policy.check(ctx, "prescriptions", ["patient"])

    def test_denied_wrong_purpose(self, subjects):
        policy = PRBACPolicy(subjects.purposes)
        policy.grant("analyst", "prescriptions", purpose="care/quality")
        ctx = subjects.context("ann", "admin/reimbursement")
        assert not policy.check(ctx, "prescriptions", ["drug"])

    def test_context_condition(self, subjects):
        policy = PRBACPolicy(subjects.purposes)
        policy.grant(
            "analyst",
            "prescriptions",
            purpose="care",
            context_condition={"location": "on_site"},
        )
        ctx = subjects.context("ann", "care")
        assert not policy.check(ctx, "prescriptions", ["drug"])
        assert policy.check(
            ctx, "prescriptions", ["drug"], context_attrs={"location": "on_site"}
        )

    def test_undeclared_purpose_rejected(self, subjects):
        policy = PRBACPolicy(subjects.purposes)
        with pytest.raises(PolicyError):
            policy.grant("analyst", "t", purpose="never/declared")

    def test_expressiveness_classification(self):
        assert PRBACPolicy.can_express("attribute_access") == "testable"
        assert PRBACPolicy.can_express("integration_permission") == "approximate"
        for kind in ("aggregation_threshold", "join_permission", "intensional_condition", "anonymization"):
            assert PRBACPolicy.can_express(kind) == "inexpressible"


class TestVPD:
    def _context(self, subjects, user="ann"):
        return subjects.context(user, "care")

    def test_row_predicate_injected(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(
            VPDRule("prescriptions", parse_expression("disease != 'HIV'"))
        )
        out = policy.run(
            parse_query("SELECT patient FROM prescriptions"),
            paper_catalog,
            self._context(subjects),
        )
        assert sorted(r[0] for r in out.rows) == ["Alice", "Bob", "Math"]

    def test_predicate_applies_through_views(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(
            VPDRule("prescriptions", parse_expression("patient != 'Alice'"))
        )
        out = policy.run(
            parse_query("SELECT patient FROM nohiv"),
            paper_catalog,
            self._context(subjects),
        )
        assert sorted(r[0] for r in out.rows) == ["Bob", "Math"]

    def test_context_dependent_predicate(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(
            VPDRule(
                "prescriptions",
                lambda ctx: None
                if ctx.user.has_role("director")
                else parse_expression("disease != 'HIV'"),
            )
        )
        analyst_rows = policy.run(
            parse_query("SELECT patient FROM prescriptions"),
            paper_catalog,
            self._context(subjects, "ann"),
        )
        director_rows = policy.run(
            parse_query("SELECT patient FROM prescriptions"),
            paper_catalog,
            self._context(subjects, "dora"),
        )
        assert len(analyst_rows) == 3 and len(director_rows) == 5

    def test_exempt_roles_skip_rule(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(
            VPDRule(
                "prescriptions",
                parse_expression("disease != 'HIV'"),
                exempt_roles=frozenset({"director"}),
            )
        )
        out = policy.run(
            parse_query("SELECT patient FROM prescriptions"),
            paper_catalog,
            self._context(subjects, "dora"),
        )
        assert len(out) == 5

    def test_column_mask_on_explicit_select(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(
            VPDRule("prescriptions", masks=(ColumnMask("patient", "***"),))
        )
        out = policy.run(
            parse_query("SELECT patient, drug FROM prescriptions"),
            paper_catalog,
            self._context(subjects),
        )
        assert all(r[0] == "***" for r in out.rows)

    def test_column_mask_on_select_star(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(VPDRule("prescriptions", masks=(ColumnMask("patient"),)))
        out = policy.run(
            parse_query("SELECT * FROM prescriptions"),
            paper_catalog,
            self._context(subjects),
        )
        assert all(r[0] is None for r in out.rows)
        assert out.schema.names[0] == "patient"

    def test_aggregate_over_masked_column_rejected(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(VPDRule("prescriptions", masks=(ColumnMask("patient"),)))
        with pytest.raises(QueryError):
            policy.run(
                parse_query(
                    "SELECT patient, COUNT(*) AS n FROM prescriptions GROUP BY patient"
                ),
                paper_catalog,
                self._context(subjects),
            )

    def test_left_join_protected_side_rejected(self, subjects, paper_catalog):
        policy = VPDPolicy()
        policy.add_rule(VPDRule("drugcost", parse_expression("cost < 100")))
        q = Query.from_("prescriptions").join(
            "drugcost", [("drug", "drug")], how="left"
        )
        with pytest.raises(QueryError):
            policy.run(q, paper_catalog, self._context(subjects))

    def test_duplicate_rule_rejected(self):
        policy = VPDPolicy()
        policy.add_rule(VPDRule("t"))
        with pytest.raises(PolicyError):
            policy.add_rule(VPDRule("t"))


class TestIntensional:
    def test_association_covers_new_rows_automatically(self, prescriptions):
        store = MetadataStore()
        store.add(
            IntensionalAssociation(
                "hiv-restriction",
                "prescriptions",
                parse_expression("disease = 'HIV'"),
                {"deny_row": True},
            )
        )
        before = len(
            store.associations[0].matching_rows(prescriptions)
        )
        prescriptions.insert(("New", "Luis", "DH", "HIV", "2008-01-01"))
        after = len(store.associations[0].matching_rows(prescriptions))
        assert (before, after) == (2, 3)  # the paper's key property

    def test_metadata_for_row_merges(self):
        store = MetadataStore()
        store.add(
            IntensionalAssociation(
                "a", "t", parse_expression("x > 0"), {"k1": 1}
            )
        )
        store.add(
            IntensionalAssociation(
                "b", "t", parse_expression("x > 10"), {"k1": 2, "k2": 3}
            )
        )
        assert store.metadata_for_row("t", {"x": 5}) == {"k1": 1}
        assert store.metadata_for_row("t", {"x": 20}) == {"k1": 2, "k2": 3}
        assert store.metadata_for_row("t", {"x": -1}) == {}

    def test_duplicate_name_rejected(self):
        store = MetadataStore()
        assoc = IntensionalAssociation("a", "t", parse_expression("x > 0"), {})
        store.add(assoc)
        with pytest.raises(PolicyError):
            store.add(assoc)

    def test_wrong_table_raises(self, prescriptions):
        assoc = IntensionalAssociation(
            "a", "other", parse_expression("disease = 'HIV'"), {}
        )
        with pytest.raises(PolicyError):
            assoc.matching_rows(prescriptions)

    def test_covered_row_ids(self, paper_catalog):
        store = MetadataStore()
        store.add(
            IntensionalAssociation(
                "hiv", "prescriptions", parse_expression("disease = 'HIV'"), {}
            )
        )
        covered = store.covered_row_ids(paper_catalog)
        assert len(covered["hiv"]) == 2
