"""Tests for scenario configuration variants, including the §3 trust postures."""

import pytest

from repro.simulation import ScenarioConfig, build_scenario
from repro.sources import TrustPosture
from repro.workloads import HealthcareConfig


@pytest.fixture(scope="module")
def enforced_scenario():
    return build_scenario(ScenarioConfig(source_enforces=True))


class TestSourceEnforcesPosture:
    def test_posture_recorded(self, enforced_scenario):
        assert (
            enforced_scenario.providers["hospital"].posture
            is TrustPosture.SOURCE_ENFORCES
        )

    def test_no_hiv_rows_reach_the_warehouse(self, enforced_scenario):
        wide = enforced_scenario.bi_catalog.table("dwh_prescriptions")
        assert "HIV" not in wide.column_values("disease")

    def test_unconsenting_names_pseudonymized_before_bi(self, enforced_scenario):
        wide = enforced_scenario.bi_catalog.table("dwh_prescriptions")
        consents = enforced_scenario.providers["hospital"].consents
        raw_patients = set(enforced_scenario.data.patients)
        for value in wide.distinct_values("patient"):
            if value in raw_patients:
                assert consents.for_patient(value).show_name

    def test_integration_degrades_measurably(self, enforced_scenario):
        """Pseudonymized patients cannot be joined with the municipality
        registry — the §3 cost of source-side anonymization."""
        wide = enforced_scenario.bi_catalog.table("dwh_prescriptions")
        null_zip = sum(1 for v in wide.column_values("zip") if v is None)
        assert null_zip > 0
        # Exactly the pseudonymized rows lack demographics:
        anon_rows = sum(
            1
            for row in wide.iter_dicts()
            if str(row["patient"]).startswith("anon-")
        )
        assert null_zip == anon_rows

    def test_gateway_intake_ledger_populated(self, enforced_scenario):
        records = enforced_scenario.staging.intake
        assert records and records[0].gateway_report is not None
        assert records[0].gateway_report.cells_pseudonymized > 0

    def test_workload_still_checkable(self, enforced_scenario):
        verdicts = enforced_scenario.checker.check_catalog(
            enforced_scenario.report_catalog.all_current()
        )
        assert any(v.compliant for v in verdicts.values())


class TestConfigVariants:
    def test_small_scenario_builds(self):
        scenario = build_scenario(
            ScenarioConfig(
                healthcare=HealthcareConfig(
                    n_patients=40, n_prescriptions=150, n_exams=50, seed=2
                ),
                n_reports=10,
                max_metareports=2,
                seed=3,
            )
        )
        assert len(scenario.workload) == 10
        assert len(scenario.metareports) <= 2
        assert scenario.flow_result.clean

    def test_threshold_config_propagates(self):
        scenario = build_scenario(ScenarioConfig(aggregation_threshold=9))
        from repro.core import AggregationThreshold

        for metareport in scenario.metareports:
            assert metareport.pla is not None
            thresholds = [
                a
                for a in metareport.pla.annotations
                if isinstance(a, AggregationThreshold)
            ]
            assert thresholds and thresholds[0].min_group_size == 9

    def test_deterministic_build(self):
        a = build_scenario(ScenarioConfig(seed=5))
        b = build_scenario(ScenarioConfig(seed=5))
        assert [r.name for r in a.workload] == [r.name for r in b.workload]
        assert a.bi_catalog.table("dwh_prescriptions").rows == b.bi_catalog.table(
            "dwh_prescriptions"
        ).rows
