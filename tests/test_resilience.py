"""repro.resilience: faults, retry, breakers, and fail-closed delivery.

Three layers of coverage:

* unit semantics — backoff schedules, deadline propagation, the breaker
  state machine (with an injectable clock, so no real waiting), and the
  injector's determinism/replay contract;
* integration — ETL flows and the delivery service under scripted
  outages: faults are recorded, downstream operators cascade into
  ``skipped``, refusal/degradation is fail-closed and audited;
* the chaos property — for *any* hypothesis-generated fault plan, a
  delivery either raises a typed availability/compliance error or yields
  rows that are a sub-multiset of the fault-free delivery's, and replaying
  the same plan reproduces the same outcome exactly.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit.log import AuditLog
from repro.errors import (
    CircuitOpenError,
    ComplianceError,
    DeadlineExceededError,
    FaultError,
    ReportNotFoundError,
    RetryExhaustedError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.reports.delivery import DeliveryService
from repro.resilience import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    Deadline,
    DeliveryResilience,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
    named_plan,
    run_chaos,
)
from repro.resilience import runtime as resilience_runtime

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


class FakeClock:
    """A manually advanced monotonic clock for breaker/deadline tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _policy(
    plan: FaultPlan,
    *,
    retry: RetryPolicy | None = None,
    breaker: BreakerConfig | None = None,
) -> ResiliencePolicy:
    """A fully deterministic policy: no real sleeping anywhere."""
    return ResiliencePolicy(
        injector=FaultInjector(plan, sleep=lambda _s: None),
        retry=retry if retry is not None else RetryPolicy(),
        breakers=BreakerRegistry(breaker if breaker is not None else BreakerConfig()),
        sleep=lambda _s: None,
    )


def _service(scenario, resilience: DeliveryResilience | None) -> DeliveryService:
    return DeliveryService(
        reports=scenario.report_catalog,
        checker=scenario.checker,
        enforcer=scenario.enforcer,
        subjects=scenario.subjects,
        audit_log=AuditLog(),
        resilience=resilience,
    )


def _deliver(service: DeliveryService, scenario, name: str):
    definition = scenario.report_catalog.current(name)
    role = sorted(definition.audience)[0]
    return service.deliver(
        name, user=ROLE_TO_USER[role], purpose=definition.purpose
    )


@pytest.fixture(scope="module")
def compliant_reports(scenario):
    """The first three compliant report names — the property-test workload."""
    names = []
    for definition in scenario.report_catalog.all_current():
        if scenario.checker.check_report(definition).compliant:
            names.append(definition.name)
        if len(names) == 3:
            break
    assert len(names) == 3
    return names


@pytest.fixture(scope="module")
def baseline_rows(scenario, compliant_reports):
    """Fault-free delivered rows per report, as multisets."""
    service = _service(scenario, None)
    return {
        name: Counter(_deliver(service, scenario, name).table.rows)
        for name in compliant_reports
    }


# ---------------------------------------------------------------------------
# Backoff schedules
# ---------------------------------------------------------------------------


class TestBackoffSchedule:
    def test_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert backoff_schedule(policy, seed="a") == backoff_schedule(policy, seed="a")
        assert backoff_schedule(policy, seed="a") != backoff_schedule(policy, seed="b")

    def test_length_is_attempts_minus_one(self):
        assert len(backoff_schedule(RetryPolicy(max_attempts=4))) == 3
        assert backoff_schedule(RetryPolicy(max_attempts=1)) == ()

    def test_no_jitter_is_exact_exponential_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, max_delay_s=0.04,
            multiplier=2.0, jitter=0.0,
        )
        assert backoff_schedule(policy) == (0.01, 0.02, 0.04, 0.04)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01, max_delay_s=10.0,
            multiplier=2.0, jitter=0.5,
        )
        for i, delay in enumerate(backoff_schedule(policy, seed="x")):
            nominal = 0.01 * 2.0**i
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


# ---------------------------------------------------------------------------
# Retry loop
# ---------------------------------------------------------------------------


class TestCallWithRetry:
    def test_first_try_success_calls_once(self):
        calls = []
        result = call_with_retry(lambda: calls.append(1) or "ok", sleep=lambda _s: None)
        assert result == "ok" and len(calls) == 1

    def test_recovers_and_sleeps_the_scheduled_backoff(self):
        policy = RetryPolicy(max_attempts=4)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientSourceError("blip")
            return "ok"

        slept: list[float] = []
        result = call_with_retry(
            flaky, policy, target="src", sleep=slept.append
        )
        assert result == "ok" and attempts["n"] == 3
        assert slept == list(backoff_schedule(policy, seed="src")[:2])

    def test_non_retryable_propagates_immediately(self):
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise SourceUnavailableError("hard down")

        with pytest.raises(SourceUnavailableError):
            call_with_retry(broken, sleep=lambda _s: None)
        assert attempts["n"] == 1  # outages are terminal, not retried

    def test_exhaustion_escalates_with_cause_chained(self):
        def always():
            raise SourceTimeoutError("slow forever")

        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(
                always, RetryPolicy(max_attempts=3), target="s", sleep=lambda _s: None
            )
        assert isinstance(info.value.__cause__, SourceTimeoutError)
        assert isinstance(info.value, SourceUnavailableError)  # fail-closed family

    def test_deadline_expiry_stops_retrying(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def failing():
            clock.advance(0.6)
            raise TransientSourceError("blip")

        with pytest.raises(DeadlineExceededError):
            call_with_retry(
                failing, RetryPolicy(max_attempts=10), deadline=deadline,
                sleep=lambda _s: None,
            )

    def test_sleep_capped_to_remaining_budget(self):
        clock = FakeClock()
        deadline = Deadline(0.004, clock=clock)
        policy = RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.0,
                             max_delay_s=2.0)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise TransientSourceError("blip")
            return "ok"

        slept: list[float] = []
        assert call_with_retry(flaky, policy, deadline=deadline, sleep=slept.append) == "ok"
        assert slept and slept[0] <= 0.004  # capped, not the nominal 1s


class TestDeadline:
    def test_remaining_and_check(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("the flow")

    def test_non_positive_budget_rejected(self):
        with pytest.raises(DeadlineExceededError):
            Deadline(0.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = FakeClock()
        config = BreakerConfig(
            failure_threshold=kw.pop("failure_threshold", 3),
            cooldown_s=kw.pop("cooldown_s", 10.0),
            half_open_max_calls=kw.pop("half_open_max_calls", 1),
        )
        return CircuitBreaker("src", config, clock=clock), clock

    def test_opens_at_failure_threshold(self):
        breaker, _clock = self._breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_open_rejects_without_calling(self):
        breaker, _clock = self._breaker(failure_threshold=1)
        breaker.record_failure()
        calls = []
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: calls.append(1))
        assert not calls  # the source was never contacted

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        with pytest.raises(TransientSourceError):
            breaker.call(self._raise_transient)
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self._breaker(
            failure_threshold=1, cooldown_s=1.0, half_open_max_calls=1
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow() is True  # the probe slot
        assert breaker.allow() is False  # no second concurrent probe

    def test_success_resets_consecutive_failures(self):
        breaker, _clock = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak was broken

    def test_non_fault_errors_do_not_trip_the_breaker(self):
        breaker, _clock = self._breaker(failure_threshold=1)
        with pytest.raises(ValueError):
            breaker.call(self._raise_value_error)
        assert breaker.state is BreakerState.CLOSED

    def test_registry_get_or_create(self):
        registry = BreakerRegistry()
        assert registry.get("a") is registry.get("a")
        assert registry.get("a") is not registry.get("b")
        assert len(registry) == 2
        registry.get("a").record_failure()
        assert registry.states() == {"a": "closed", "b": "closed"}

    @staticmethod
    def _raise_transient():
        raise TransientSourceError("probe failed")

    @staticmethod
    def _raise_value_error():
        raise ValueError("a genuine bug, not a source failure")


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def _sequence(self, injector: FaultInjector, target: str, n: int) -> list[str]:
        out = []
        for _ in range(n):
            try:
                injector.guard(target)
                out.append("ok")
            except FaultError as exc:
                out.append(type(exc).__name__)
        return out

    def test_replay_is_identical_after_reset(self):
        plan = FaultPlan(
            "p", seed=7,
            specs=(FaultSpec(target="*", kind="transient", rate=0.4),),
        )
        injector = FaultInjector(plan, sleep=lambda _s: None)
        first = self._sequence(injector, "x/y", 50)
        injector.reset()
        assert self._sequence(injector, "x/y", 50) == first
        assert "TransientSourceError" in first  # the plan actually fired

    def test_fresh_injector_same_plan_same_outcomes(self):
        plan = FaultPlan(
            "p", seed=3,
            specs=(FaultSpec(target="*", kind="timeout", rate=0.5),),
        )
        a = FaultInjector(plan, sleep=lambda _s: None)
        b = FaultInjector(plan, sleep=lambda _s: None)
        assert self._sequence(a, "t", 40) == self._sequence(b, "t", 40)

    def test_different_seed_changes_outcomes(self):
        spec = FaultSpec(target="*", kind="transient", rate=0.5)
        a = FaultInjector(FaultPlan("p", seed=1, specs=(spec,)))
        b = FaultInjector(FaultPlan("p", seed=2, specs=(spec,)))
        assert self._sequence(a, "t", 60) != self._sequence(b, "t", 60)

    def test_explicit_call_indices(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="s", kind="transient", calls=(1, 3)),)
        )
        injector = FaultInjector(plan)
        assert self._sequence(injector, "s", 5) == [
            "ok", "TransientSourceError", "ok", "TransientSourceError", "ok",
        ]

    def test_permanent_outage_after(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="s", kind="outage", after=2),)
        )
        injector = FaultInjector(plan)
        assert self._sequence(injector, "s", 4) == [
            "ok", "ok", "SourceUnavailableError", "SourceUnavailableError",
        ]

    def test_glob_targets_and_isolation(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="hospital/*", kind="outage", after=0),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(SourceUnavailableError):
            injector.guard("hospital/prescriptions")
        injector.guard("municipality/residents")  # unaffected

    def test_slow_fault_times_out_against_a_tight_deadline(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="s", kind="slow", after=0, delay_s=5.0),)
        )
        slept: list[float] = []
        injector = FaultInjector(plan, sleep=slept.append)
        clock = FakeClock()
        with pytest.raises(SourceTimeoutError):
            injector.guard("s", deadline=Deadline(0.1, clock=clock))
        assert not slept  # no point sleeping past the deadline
        injector.reset()
        injector.guard("s")  # no deadline: latency is injected instead
        assert slept == [5.0]

    def test_stats_and_counts(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="s", kind="transient", calls=(0,)),)
        )
        injector = FaultInjector(plan)
        self._sequence(injector, "s", 3)
        assert injector.calls("s") == 3
        assert injector.total_calls() == 3
        assert injector.stats() == {"s|transient": 1}

    def test_spec_that_can_never_fire_is_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(target="s", kind="transient")

    def test_plan_round_trips_through_dict(self):
        plan = named_plan("brownout")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_plan_name(self):
        with pytest.raises(FaultError):
            named_plan("no-such-plan")


# ---------------------------------------------------------------------------
# Composed policy + ETL flow behavior
# ---------------------------------------------------------------------------


class TestResiliencePolicy:
    def test_retry_absorbs_then_breaker_counts_escalations(self):
        plan = FaultPlan(
            "p", specs=(FaultSpec(target="s", kind="outage", after=0),)
        )
        policy = _policy(plan, breaker=BreakerConfig(failure_threshold=2))
        for _ in range(2):
            with pytest.raises(SourceUnavailableError):
                policy.call("s", lambda: "never")
        # Threshold reached: now rejected by the breaker without the
        # injector (or retries) ever running.
        before = policy.injector.total_calls()
        with pytest.raises(CircuitOpenError):
            policy.call("s", lambda: "never")
        assert policy.injector.total_calls() == before

    def test_etl_flow_records_fault_and_cascades(self, scenario):
        policy = _policy(named_plan("blackout"))
        result = scenario.flow.run(resilience=policy)
        assert result.degraded and not result.clean
        (fault,) = [f for f in result.faults]
        assert fault.target == "hospital/prescriptions"
        assert fault.kind == "SourceUnavailableError"
        assert result.skipped  # everything downstream of the extract
        assert "faults 1" in result.summary()

    def test_etl_flow_strict_raises_on_fault(self, scenario):
        policy = _policy(named_plan("blackout"))
        with pytest.raises(SourceUnavailableError):
            scenario.flow.run(resilience=policy, strict=True)

    def test_etl_flow_retry_absorbs_smoke_plan(self, scenario):
        policy = _policy(named_plan("smoke"))
        result = scenario.flow.run(resilience=policy)
        assert result.clean  # transients at 3% never survive 4 attempts here

    def test_etl_flow_deadline_expiry_fails_closed(self, scenario):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            scenario.flow.run(deadline=deadline, strict=True)

    def test_env_default_policy(self, monkeypatch):
        # The suite itself may be running under REPRO_FAULTS (the CI smoke
        # leg installs an injector at import); save and restore it.
        previous = resilience_runtime.active_injector()
        try:
            resilience_runtime.uninstall()
            assert resilience_runtime.default_policy() is None
            monkeypatch.setenv("REPRO_FAULTS", "smoke")
            resilience_runtime._init_from_env()
            injector = resilience_runtime.active_injector()
            assert injector is not None and injector.plan.name == "smoke"
            assert resilience_runtime.default_policy() is not None
            assert resilience_runtime.default_delivery_resilience().mode == "refuse"
            resilience_runtime.uninstall()
            assert resilience_runtime.default_policy() is None
        finally:
            resilience_runtime.install(previous)

    def test_env_off_values_do_not_install(self, monkeypatch):
        previous = resilience_runtime.active_injector()
        try:
            for value in ("", "0", "off", "none", "false"):
                resilience_runtime.uninstall()
                monkeypatch.setenv("REPRO_FAULTS", value)
                resilience_runtime._init_from_env()
                assert resilience_runtime.active_injector() is None
        finally:
            resilience_runtime.install(previous)

    def test_delivery_resilience_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DeliveryResilience(mode="improvise")


# ---------------------------------------------------------------------------
# Fail-closed delivery
# ---------------------------------------------------------------------------


class TestDeliveryUnderFaults:
    def test_refuse_mode_raises_and_records_refusal(self, scenario, compliant_reports):
        service = _service(
            scenario,
            DeliveryResilience(policy=_policy(named_plan("blackout")), mode="refuse"),
        )
        name = compliant_reports[0]
        with pytest.raises(SourceUnavailableError):
            _deliver(service, scenario, name)
        (refusal,) = service.refusals
        assert refusal.report == name
        assert "source unavailable" in refusal.reason
        assert len(service.audit_log) == 0  # nothing was disclosed

    def test_degrade_mode_drops_rows_and_audits_cause(
        self, scenario, compliant_reports, baseline_rows
    ):
        service = _service(
            scenario,
            DeliveryResilience(policy=_policy(named_plan("blackout")), mode="degrade"),
        )
        name = compliant_reports[0]
        instance = _deliver(service, scenario, name)
        assert instance.degraded
        assert instance.degraded_sources == ("hospital/prescriptions",)
        assert "hospital/prescriptions" in instance.fault_cause
        assert "DEGRADED" in instance.summary()
        # Fail-closed: only ever removes rows, never substitutes.
        delivered = Counter(instance.table.rows)
        assert not delivered - baseline_rows[name]
        record = service.audit_log.last()
        assert record.degraded and "hospital/prescriptions" in record.fault_cause
        assert "DEGRADED:" in record.payload()
        assert service.audit_log.verify_chain()

    def test_healthy_delivery_keeps_audit_payload_byte_identical(
        self, scenario, compliant_reports
    ):
        with_res = _service(
            scenario,
            DeliveryResilience(policy=_policy(named_plan("none")), mode="refuse"),
        )
        without = _service(scenario, None)
        name = compliant_reports[0]
        _deliver(with_res, scenario, name)
        _deliver(without, scenario, name)
        # Normalize the trace ID: when the suite runs under REPRO_OBS the
        # two deliveries legitimately get distinct traces; everything else
        # — including the absence of any degradation marker — must match
        # byte for byte.
        from dataclasses import replace as _replace

        records = (with_res.audit_log.last(), without.audit_log.last())
        healthy, bare = (_replace(r, trace_id="") for r in records)
        assert healthy.payload() == bare.payload()
        assert "DEGRADED" not in healthy.payload()

    def test_degraded_audit_row_visible_to_sql_auditors(
        self, scenario, compliant_reports
    ):
        service = _service(
            scenario,
            DeliveryResilience(policy=_policy(named_plan("blackout")), mode="degrade"),
        )
        _deliver(service, scenario, compliant_reports[0])
        table = service.audit_log.as_table()
        names = table.schema.names
        row = dict(zip(names, table.rows[0]))
        assert row["degraded"] == 1
        assert "hospital/prescriptions" in row["fault_cause"]


# ---------------------------------------------------------------------------
# Satellite regressions: narrowed exception handling
# ---------------------------------------------------------------------------


class TestNarrowedExceptions:
    def test_unknown_report_is_typed(self, scenario):
        with pytest.raises(ReportNotFoundError):
            scenario.report_catalog.current("no_such_report")

    def test_delivery_still_wraps_unknown_report_as_compliance_error(self, scenario):
        service = _service(scenario, None)
        with pytest.raises(ComplianceError):
            service.deliver("no_such_report", user="ann", purpose="care/quality")

    def test_genuine_bug_in_catalog_propagates(self, scenario, monkeypatch):
        service = _service(scenario, None)

        def boom(_name):
            raise TypeError("a genuine bug, not a missing report")

        monkeypatch.setattr(service.reports, "current", boom)
        with pytest.raises(TypeError):  # NOT swallowed as "unknown report"
            service.deliver("rpt_001", user="ann", purpose="care/quality")
        assert not service.refusals

    def test_auditor_flags_unknown_report_with_warning(self, scenario, compliant_reports):
        from repro.audit import Auditor
        from repro.reports.catalog import ReportCatalog

        service = _service(scenario, None)
        _deliver(service, scenario, compliant_reports[0])
        auditor = Auditor(checker=scenario.checker, reports=ReportCatalog())
        with pytest.warns(UserWarning, match="unknown report"):
            report = auditor.audit(service.audit_log)
        assert [v.kind for v in report.violations] == ["unknown_report"]

    def test_auditor_lets_genuine_bugs_propagate(
        self, scenario, compliant_reports, monkeypatch
    ):
        from repro.audit import Auditor

        service = _service(scenario, None)
        _deliver(service, scenario, compliant_reports[0])
        auditor = Auditor(checker=scenario.checker, reports=scenario.report_catalog)

        def boom(_name):
            raise TypeError("history table corrupted")

        monkeypatch.setattr(auditor.reports, "history", boom)
        with pytest.raises(TypeError):
            auditor.audit(service.audit_log)

    def test_auditor_anomaly_counter_when_observing(self, scenario, compliant_reports):
        from repro import obs
        from repro.audit import Auditor
        from repro.reports.catalog import ReportCatalog

        service = _service(scenario, None)
        _deliver(service, scenario, compliant_reports[0])
        previous = obs.enabled()
        obs.reset()
        obs.enable()
        try:
            auditor = Auditor(checker=scenario.checker, reports=ReportCatalog())
            with pytest.warns(UserWarning):
                auditor.audit(service.audit_log)
            counter = obs.get_registry().get("repro_audit_anomalies_total")
            assert counter.value(("unknown_report",)) == 1
        finally:
            obs.TRACER.enabled = previous
            obs.reset()


# ---------------------------------------------------------------------------
# Chaos runner
# ---------------------------------------------------------------------------


class TestChaosRunner:
    def test_replay_is_byte_identical(self, scenario):
        first = run_chaos(named_plan("brownout"), scenario=scenario)
        second = run_chaos(named_plan("brownout"), scenario=scenario)
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_blackout_never_delivers_hospital_data(self, scenario):
        result = run_chaos(named_plan("blackout"), scenario=scenario, mode="degrade")
        counts = result.counts()
        assert counts["delivered"] == 0  # every report joins prescriptions
        assert counts["degraded"] > 0
        for outcome in result.outcomes:
            if outcome.outcome == "degraded":
                assert "hospital/prescriptions" in outcome.sources

    def test_refuse_mode_yields_unavailable(self, scenario):
        result = run_chaos(named_plan("blackout"), scenario=scenario, mode="refuse")
        counts = result.counts()
        assert counts["degraded"] == 0 and counts["unavailable"] > 0

    def test_summary_and_table_render(self, scenario):
        from repro.resilience import render_outcome_table

        result = run_chaos(named_plan("none"), scenario=scenario)
        text = render_outcome_table(result)
        assert "report" in text and "chaos[none" in text


# ---------------------------------------------------------------------------
# The chaos property: fail-closed under any generated fault plan
# ---------------------------------------------------------------------------

_TARGETS = (
    "hospital/prescriptions",
    "health_agency/drugcost",
    "municipality/*",
    "*",
    "nowhere/matches-nothing",
)


@st.composite
def fault_specs(draw):
    target = draw(st.sampled_from(_TARGETS))
    kind = draw(st.sampled_from(("transient", "timeout", "outage")))
    rate = draw(st.floats(min_value=0.0, max_value=1.0))
    after = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=6)))
    calls = tuple(draw(st.lists(st.integers(0, 12), max_size=3)))
    if not rate and not calls and after is None:
        rate = 0.5  # the spec must be able to fire
    return FaultSpec(target=target, kind=kind, rate=rate, calls=calls, after=after)


fault_plans = st.builds(
    FaultPlan,
    name=st.just("generated"),
    seed=st.integers(min_value=0, max_value=2**16),
    specs=st.lists(fault_specs(), min_size=0, max_size=3).map(tuple),
)


class TestChaosProperty:
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(plan=fault_plans, mode=st.sampled_from(("refuse", "degrade")))
    def test_delivery_fails_closed_and_replays(
        self, scenario, compliant_reports, baseline_rows, plan, mode
    ):
        outcomes = self._run(scenario, compliant_reports, baseline_rows, plan, mode)
        replay = self._run(scenario, compliant_reports, baseline_rows, plan, mode)
        assert outcomes == replay  # same seeded plan ⇒ identical outcomes

    def _run(self, scenario, compliant_reports, baseline_rows, plan, mode):
        service = _service(
            scenario, DeliveryResilience(policy=_policy(plan), mode=mode)
        )
        outcomes = []
        for name in compliant_reports:
            try:
                instance = _deliver(service, scenario, name)
            except SourceUnavailableError as exc:
                # Fail-closed refusal: typed, and recorded as a refusal.
                assert any(r.report == name for r in service.refusals)
                outcomes.append(("unavailable", type(exc).__name__, str(exc)))
                continue
            delivered = Counter(instance.table.rows)
            # THE fail-closed property: under any fault plan, delivered
            # rows are a sub-multiset of the fault-free delivery — rows
            # may disappear, nothing may be added or substituted.
            assert not delivered - baseline_rows[name], (
                f"degraded delivery of {name} added rows not in the "
                f"fault-free baseline under plan {plan}"
            )
            if instance.degraded:
                assert mode == "degrade"
                assert instance.degraded_sources and instance.fault_cause
                record = service.audit_log.last()
                assert record.degraded and record.fault_cause
            else:
                assert delivered == baseline_rows[name]
            outcomes.append(
                ("delivered", instance.degraded, tuple(instance.table.rows))
            )
        return outcomes
