"""Per-code tests for the static analyzer's diagnostics (PLA001–RPT002).

Each diagnostic code gets a positive fixture that triggers it and a clean
negative that must not, plus one deliberately-broken deployment on which a
single :meth:`StaticAnalyzer.analyze` run emits every registered code.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CODES,
    AnalysisInput,
    Diagnostic,
    DiagnosticReport,
    Severity,
    StaticAnalyzer,
    analyze_scenario,
    join_sensitivity,
    lint_catalog_lineage,
    lint_flow,
    lint_pla,
    prohibited_pairs_of,
)
from repro.analysis.taint import Sensitivity, SensitivityMap, healthcare_sensitivity
from repro.core.annotations import (
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, PlaLevel
from repro.etl.annotations import EtlPlaRegistry, JoinProhibition
from repro.etl.flow import EtlFlow
from repro.etl.operators import ExtractOp, JoinOp
from repro.relational import Catalog, algebra
from repro.relational.expressions import Arith, Col, Comparison, Lit
from repro.relational.query import Query
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportDefinition

INT = ColumnType.INT
STRING = ColumnType.STRING

ALL_COLUMNS = ("patient", "zip", "disease", "drug", "cost")


def dwh_table() -> Table:
    schema = make_schema(
        ("patient", STRING),
        ("zip", STRING),
        ("disease", STRING),
        ("drug", STRING),
        ("cost", INT),
    )
    rows = [
        ("ann", "38100", "flu", "aspirin", 10),
        ("bob", "38068", "HIV", "retrovir", 90),
        ("cal", "38100", "flu", "aspirin", 12),
    ]
    return Table.from_rows("dwh", schema, rows, provider="bi")


def make_deployment(annotations, *, exposed=ALL_COLUMNS):
    """A one-table catalog plus one approved meta-report carrying ``annotations``."""
    catalog = Catalog()
    catalog.add_table(dwh_table())
    metareport = MetaReport("mr", Query.from_("dwh").project(*exposed))
    pla = PLA(
        "pla_mr", "healthcare", PlaLevel.METAREPORT, "mr", tuple(annotations)
    ).approved()
    metareport.attach_pla(pla)
    metareports = MetaReportSet()
    metareports.add(metareport)
    metareports.register_views(catalog)
    return catalog, metareports


def run_lint(annotations, *, exposed=ALL_COLUMNS) -> DiagnosticReport:
    catalog, metareports = make_deployment(annotations, exposed=exposed)
    return StaticAnalyzer(
        AnalysisInput(catalog=catalog, metareports=metareports)
    ).analyze()


#: A fully-covered annotation set: no PLA001–PLA004 findings at all.
CLEAN_ANNOTATIONS = (
    AttributeAccess("patient", frozenset({"doctor"})),
    AnonymizationRequirement("zip", "generalize", 2),
    IntensionalCondition(
        "disease", Comparison("!=", Col("disease"), Lit("HIV")), "suppress_row"
    ),
    AggregationThreshold(5),
)


class TestDiagnosticModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("XXX999", Severity.ERROR, "metareport:mr", "boom")

    def test_str_is_compiler_shaped(self):
        d = Diagnostic("PLA001", Severity.WARNING, "metareport:mr", "msg")
        assert str(d) == "warning: PLA001 at metareport:mr: msg"

    def test_exit_code_thresholds(self):
        report = DiagnosticReport()
        assert report.clean and report.exit_code() == 0
        report.add(Diagnostic("PLA003", Severity.WARNING, "metareport:mr", "m"))
        assert report.exit_code() == 0  # default fail_on=ERROR
        assert report.exit_code(fail_on=Severity.WARNING) == 1
        report.add(Diagnostic("PLA002", Severity.ERROR, "metareport:mr", "m"))
        assert report.exit_code() == 1
        assert report.max_severity() is Severity.ERROR

    def test_sorted_puts_errors_first(self):
        report = DiagnosticReport()
        report.add(Diagnostic("PLA003", Severity.WARNING, "metareport:b", "w"))
        report.add(Diagnostic("PLA002", Severity.ERROR, "metareport:a", "e"))
        assert [d.severity for d in report.sorted()] == [
            Severity.ERROR,
            Severity.WARNING,
        ]

    def test_sorted_compares_trailing_line_numbers_numerically(self):
        report = DiagnosticReport()
        report.add(Diagnostic("ING005", Severity.ERROR, "suite:a.sql:10", "m"))
        report.add(Diagnostic("ING005", Severity.ERROR, "suite:a.sql:2", "m"))
        assert [d.location for d in report.sorted()] == [
            "suite:a.sql:2",
            "suite:a.sql:10",
        ]

    def test_source_sorted_orders_by_file_then_line_then_code(self):
        report = DiagnosticReport()
        report.add(Diagnostic("ING001", Severity.ERROR, "suite:b.sql:1", "m"))
        report.add(Diagnostic("ING005", Severity.ERROR, "suite:a.sql:10", "m"))
        report.add(Diagnostic("ING007", Severity.WARNING, "suite:a.sql:2", "m"))
        report.add(Diagnostic("ING002", Severity.ERROR, "suite:a.sql:2", "m"))
        assert [(d.location, d.code) for d in report.source_sorted()] == [
            ("suite:a.sql:2", "ING002"),
            ("suite:a.sql:2", "ING007"),
            ("suite:a.sql:10", "ING005"),
            ("suite:b.sql:1", "ING001"),
        ]

    def test_to_json_round_trips(self):
        report = DiagnosticReport(coverage={"reports": 2})
        report.add(
            Diagnostic("RPT001", Severity.ERROR, "report:r", "m", fix_hint="h")
        )
        data = json.loads(report.to_json())
        assert data["coverage"] == {"reports": 2}
        assert data["counts"]["error"] == 1
        assert data["diagnostics"][0]["fix_hint"] == "h"

    def test_sensitivity_lattice(self):
        assert join_sensitivity([]) is Sensitivity.PUBLIC
        assert (
            join_sensitivity([Sensitivity.QUASI, Sensitivity.DIRECT])
            is Sensitivity.DIRECT
        )
        hc = healthcare_sensitivity()
        assert hc.classify("dim_patient.patient") is Sensitivity.DIRECT
        assert hc.classify("anything.unknown") is Sensitivity.PUBLIC
        narrowed = hc.with_entries({"dwh.cost": Sensitivity.SENSITIVE})
        assert narrowed.classify("dwh.cost") is Sensitivity.SENSITIVE
        assert hc.classify("dwh.cost") is Sensitivity.PUBLIC


class TestPLA001Uncovered:
    def test_exposed_sensitive_columns_flagged(self):
        report = run_lint([AggregationThreshold(5)])
        found = report.by_code("PLA001")
        flagged = {d.message.split("'")[1] for d in found}
        assert flagged == {"patient", "zip", "disease"}
        severities = {
            d.message.split("'")[1]: d.severity for d in found
        }
        assert severities["patient"] is Severity.ERROR  # direct identifier
        assert severities["zip"] is Severity.WARNING

    def test_fully_annotated_pla_is_clean(self):
        report = run_lint(CLEAN_ANNOTATIONS)
        assert report.by_code("PLA001") == ()


class TestPLA002Contradictions:
    def test_disjoint_role_sets(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (AttributeAccess("patient", frozenset({"auditor"})),)
        )
        found = report.by_code("PLA002")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "disjoint role sets" in found[0].message

    def test_join_both_allowed_and_prohibited(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (
                JoinPermission("muni/residents", "lab/exams", True),
                JoinPermission("muni/residents", "lab/exams", False),
            )
        )
        assert any(
            "permitted and" in d.message for d in report.by_code("PLA002")
        )

    def test_conflicting_anonymization_methods(self):
        report = run_lint(
            CLEAN_ANNOTATIONS + (AnonymizationRequirement("zip", "suppress"),)
        )
        assert any("zip" in d.message for d in report.by_code("PLA002"))

    def test_overlapping_roles_are_not_contradictory(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (AttributeAccess("patient", frozenset({"doctor", "auditor"})),)
        )
        assert report.by_code("PLA002") == ()


class TestPLA003Shadowed:
    def test_weaker_threshold_shadowed(self):
        report = run_lint(CLEAN_ANNOTATIONS + (AggregationThreshold(3),))
        found = report.by_code("PLA003")
        assert len(found) == 1
        assert "≥3" in found[0].message and "≥5" in found[0].message

    def test_wider_role_set_shadowed(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (AttributeAccess("patient", frozenset({"doctor", "auditor"})),)
        )
        assert any(
            "shadowed by" in d.message for d in report.by_code("PLA003")
        )

    def test_duplicate_join_rule(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (
                JoinPermission("muni/residents", "lab/exams", False),
                JoinPermission("lab/exams", "muni/residents", False),
            )
        )
        assert any(
            "duplicate join rule" in d.message for d in report.by_code("PLA003")
        )

    def test_weaker_intensional_condition_shadowed(self):
        strict = IntensionalCondition(
            "drug", Comparison(">", Col("cost"), Lit(10)), "suppress_row"
        )
        weak = IntensionalCondition(
            "drug", Comparison(">", Col("cost"), Lit(0)), "suppress_row"
        )
        report = run_lint(CLEAN_ANNOTATIONS + (strict, weak))
        found = [
            d for d in report.by_code("PLA003") if "intensional" in d.message
        ]
        assert len(found) == 1
        assert "cost > 0" in found[0].message  # the weaker one is flagged

    def test_single_rules_never_shadow(self):
        assert run_lint(CLEAN_ANNOTATIONS).by_code("PLA003") == ()


class TestPLA004DeadIntensional:
    def test_unknown_condition_column_is_error(self):
        report = run_lint(
            CLEAN_ANNOTATIONS
            + (
                IntensionalCondition(
                    "disease", Comparison("=", Col("hiv_flag"), Lit(0))
                ),
            )
        )
        found = report.by_code("PLA004")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "hiv_flag" in found[0].message

    def test_tautological_condition_is_warning(self):
        report = run_lint(
            CLEAN_ANNOTATIONS + (IntensionalCondition("drug", Lit(True)),)
        )
        found = report.by_code("PLA004")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "always" in found[0].message

    def test_cell_suppression_on_unexposed_attribute(self):
        rule = IntensionalCondition(
            "disease",
            Comparison("!=", Col("disease"), Lit("HIV")),
            "suppress_cell",
        )
        report = run_lint(
            (AggregationThreshold(5), rule), exposed=("drug", "cost")
        )
        found = report.by_code("PLA004")
        assert len(found) == 1
        assert "no cell to blank" in found[0].message

    def test_unsatisfiable_condition_over_live_columns_is_error(self):
        # Regression: the pre-solver lint only caught literal-constant
        # conditions. ``cost > 100 AND cost < 10`` mentions a live column
        # yet suppresses every row — the solver now proves it empty.
        from repro.relational.expressions import And

        report = run_lint(
            CLEAN_ANNOTATIONS
            + (
                IntensionalCondition(
                    "cost",
                    And(
                        Comparison(">", Col("cost"), Lit(100)),
                        Comparison("<", Col("cost"), Lit(10)),
                    ),
                    "suppress_row",
                ),
            )
        )
        found = report.by_code("PLA004")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "unsatisfiable" in found[0].message

    def test_solver_tautology_over_live_columns_is_warning(self):
        from repro.relational.expressions import IsNull, Or

        report = run_lint(
            CLEAN_ANNOTATIONS
            + (
                IntensionalCondition(
                    "cost",
                    Or(IsNull(Col("cost")), IsNull(Col("cost"), negated=True)),
                    "suppress_row",
                ),
            )
        )
        found = report.by_code("PLA004")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_live_condition_is_clean(self):
        assert run_lint(CLEAN_ANNOTATIONS).by_code("PLA004") == ()


def cross_owner_flow():
    residents = Table.from_rows(
        "residents",
        make_schema(("pid", STRING), ("zip", STRING)),
        [("p1", "38100"), ("p2", "38068")],
        provider="municipality",
    )
    exams = Table.from_rows(
        "exams",
        make_schema(("pid", STRING), ("result", STRING)),
        [("p1", "neg"), ("p2", "pos")],
        provider="laboratory",
    )
    flow = EtlFlow("cross")
    flow.add(ExtractOp("x_res", residents, "stg_res"))
    flow.add(ExtractOp("x_ex", exams, "stg_ex"))
    flow.add(JoinOp("join_all", "stg_res", "stg_ex", [("pid", "pid")], "merged"))
    return flow, residents, exams


PAIR = frozenset({"municipality/residents", "laboratory/exams"})


class TestPLA005JoinProhibition:
    def test_flow_reaching_prohibited_pair(self):
        flow, _, _ = cross_owner_flow()
        registry = EtlPlaRegistry()
        registry.add(
            JoinProhibition(
                "no_res_exams", "municipality",
                "municipality/residents", "laboratory/exams",
            )
        )
        assert prohibited_pairs_of(registry) == (PAIR,)
        found = [
            d
            for d in lint_flow(
                flow, registry=registry, prohibited_pairs=(PAIR,)
            )
            if d.code == "PLA005"
        ]
        assert found and all(d.severity is Severity.ERROR for d in found)
        assert any("join_all" in d.location for d in found)

    def test_materialized_lineage_flagged(self):
        _, residents, exams = cross_owner_flow()
        merged = algebra.join(residents, exams, [("pid", "pid")], name="merged")
        catalog = Catalog()
        catalog.add_table(merged)
        found = lint_catalog_lineage(catalog, (PAIR,))
        assert len(found) == 1
        assert found[0].location == "table:merged"

    def test_unrelated_prohibition_is_clean(self):
        flow, _, _ = cross_owner_flow()
        other = frozenset({"pharmacy/stock", "laboratory/exams"})
        diagnostics = lint_flow(
            flow, registry=None, prohibited_pairs=(other,)
        )
        assert not [d for d in diagnostics if d.code == "PLA005"]


class TestETL001UncheckedOperator:
    def test_cross_owner_join_without_constraint(self):
        flow, _, _ = cross_owner_flow()
        found = [
            d for d in lint_flow(flow, registry=None) if d.code == "ETL001"
        ]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "laboratory" in found[0].message
        assert "municipality" in found[0].message

    def test_covering_constraint_silences(self):
        flow, _, _ = cross_owner_flow()
        registry = EtlPlaRegistry()
        registry.add(
            JoinProhibition(
                "no_res_exams", "municipality",
                "municipality/residents", "laboratory/exams",
            )
        )
        diagnostics = lint_flow(flow, registry=registry)
        assert not [d for d in diagnostics if d.code == "ETL001"]


class TestRPT001EscapesMetareports:
    def test_underivable_report_is_error(self):
        catalog, metareports = make_deployment(
            CLEAN_ANNOTATIONS, exposed=("drug", "disease")
        )
        reports = ReportCatalog()
        reports.add(
            ReportDefinition(
                "leaky", "Leaky", Query.from_("dwh").project("patient"),
                frozenset({"analyst"}), "care/quality",
            )
        )
        report = StaticAnalyzer(
            AnalysisInput(catalog=catalog, metareports=metareports, reports=reports)
        ).analyze()
        found = report.by_code("RPT001")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert found[0].location == "report:leaky"

    def test_derivable_report_is_clean(self):
        catalog, metareports = make_deployment(CLEAN_ANNOTATIONS)
        reports = ReportCatalog()
        reports.add(
            ReportDefinition(
                "ok", "OK", Query.from_("dwh").project("drug", "cost"),
                frozenset({"analyst"}), "care/quality",
            )
        )
        report = StaticAnalyzer(
            AnalysisInput(catalog=catalog, metareports=metareports, reports=reports)
        ).analyze()
        assert report.by_code("RPT001") == ()

    def test_unapproved_metareport_is_warned(self):
        catalog = Catalog()
        catalog.add_table(dwh_table())
        metareports = MetaReportSet()
        metareports.add(
            MetaReport("draft_mr", Query.from_("dwh").project("drug"))
        )
        report = StaticAnalyzer(
            AnalysisInput(catalog=catalog, metareports=metareports)
        ).analyze()
        found = report.by_code("RPT001")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert found[0].location == "metareport:draft_mr"


class TestRPT002IdentifyingDetail:
    def run_on_report(self, query) -> DiagnosticReport:
        catalog = Catalog()
        catalog.add_table(dwh_table())
        reports = ReportCatalog()
        reports.add(
            ReportDefinition(
                "r", "R", query, frozenset({"analyst"}), "care/quality"
            )
        )
        return StaticAnalyzer(
            AnalysisInput(catalog=catalog, reports=reports)
        ).analyze()

    def test_copied_direct_identifier_flagged(self):
        report = self.run_on_report(Query.from_("dwh").project("patient", "drug"))
        found = report.by_code("RPT002")
        assert len(found) == 1
        assert "patient" in found[0].message

    def test_aggregated_report_is_clean(self):
        from repro.relational.algebra import AggSpec

        query = (
            Query.from_("dwh").group("drug").agg(AggSpec("count", None, "n"))
        )
        assert self.run_on_report(query).by_code("RPT002") == ()

    def test_derived_value_is_not_a_copy(self):
        query = Query.from_("dwh").project(
            ("tag", Arith("+", Col("cost"), Lit(0))), "drug"
        )
        assert self.run_on_report(query).by_code("RPT002") == ()


class TestWholeCatalogSweep:
    def broken_deployment(self):
        """One deployment wrong in every way the analyzer knows about."""
        catalog = Catalog()
        catalog.add_table(dwh_table())
        _, residents, exams = cross_owner_flow()
        catalog.add_table(
            algebra.join(residents, exams, [("pid", "pid")], name="merged")
        )

        metareports = MetaReportSet()
        wide = MetaReport(
            "mr_wide", Query.from_("dwh").project("patient", "zip", "disease")
        )
        wide.attach_pla(
            PLA(
                "pla_wide", "healthcare", PlaLevel.METAREPORT, "mr_wide",
                (
                    AggregationThreshold(2),
                    AggregationThreshold(10),  # PLA003: shadows the ≥2
                    AttributeAccess("patient", frozenset({"doctor"})),
                    AttributeAccess("patient", frozenset({"auditor"})),  # PLA002
                    IntensionalCondition(
                        "disease", Comparison("=", Col("ghost"), Lit(1))
                    ),  # PLA004; zip stays uncovered → PLA001
                    JoinPermission(
                        "municipality/residents", "laboratory/exams", False
                    ),  # → PLA005 pairs
                ),
            ).approved()
        )
        metareports.add(wide)
        metareports.add(
            MetaReport("mr_draft", Query.from_("dwh").project("drug"))
        )  # RPT001 warning: no approved PLA
        metareports.register_views(catalog)

        reports = ReportCatalog()
        reports.add(
            ReportDefinition(
                "escapee", "Escapee", Query.from_("dwh").project("cost"),
                frozenset({"analyst"}), "care/quality",
            )
        )  # RPT001 error: no meta-report exposes cost
        reports.add(
            ReportDefinition(
                "roster", "Roster", Query.from_("dwh").project("patient"),
                frozenset({"analyst"}), "care/quality",
            )
        )  # RPT002: copies the direct identifier
        reports.add(
            ReportDefinition(
                "stakeout", "Stakeout",
                Query.from_("dwh")
                .filter(Comparison("=", Col("patient"), Lit("p1")))
                .project("drug"),
                frozenset({"analyst"}), "care/quality",
            )
        )  # RPT003: filters on the identifier while projecting it away

        flow, _, _ = cross_owner_flow()  # ETL001 + PLA005 (no registry)
        return AnalysisInput(
            catalog=catalog, metareports=metareports, reports=reports,
            flows=(flow,),
        )

    def test_one_sweep_emits_every_code(self):
        # VER00x codes belong to the cross-level verifier (repro verify)
        # and ING00x to SQL-suite ingestion (repro ingest), not the lint
        # sweep; tests/test_verify_crosslevel.py and tests/test_ingest.py
        # cover those families.
        lint_codes = {
            c for c in CODES if not c.startswith(("VER", "ING"))
        }
        report = StaticAnalyzer(self.broken_deployment()).analyze()
        assert set(report.codes()) == lint_codes
        assert report.exit_code() == 1
        assert report.coverage == {
            "metareports": 2, "reports": 3, "flows": 1, "tables": 2,
        }

    def test_clean_deployment_is_clean(self):
        catalog, metareports = make_deployment(CLEAN_ANNOTATIONS)
        reports = ReportCatalog()
        from repro.relational.algebra import AggSpec

        reports.add(
            ReportDefinition(
                "per_drug", "Per drug",
                Query.from_("dwh").group("drug").agg(AggSpec("count", None, "n")),
                frozenset({"analyst"}), "care/quality",
            )
        )
        report = StaticAnalyzer(
            AnalysisInput(catalog=catalog, metareports=metareports, reports=reports)
        ).analyze()
        assert report.clean
        assert report.exit_code(fail_on=Severity.INFO) == 0
        assert "clean" in report.summary()

    def test_scenario_sweep_has_no_errors(self, scenario):
        report = analyze_scenario(scenario)
        assert report.exit_code() == 0  # warnings only on the shipped scenario
        assert report.max_severity() is Severity.WARNING
        assert {"ETL001", "PLA001", "RPT002"} <= set(report.codes())
        assert report.coverage["metareports"] == 4
        assert report.coverage["reports"] == 30
        assert report.coverage["flows"] == 1


class TestLintPlaDirect:
    def test_lint_pla_is_usable_standalone(self):
        pla = PLA(
            "p", "o", PlaLevel.METAREPORT, "mr", (AggregationThreshold(5),)
        )
        diagnostics = lint_pla(
            pla,
            exposed_columns=("patient",),
            column_sensitivity={"patient": Sensitivity.DIRECT},
            base_columns=frozenset({"patient"}),
            location="metareport:mr",
        )
        assert [d.code for d in diagnostics] == ["PLA001"]

    def test_custom_sensitivity_map_changes_verdict(self):
        catalog, metareports = make_deployment([AggregationThreshold(5)])
        lax = SensitivityMap()  # everything PUBLIC
        report = StaticAnalyzer(
            AnalysisInput(
                catalog=catalog, metareports=metareports, sensitivity=lax
            )
        ).analyze()
        assert report.by_code("PLA001") == ()
