"""One deployment, whole lifecycle: deliver → audit → subject access →
retention → dispute. The capstone integration test: every §2 duty
exercised against the same scenario state."""

import datetime

import pytest

from repro.audit import (
    AuditLog,
    Auditor,
    DisputeResolver,
    purge_expired,
    retention_violations,
    subject_access_report,
)
from repro.errors import ComplianceError
from repro.reports import ReportEngine
from repro.sources import ConsentAgreement

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


@pytest.fixture(scope="module")
def lifecycle(scenario):
    """Deliver the compliant workload through the serving layer once."""
    service = scenario.delivery_service()
    # Use a private log so the session-scoped scenario stays clean.
    service.audit_log = AuditLog()
    delivered, refusals = service.deliver_all_compliant(ROLE_TO_USER)
    return service, delivered, refusals


class TestServingLifecycle:
    def test_delivery_partition(self, scenario, lifecycle):
        service, delivered, refusals = lifecycle
        assert len(delivered) + len(refusals) == len(
            scenario.report_catalog.all_current()
        )
        assert len(delivered) >= 10

    def test_audit_clean_end_to_end(self, scenario, lifecycle):
        service, delivered, _ = lifecycle
        audit = Auditor(
            checker=scenario.checker, reports=scenario.report_catalog
        ).audit(service.audit_log)
        assert audit.clean, audit.summary()
        assert audit.disclosures_checked == len(delivered)

    def test_every_delivery_has_a_chain_hash(self, lifecycle):
        service, _, _ = lifecycle
        assert all(r.chain_hash for r in service.audit_log.records)
        assert service.audit_log.verify_chain()

    def test_subject_access_over_the_same_deliveries(self, scenario, lifecycle):
        _, delivered, _ = lifecycle
        subject = scenario.data.patients[0]
        report = subject_access_report(
            subject, list(scenario.providers.values()), delivered
        )
        assert report.base_records > 0
        # The Zipf-head patient's data reaches at least one delivery.
        assert report.involved_anywhere
        # And every claimed involvement is lineage-verifiable:
        for involvement in report.involvements:
            assert involvement.records_used > 0

    def test_refused_reports_disclosed_nothing(self, scenario, lifecycle):
        service, _, refusals = lifecycle
        refused_names = {r.report for r in refusals}
        logged_names = {r.report for r in service.audit_log.records}
        assert not (refused_names & logged_names)

    def test_dispute_case_for_a_synthetic_violation(self, scenario, lifecycle):
        """A rogue disclosure appended to the same log is caught and a
        complete evidence bundle assembled."""
        service, _, _ = lifecycle
        rogue_engine = ReportEngine(scenario.bi_catalog)
        target = next(
            r
            for r in scenario.report_catalog.all_current()
            if r.query.is_aggregate
        )
        role = sorted(target.audience)[0]
        context = scenario.subjects.context(ROLE_TO_USER[role], target.purpose)
        instance = rogue_engine.generate(target, context)
        service.audit_log.record_instance(instance, context)
        assert service.audit_log.verify_chain()  # appended, not tampered

        auditor = Auditor(checker=scenario.checker, reports=scenario.report_catalog)
        audit = auditor.audit(service.audit_log)
        assert not audit.clean
        resolver = DisputeResolver(
            checker=scenario.checker,
            reports=scenario.report_catalog,
            pseudonymizer=scenario.enforcer.pseudonymizer,
        )
        case = resolver.build_case(audit.violations[0], service.audit_log)
        assert case.disclosure.report == audit.violations[0].report
        assert case.governing_pla != "(no covering meta-report PLA)"
        # Clean up the rogue record so other module-scoped tests see a clean log.
        service.audit_log.records.pop()


class TestRetentionDuty:
    def test_retention_purge_on_warehouse_data(self, scenario):
        hospital = scenario.providers["hospital"]
        # Impose a tight legal default well after the generated data range.
        as_of = datetime.date(2015, 1, 1)
        wide = scenario.bi_catalog.table("dwh_prescriptions")
        findings = retention_violations(
            wide, hospital.consents,
            subject_column="patient", date_column="date",
            as_of=as_of, default_days=365,
        )
        assert findings  # everything is years old by 2015
        purged, count = purge_expired(
            wide, hospital.consents,
            subject_column="patient", date_column="date",
            as_of=as_of, default_days=365,
        )
        assert count == len(findings)
        assert len(purged) + count == len(wide)

    def test_consent_specific_limits_override_default(self, scenario):
        hospital = scenario.providers["hospital"]
        patient = scenario.data.patients[0]
        # Give one patient an explicit, effectively unlimited retention.
        original = hospital.consents.agreements.get(patient)
        hospital.consents.agreements[patient] = ConsentAgreement(
            patient,
            show_name=True,
            show_disease=False,
            retention_days=100_000,
        )
        try:
            wide = scenario.bi_catalog.table("dwh_prescriptions")
            findings = retention_violations(
                wide, hospital.consents,
                subject_column="patient", date_column="date",
                as_of=datetime.date(2015, 1, 1), default_days=365,
            )
            assert all(f.subject != patient for f in findings)
        finally:
            if original is not None:
                hospital.consents.agreements[patient] = original
            else:
                hospital.consents.agreements.pop(patient, None)
