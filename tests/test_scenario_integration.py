"""End-to-end integration tests over the full Fig-1 scenario."""

import pytest

from repro.audit import AuditLog, Auditor
from repro.core import PlaStatus
from repro.reports import ReportEngine


ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def context_for(scenario, report):
    role = sorted(report.audience)[0]
    return scenario.subjects.context(ROLE_TO_USER[role], report.purpose)


class TestScenarioConstruction:
    def test_providers_present(self, scenario):
        assert set(scenario.providers) == {
            "hospital", "municipality", "laboratory", "health_agency",
        }

    def test_etl_flow_ran_clean(self, scenario):
        assert scenario.flow_result.clean
        assert "dwh_prescriptions" in scenario.bi_catalog

    def test_warehouse_wide_view_registered(self, scenario):
        assert scenario.universe_name in scenario.bi_catalog
        assert set(scenario.wide_columns) >= {"drug", "disease", "patient", "cost"}

    def test_integration_filled_missing_doctors(self, scenario):
        wide = scenario.bi_catalog.table("dwh_prescriptions")
        assert all(v is not None for v in wide.column_values("doctor"))

    def test_warehouse_lineage_reaches_sources(self, scenario):
        wide = scenario.bi_catalog.table("dwh_prescriptions")
        providers = {rid.provider for rid in wide.all_lineage()}
        assert {"hospital", "municipality", "health_agency"} <= providers

    def test_metareports_approved(self, scenario):
        assert len(scenario.metareports) == scenario.config.max_metareports
        assert all(m.approved for m in scenario.metareports)
        assert all(
            m.pla is not None and m.pla.status is PlaStatus.APPROVED
            for m in scenario.metareports
        )

    def test_workload_mostly_covered(self, scenario):
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        covered = sum(
            1 for v in verdicts.values() if v.covering_metareport is not None
        )
        assert covered == len(verdicts)  # every report derivable from some MR

    def test_provenance_graph_explains_warehouse(self, scenario):
        text = scenario.provenance.explain("dwh_prescriptions")
        assert "hospital" in text and "integrate" in text


class TestEndToEndDelivery:
    def test_compliant_reports_generate_and_audit_clean(self, scenario):
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        log = AuditLog()
        generated = 0
        for name, verdict in verdicts.items():
            if not verdict.compliant:
                continue
            report = scenario.report_catalog.current(name)
            ctx = context_for(scenario, report)
            instance = scenario.enforcer.generate(report, ctx, verdict)
            log.record_instance(instance, ctx)
            generated += 1
        assert generated >= 10
        audit = Auditor(
            checker=scenario.checker, reports=scenario.report_catalog
        ).audit(log)
        assert audit.chain_intact
        assert audit.clean, audit.summary()

    def test_no_hiv_rows_in_any_delivered_report(self, scenario):
        """The intensional PLA: HIV rows never reach a consumer."""
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        for name, verdict in verdicts.items():
            if not verdict.compliant:
                continue
            report = scenario.report_catalog.current(name)
            instance = scenario.enforcer.generate(
                report, context_for(scenario, report), verdict
            )
            if "disease" in instance.table.schema:
                assert "HIV" not in instance.table.column_values("disease")

    def test_aggregation_threshold_holds_in_deliveries(self, scenario):
        k = scenario.config.aggregation_threshold
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        checked = 0
        for name, verdict in verdicts.items():
            report = scenario.report_catalog.current(name)
            if not verdict.compliant or not report.query.is_aggregate:
                continue
            instance = scenario.enforcer.generate(
                report, context_for(scenario, report), verdict
            )
            for i in range(len(instance.table)):
                assert len(instance.table.lineage_of(i)) >= k
            checked += 1
        assert checked >= 5

    def test_patient_columns_are_pseudonymized(self, scenario):
        """A compliant patient-level aggregate must deliver pseudonyms only."""
        from repro.relational import parse_query
        from repro.reports import ReportDefinition

        report = ReportDefinition(
            name="per_patient_probe",
            title="Prescriptions per patient",
            query=parse_query(
                f"SELECT patient, COUNT(*) AS n FROM {scenario.universe_name} "
                "GROUP BY patient"
            ),
            audience=frozenset({"analyst"}),
            purpose="care/quality",
        )
        verdict = scenario.checker.check_report(report)
        assert verdict.compliant, verdict.summary()
        instance = scenario.enforcer.generate(
            report, scenario.subjects.context("ann", "care/quality"), verdict
        )
        assert len(instance.table) > 0
        for value in instance.table.column_values("patient"):
            assert str(value).startswith("anon-")

    def test_rogue_delivery_is_caught_by_audit(self, scenario):
        """Skipping enforcement must be detectable from the log alone."""
        rogue = ReportEngine(scenario.bi_catalog)
        log = AuditLog()
        for report in scenario.report_catalog.all_current():
            if not report.query.is_aggregate:
                continue
            ctx = context_for(scenario, report)
            try:
                instance = rogue.generate(report, ctx)
            except Exception:
                continue
            log.record_instance(instance, ctx)
            break
        assert len(log) == 1
        audit = Auditor(
            checker=scenario.checker, reports=scenario.report_catalog
        ).audit(log)
        assert not audit.clean
