"""Tests for the synthetic workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.reports import EvolutionKind, ReportCatalog, apply_event
from repro.workloads import (
    HealthcareConfig,
    WorkloadSpec,
    generate,
    generate_evolution_stream,
    generate_report_workload,
    generate_requirements,
    paper_drugcost,
    paper_policies,
    paper_prescriptions,
)
from repro.workloads.distributions import partition_sizes, sample_date, zipf_choice
import random


class TestDistributions:
    def test_zipf_skews_to_front(self):
        rng = random.Random(1)
        items = list(range(10))
        draws = [zipf_choice(rng, items) for _ in range(2000)]
        assert draws.count(0) > draws.count(9)

    def test_zipf_empty_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_choice(random.Random(1), [])

    def test_sample_date_valid(self):
        rng = random.Random(1)
        for _ in range(50):
            text = sample_date(rng, 2007, 2008)
            year = int(text[:4])
            assert 2007 <= year <= 2008

    def test_partition_sizes_sums(self):
        rng = random.Random(1)
        sizes = partition_sizes(103, 4, rng)
        assert sum(sizes) == 103 and len(sizes) == 4


class TestHealthcare:
    def test_deterministic(self):
        a = generate(HealthcareConfig(seed=3, n_patients=30, n_prescriptions=100))
        b = generate(HealthcareConfig(seed=3, n_patients=30, n_prescriptions=100))
        assert a.prescriptions.rows == b.prescriptions.rows
        assert a.policies.rows == b.policies.rows

    def test_sizes_match_config(self):
        data = generate(HealthcareConfig(n_patients=25, n_prescriptions=80, n_exams=40))
        assert len(data.prescriptions) == 80
        assert len(data.policies) == 25
        assert len(data.familydoctor) == 25
        assert len(data.residents) == 25
        assert len(data.exams) == 40

    def test_drug_disease_consistency(self):
        from repro.workloads import DRUG_DISEASES

        data = generate(HealthcareConfig(n_patients=30, n_prescriptions=200))
        for row in data.prescriptions.iter_dicts():
            assert DRUG_DISEASES[row["drug"]] == row["disease"]

    def test_sensitive_patients_never_consent_to_disease(self):
        data = generate(HealthcareConfig(n_patients=100, n_prescriptions=400))
        diseases = {
            row["patient"]: row["disease"]
            for row in data.prescriptions.iter_dicts()
        }
        for row in data.policies.iter_dicts():
            if diseases.get(row["patient"]) == "HIV":
                assert not row["show_disease"]

    def test_unexported_tables_exist(self):
        data = generate(HealthcareConfig(n_patients=20, n_prescriptions=10))
        names = set(data.unexported_tables())
        assert names == {"admissions", "billing", "staff", "equipment"}

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            HealthcareConfig(n_patients=0)

    def test_paper_tables_match_figures(self):
        presc = paper_prescriptions()
        assert len(presc) == 5
        assert presc.row_dict(1)["patient"] == "Chris"
        assert presc.row_dict(1)["doctor"] is None  # the blank cell in Fig 2
        policies = paper_policies()
        assert policies.row_dict(0) == {
            "patient": "Alice", "show_name": True, "show_disease": False,
        }
        costs = {r["drug"]: r["cost"] for r in paper_drugcost().iter_dicts()}
        assert costs == {"DD": 50, "DM": 10, "DH": 60, "DV": 30, "DR": 10}


SPEC = WorkloadSpec(
    universe="wide",
    categorical=("drug", "disease", "doctor"),
    measures=("cost",),
    detail_columns=("patient", "drug", "cost"),
    audiences=(frozenset({"analyst"}), frozenset({"director"})),
    purposes=("care", "admin"),
    filter_values={"disease": ("asthma", "flu")},
    n_reports=20,
    seed=5,
    new_feed_columns=("exam_type",),
)


class TestReportWorkload:
    def test_deterministic(self):
        a = generate_report_workload(SPEC)
        b = generate_report_workload(SPEC)
        assert [r.query.describe() for r in a] == [r.query.describe() for r in b]

    def test_count_and_naming(self):
        reports = generate_report_workload(SPEC)
        assert len(reports) == 20
        assert reports[0].name == "rpt_000"

    def test_mix_of_aggregate_and_detail(self):
        reports = generate_report_workload(SPEC)
        aggregate = sum(1 for r in reports if r.query.is_aggregate)
        assert 0 < aggregate < len(reports)

    def test_columns_within_universe(self):
        from repro.core import source_columns_used

        universe = set(SPEC.categorical) | set(SPEC.measures) | set(SPEC.detail_columns)
        for report in generate_report_workload(SPEC):
            assert source_columns_used(report.query) <= universe


class TestEvolutionStream:
    def test_deterministic(self):
        base = generate_report_workload(SPEC)
        a = generate_evolution_stream(SPEC, base, n_events=30, seed=2)
        b = generate_evolution_stream(SPEC, base, n_events=30, seed=2)
        assert [e.describe() for e in a] == [e.describe() for e in b]

    def test_replayable_against_catalog(self):
        base = generate_report_workload(SPEC)
        events = generate_evolution_stream(SPEC, base, n_events=50, seed=4)
        catalog = ReportCatalog()
        for report in base:
            catalog.add(report)
        for event in events:
            apply_event(catalog, event)  # must never raise
        assert catalog.total_versions() >= len(base)

    def test_event_kind_mix(self):
        base = generate_report_workload(SPEC)
        events = generate_evolution_stream(SPEC, base, n_events=120, seed=4)
        kinds = {e.kind for e in events}
        assert EvolutionKind.ADD_REPORT in kinds
        assert EvolutionKind.DROP_REPORT in kinds
        assert len(kinds) >= 4

    def test_new_feed_reports_reference_feed_columns(self):
        base = generate_report_workload(SPEC)
        events = generate_evolution_stream(
            SPEC, base, n_events=60, seed=4, new_feed_rate=1.0
        )
        from repro.core import source_columns_used

        adds = [e for e in events if e.kind is EvolutionKind.ADD_REPORT]
        assert adds
        assert all(
            "exam_type" in source_columns_used(e.definition.query) for e in adds
        )


class TestRequirementWorkload:
    def test_deterministic_and_sized(self):
        a = generate_requirements(50, seed=9)
        b = generate_requirements(50, seed=9)
        assert len(a) == 50
        assert [x.requirement_kind for x in a] == [x.requirement_kind for x in b]

    def test_mix_contains_report_specific_kinds(self):
        kinds = {r.requirement_kind for r in generate_requirements(200, seed=9)}
        assert {"aggregation_threshold", "intensional_condition"} <= kinds
