"""Vector fast path: bitset masks round-trip and the fused kernels agree
with the row reference.

The heavyweight value/lineage/where differential lives in
``test_engine_differential.py`` (which now exercises the vector path by
default). This module pins the vector layer's own contracts:

* ``pack_rows`` / ``unpack_rows`` / ``mask_from_selector`` are mutually
  inverse encodings of ordinal sets (property-based);
* ``MaskProvenance`` decodes to exactly the reference engine's provenance;
* the fast path actually engages on eligible plans (lazy provenance marker
  on the result) and steps aside when disabled via ``set_vector_enabled``
  or the ``REPRO_VECTOR`` environment contract.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.provenance import mask_from_selector, pack_rows, unpack_rows
from repro.relational import (
    COLUMNAR,
    ROW,
    Catalog,
    ExecutionConfig,
    Table,
    execute,
    make_schema,
    parse_query,
)
from repro.relational.types import ColumnType
from repro.relational.vector import set_vector_enabled, try_vector_core

UNCACHED = ExecutionConfig(mode="columnar", use_plan_cache=False)


# ---------------------------------------------------------------------------
# Mask encodings (property-based round trips)
# ---------------------------------------------------------------------------


ordinal_sets = st.sets(st.integers(min_value=0, max_value=2_000), max_size=64)


@given(ordinal_sets)
def test_pack_unpack_round_trip(ordinals):
    assert unpack_rows(pack_rows(ordinals)) == sorted(ordinals)


@given(st.integers(min_value=0, max_value=2**256 - 1))
def test_unpack_pack_round_trip(mask):
    assert pack_rows(unpack_rows(mask)) == mask


@given(st.lists(st.sampled_from([0, 1]), max_size=300))
def test_selector_mask_matches_pack(bits):
    selector = bytes(bits)
    expected = pack_rows(i for i, b in enumerate(bits) if b)
    mask = mask_from_selector(selector)
    assert mask == expected
    assert unpack_rows(mask) == [i for i, b in enumerate(bits) if b]


def test_unpack_is_sorted_and_sparse_masks_work():
    # A mask with only high bits set must not cost a full low-range scan.
    high = pack_rows([10_000, 50_000])
    assert unpack_rows(high) == [10_000, 50_000]
    assert unpack_rows(0) == []
    assert mask_from_selector(b"") == 0


# ---------------------------------------------------------------------------
# Engine parity and fast-path engagement
# ---------------------------------------------------------------------------


def _catalog() -> Catalog:
    cat = Catalog()
    schema = make_schema(
        ("k", ColumnType.INT),
        ("category", ColumnType.STRING),
        ("value", ColumnType.INT),
    )
    rows = [(i % 7, "abcde"[i % 5], (i * 37) % 100) for i in range(120)]
    cat.add_table(Table.from_rows("t", schema, rows, provider="p"))
    dim = make_schema(("k", ColumnType.INT), ("label", ColumnType.STRING))
    cat.add_table(
        Table.from_rows(
            "d", dim, [(i, f"label{i}") for i in range(7)], provider="q"
        )
    )
    return cat

QUERIES = [
    "SELECT category, value FROM t WHERE value > 40",
    "SELECT category, label FROM t JOIN d ON k = k WHERE value < 80",
    "SELECT category, COUNT(*) AS n, SUM(value) AS total FROM t GROUP BY category",
]


def _normalized(table: Table):
    return sorted(
        (row, prov.lineage, tuple(sorted(prov.where.items())))
        for row, prov in zip(table.rows, table.provenance)
    )


def test_vector_path_matches_row_reference_including_provenance():
    cat = _catalog()
    for sql in QUERIES:
        query = parse_query(sql)
        reference = execute(query, cat, config=ROW)
        fused = execute(query, cat, config=UNCACHED)
        assert _normalized(fused) == _normalized(reference), sql


def test_fast_path_engages_and_yields_lazy_provenance():
    cat = _catalog()
    for sql in QUERIES:
        query = parse_query(sql)
        assert try_vector_core(query, cat) is not None, sql
        out = execute(query, cat, config=UNCACHED)
        assert getattr(out.provenance, "lazy_provenance", False), sql


def test_set_vector_enabled_toggles_the_fast_path():
    cat = _catalog()
    query = parse_query(QUERIES[0])
    prev = set_vector_enabled(False)
    try:
        assert try_vector_core(query, cat) is None
        out = execute(query, cat, config=UNCACHED)
        # Object-columnar tier: provenance is an eagerly built list...
        assert isinstance(out.provenance, list)
    finally:
        set_vector_enabled(prev)
    # ...and results agree across tiers regardless of the toggle.
    assert _normalized(out) == _normalized(execute(query, cat, config=UNCACHED))


def test_ineligible_shapes_fall_back_cleanly():
    cat = _catalog()
    # LEFT joins stay with the object-columnar resolver.
    query = parse_query(
        "SELECT category, label FROM t LEFT JOIN d ON k = k"
    )
    assert try_vector_core(query, cat) is None
    assert _normalized(execute(query, cat, config=UNCACHED)) == _normalized(
        execute(query, cat, config=ROW)
    )
