"""The concurrent delivery daemon: locking, linearizability, faults, HTTP.

The heart of this file is serial-equivalence: N concurrent deliveries
interleaved with catalog/PLA/report mutations must produce payloads, audit
hash chains, and enforcement decisions byte-identical to *some* serial
order — the daemon's commit log names that order, and
:func:`repro.service.check_linearizable` replays it on a fresh deployment
to verify. A hypothesis property drives 200+ randomized concurrent
schedules through a small deployment; a heavyweight test drives 32
consumers against the full scenario.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import RWLock
from repro.errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.resilience import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    DeliveryResilience,
    FaultInjector,
    ResiliencePolicy,
    RetryPolicy,
    named_plan,
)
from repro.service import (
    LOAD_MIXES,
    DeliveryDaemon,
    LoadSpec,
    MUTATION_KINDS,
    MutationSpec,
    ServiceState,
    apply_mutation_to,
    build_schedule,
    check_linearizable,
    payload_hash,
    percentile,
    run_load,
    start_http_server,
)
from repro.service.loadgen import ROLE_TO_USER
from repro.simulation.scenario import ScenarioConfig, build_scenario
from repro.workloads.healthcare import HealthcareConfig

# A deliberately small deployment: builds in ~20ms, so the hypothesis
# property can afford a fresh one (plus its serial replay twin) per example.
SMALL_CONFIG = ScenarioConfig(
    healthcare=HealthcareConfig(n_patients=30, n_prescriptions=60),
    n_reports=8,
)


def small_scenario():
    return build_scenario(SMALL_CONFIG)


@pytest.fixture(scope="module")
def full_scenario_factory():
    return build_scenario


def _fault_free(state):
    """Strip any process-default resilience (a REPRO_FAULTS environment
    installs one on every service) — these tests assert exact outcomes
    and serial equivalence, so the live run must be fault-free. Fault
    behaviour is exercised explicitly in TestDegradedService.
    """
    state.service.resilience = None
    return state


@pytest.fixture
def small_state():
    return _fault_free(ServiceState(small_scenario(), factory=small_scenario))


def _compliant_args(definition):
    role = sorted(definition.audience)[0]
    return {"user": ROLE_TO_USER[role], "purpose": definition.purpose}


def _no_sleep(_s: float) -> None:
    pass


def _fault_resilience(plan_name: str, *, breakers: BreakerRegistry | None = None):
    return DeliveryResilience(
        policy=ResiliencePolicy(
            injector=FaultInjector(named_plan(plan_name), sleep=_no_sleep),
            retry=RetryPolicy(max_attempts=2),
            breakers=breakers,
            sleep=_no_sleep,
        ),
        mode="degrade",
    )


# ---------------------------------------------------------------------------
# RWLock
# ---------------------------------------------------------------------------


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        entered = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log: list[str] = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                log.append("read")

        def writer():
            with lock.write_locked():
                log.append("write")

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        assert log == []  # both blocked behind the held write lock
        lock.release_write()
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(log) == ["read", "write"]

    def test_write_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()
        late_reader_ran = threading.Event()

        def writer():
            writer_started.set()
            with lock.write_locked():
                writer_done.set()

        def late_reader():
            writer_started.wait(timeout=5.0)
            time.sleep(0.05)  # let the writer queue up first
            with lock.read_locked():
                # The waiting writer must have gone first.
                assert writer_done.is_set()
                late_reader_ran.set()

        w = threading.Thread(target=writer)
        r = threading.Thread(target=late_reader)
        w.start()
        r.start()
        time.sleep(0.1)
        assert not writer_done.is_set()  # still blocked on the held read lock
        lock.release_read()
        w.join(timeout=5.0)
        r.join(timeout=5.0)
        assert writer_done.is_set() and late_reader_ran.is_set()

    def test_acquire_timeouts(self):
        lock = RWLock()
        lock.acquire_write()
        assert lock.acquire_read(timeout=0.05) is False
        assert lock.acquire_write(timeout=0.05) is False
        lock.release_write()
        assert lock.acquire_read(timeout=0.05) is True
        assert lock.acquire_write(timeout=0.05) is False  # reader held
        lock.release_read()

    def test_snapshot_counts(self):
        lock = RWLock()
        with lock.read_locked():
            assert lock.snapshot()["active_readers"] == 1
        idle = lock.snapshot()
        assert idle["active_readers"] == 0
        assert idle["writer_active"] is False
        assert idle["writers_waiting"] == 0


# ---------------------------------------------------------------------------
# Daemon basics
# ---------------------------------------------------------------------------


class TestDaemonBasics:
    def test_rejects_bad_configuration(self, small_state):
        with pytest.raises(ServiceError):
            DeliveryDaemon(small_state, workers=0)
        with pytest.raises(ServiceError):
            DeliveryDaemon(small_state, queue_size=0)

    def test_submit_to_stopped_daemon_is_typed(self, small_state):
        daemon = DeliveryDaemon(small_state)
        with pytest.raises(ServiceStoppedError):
            daemon.submit_delivery("rpt_000", user="ann", purpose="care/quality")

    def test_full_queue_sheds_with_typed_error(self, small_state):
        # One worker, tiny queue, and the worker is parked on a slow job.
        daemon = DeliveryDaemon(small_state, workers=1, queue_size=2)
        gate = threading.Event()
        original = small_state.service.deliver

        def slow_deliver(*args, **kwargs):
            gate.wait(timeout=10.0)
            return original(*args, **kwargs)

        small_state.service.deliver = slow_deliver
        definition = small_state.scenario.workload[0]
        args = _compliant_args(definition)
        with daemon:
            futures = [
                daemon.submit_delivery(definition.name, wait=False, **args)
            ]
            # Fill the queue while the worker holds job 1.
            deadline = time.monotonic() + 5.0
            with pytest.raises(ServiceOverloadedError):
                while time.monotonic() < deadline:
                    futures.append(
                        daemon.submit_delivery(definition.name, wait=False, **args)
                    )
            gate.set()
            for f in futures:
                f.result(timeout=10.0)
        assert daemon.counts().get("deliver:shed", 0) >= 1

    def test_sessions_track_consumers(self, small_state):
        with DeliveryDaemon(small_state, workers=2) as daemon:
            definition = small_state.scenario.workload[0]
            compliant_user = _compliant_args(definition)["user"]
            other = next(
                u for u in sorted(ROLE_TO_USER.values()) if u != compliant_user
            )
            for _ in range(3):
                daemon.deliver(definition.name, **_compliant_args(definition))
            daemon.deliver(definition.name, user=other, purpose="care/quality")
            sessions = {s.consumer: s.as_dict() for s in daemon.sessions()}
        assert sessions[compliant_user]["submitted"] == 3
        assert sessions[compliant_user]["delivered"] + sessions[compliant_user][
            "refused"
        ] == 3
        assert sessions[other]["submitted"] == 1

    def test_stats_shape(self, small_state):
        with DeliveryDaemon(small_state) as daemon:
            definition = small_state.scenario.workload[0]
            daemon.deliver(definition.name, **_compliant_args(definition))
            daemon.mutate(MutationSpec("insert_rows", seed=1))
            stats = daemon.stats()
        for key in (
            "running", "workers", "queue_depth", "queue_size", "epoch",
            "commits", "refusals", "audit_records", "outcomes", "sessions",
            "lock",
        ):
            assert key in stats
        assert stats["epoch"] == 1
        assert stats["outcomes"].get("mutate:applied") == 1

    def test_stop_drains_accepted_jobs(self, small_state):
        daemon = DeliveryDaemon(small_state, workers=2).start()
        definition = small_state.scenario.workload[0]
        args = _compliant_args(definition)
        futures = [
            daemon.submit_delivery(definition.name, **args) for _ in range(8)
        ]
        daemon.stop()
        assert all(f.done() for f in futures)
        assert not daemon.running


# ---------------------------------------------------------------------------
# Deterministic mutations
# ---------------------------------------------------------------------------


class TestMutations:
    def test_unknown_kind_is_typed(self):
        with pytest.raises(ServiceError):
            MutationSpec("drop_everything")

    @pytest.mark.parametrize("kind", MUTATION_KINDS)
    def test_each_kind_is_deterministic(self, kind):
        specs = [MutationSpec(kind, seed=s) for s in (0, 3, 7)]
        hashes = []
        for _ in range(2):
            scenario = small_scenario()
            service = scenario.delivery_service()
            service.resilience = None  # determinism needs a fault-free run
            for spec in specs:
                apply_mutation_to(scenario, spec)
            definition = scenario.workload[0]
            try:
                instance = service.deliver(
                    definition.name, **_compliant_args(definition)
                )
                hashes.append(payload_hash(instance))
            except Exception as exc:  # refusals must also be deterministic
                hashes.append(f"refused:{exc}")
        assert hashes[0] == hashes[1]

    def test_insert_rows_bumps_data_version(self):
        scenario = small_scenario()
        fact = scenario.bi_catalog.table(scenario.star.fact.name)
        before_rows, before_version = len(fact.rows), fact.data_version
        apply_mutation_to(scenario, MutationSpec("insert_rows", seed=5))
        assert len(fact.rows) == before_rows + 1
        assert fact.data_version > before_version

    def test_revise_pla_bumps_version_and_reattaches(self):
        scenario = small_scenario()
        meta = list(scenario.metareports)[0]
        before = meta.pla.version
        apply_mutation_to(scenario, MutationSpec("revise_pla", seed=0))
        assert list(scenario.metareports)[0].pla.version > before

    def test_redefine_report_bumps_report_version(self):
        scenario = small_scenario()
        name = scenario.report_catalog.all_current()[0].name
        before = scenario.report_catalog.current(name).version
        apply_mutation_to(scenario, MutationSpec("redefine_report", seed=0))
        assert scenario.report_catalog.current(name).version == before + 1

    def test_epoch_advances_and_is_logged(self, small_state):
        with small_state.lock.write_locked():
            entry = small_state.apply_mutation(MutationSpec("insert_rows", seed=2))
        assert small_state.epoch == 1 and entry.epoch == 1
        commits, _refusals = small_state.logs_snapshot()
        assert commits[-1].kind == "mutate"
        assert commits[-1].mutation == MutationSpec("insert_rows", seed=2)


# ---------------------------------------------------------------------------
# Linearizability
# ---------------------------------------------------------------------------


def _run_concurrent(state, ops, *, workers=4):
    """Submit every op concurrently from its own thread; wait for all."""
    daemon = DeliveryDaemon(state, workers=workers, queue_size=max(64, len(ops)))
    results = []
    with daemon:
        futures = []
        for op in ops:
            if op[0] == "mutate":
                futures.append(daemon.submit_mutation(op[1]))
            else:
                _, report, user, purpose = op
                futures.append(
                    daemon.submit_delivery(report, user=user, purpose=purpose)
                )
        results = [f.result(timeout=60.0) for f in futures]
    return results


def _ops_strategy(n_reports=8):
    deliver = st.tuples(
        st.just("deliver"),
        st.integers(min_value=0, max_value=n_reports - 1),
        st.sampled_from(sorted(ROLE_TO_USER.values())),
        st.sampled_from(
            ["care/quality", "admin/reimbursement", "research/epidemiology"]
        ),
    )
    mutate = st.tuples(
        st.just("mutate"),
        st.sampled_from(MUTATION_KINDS),
        st.integers(min_value=0, max_value=9999),
    )
    return st.lists(
        st.one_of(deliver, deliver, deliver, mutate), min_size=4, max_size=12
    )


class TestLinearizability:
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(ops=_ops_strategy(), workers=st.integers(min_value=2, max_value=6))
    def test_concurrent_runs_equal_some_serial_order(self, ops, workers):
        """200+ randomized concurrent schedules all replay byte-identically."""
        scenario = small_scenario()
        state = _fault_free(ServiceState(scenario, factory=small_scenario))
        names = [d.name for d in scenario.workload]
        resolved = []
        for op in ops:
            if op[0] == "mutate":
                resolved.append(("mutate", MutationSpec(op[1], seed=op[2])))
            else:
                resolved.append(("deliver", names[op[1]], op[2], op[3]))
        _run_concurrent(state, resolved, workers=workers)
        commit_log, refusal_log = state.logs_snapshot()
        report = check_linearizable(small_scenario, commit_log, refusal_log)
        assert report.ok, report.violations
        # Everything that produced an audit record was re-checked.
        deliver_commits = [e for e in commit_log if e.kind == "deliver"]
        assert report.deliveries_checked == len(deliver_commits)
        assert state.service.audit_log.verify_chain()

    def test_32_consumers_with_interleaved_mutations_full_scenario(
        self, full_scenario_factory
    ):
        """The acceptance-criteria run: 32 concurrent consumers, live writers."""
        scenario = full_scenario_factory()
        state = _fault_free(
            ServiceState(scenario, factory=full_scenario_factory)
        )
        daemon = DeliveryDaemon(state, workers=8, queue_size=128)
        spec = LoadSpec(
            consumers=32, requests_per_consumer=4, mix="mutation_heavy", seed=7
        )
        with daemon:
            result = run_load(daemon, scenario, spec)
        assert result.requests == 128
        assert result.epoch > 0, "the mix must actually mutate mid-run"
        commit_log, refusal_log = state.logs_snapshot()
        report = check_linearizable(
            full_scenario_factory, commit_log, refusal_log
        )
        assert report.ok, report.violations
        assert report.mutations_checked == result.epoch
        assert state.service.audit_log.verify_chain()
        # Latency percentiles are monotone and populated.
        assert 0 < result.p50_ms <= result.p95_ms <= result.p99_ms

    def test_commit_log_is_audit_chain_order(self, small_state):
        definition = small_state.scenario.workload[0]
        args = _compliant_args(definition)
        ops = [("deliver", definition.name, args["user"], args["purpose"])] * 6
        _run_concurrent(small_state, ops)
        commits, _ = small_state.logs_snapshot()
        sequences = [e.sequence for e in commits if e.kind == "deliver"]
        assert sequences == sorted(sequences)
        records = small_state.service.audit_log.records
        assert [r.sequence for r in records] == sequences

    def test_detects_a_tampered_commit_log(self, small_state):
        from dataclasses import replace as dc_replace

        ops = [
            ("deliver", d.name, _compliant_args(d)["user"], d.purpose)
            for d in small_state.scenario.workload
        ]
        _run_concurrent(small_state, ops)
        commits, refusals = small_state.logs_snapshot()
        delivered = [e for e in commits if e.kind == "deliver"]
        assert delivered, "at least one compliant report must deliver"
        tampered = tuple(
            dc_replace(e, payload_hash="0" * 64) if e is delivered[0] else e
            for e in commits
        )
        report = check_linearizable(small_scenario, tampered, refusals)
        assert not report.ok
        assert any("payload hash diverged" in v for v in report.violations)


# ---------------------------------------------------------------------------
# Faults against a running daemon
# ---------------------------------------------------------------------------


class TestDegradedService:
    def _deliver_all(self, daemon, scenario):
        futures = [
            daemon.submit_delivery(d.name, **_compliant_args(d))
            for d in scenario.workload
        ]
        return [f.result(timeout=60.0) for f in futures]

    def test_fault_plan_injected_into_running_daemon(self):
        scenario = small_scenario()
        state = _fault_free(ServiceState(scenario, factory=small_scenario))
        with DeliveryDaemon(state, workers=4) as daemon:
            healthy = self._deliver_all(daemon, scenario)
            assert all(r.outcome in ("delivered", "refused") for r in healthy)
            baseline = {
                r.instance.definition.name: Counter(r.instance.table.rows)
                for r in healthy
                if r.instance is not None
            }

            # Swap the resilience policy while the daemon is live.
            daemon.set_resilience(_fault_resilience("blackout"))
            faulted = self._deliver_all(daemon, scenario)

            degraded = [r for r in faulted if r.outcome == "degraded"]
            assert degraded, "blackout must degrade hospital-fed reports"
            for r in degraded:
                instance = r.instance
                assert instance.degraded
                assert "hospital/prescriptions" in instance.degraded_sources
                assert instance.fault_cause
                # Strictly subtractive: no row a healthy delivery lacked.
                name = instance.definition.name
                assert not Counter(instance.table.rows) - baseline[name]

            # Recovery: uninstall and the daemon serves healthy again.
            daemon.set_resilience(None)
            recovered = self._deliver_all(daemon, scenario)
            assert not any(r.outcome == "degraded" for r in recovered)
        assert state.service.audit_log.verify_chain()

    def test_breakers_open_per_source_under_blackout(self):
        scenario = small_scenario()
        state = ServiceState(scenario, factory=small_scenario)
        breakers = BreakerRegistry(
            BreakerConfig(failure_threshold=2, cooldown_s=1000.0)
        )
        with DeliveryDaemon(state, workers=4) as daemon:
            daemon.set_resilience(
                _fault_resilience("blackout", breakers=breakers)
            )
            for _ in range(3):
                self._deliver_all(daemon, scenario)
        assert breakers.get("hospital/prescriptions").state is BreakerState.OPEN
        # Only the blacked-out source trips; healthy sources stay closed.
        for breaker in breakers:
            if breaker.name != "hospital/prescriptions":
                assert breaker.state is BreakerState.CLOSED

    def test_smoke_and_flaky_plans_keep_outcomes_typed(self):
        for plan in ("smoke", "flaky"):
            scenario = small_scenario()
            state = ServiceState(scenario, factory=small_scenario)
            with DeliveryDaemon(state, workers=4) as daemon:
                daemon.set_resilience(_fault_resilience(plan))
                results = self._deliver_all(daemon, scenario)
                results += self._deliver_all(daemon, scenario)
            allowed = {"delivered", "degraded", "refused", "unavailable"}
            assert {r.outcome for r in results} <= allowed
            # Refusal log entries carry the typed kind and an epoch.
            _, refusals = state.logs_snapshot()
            assert all(r.kind in ("refused", "unavailable") for r in refusals)
            assert state.service.audit_log.verify_chain()


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------


class TestLoadgen:
    def test_schedule_is_deterministic(self):
        scenario = small_scenario()
        spec = LoadSpec(consumers=6, requests_per_consumer=9, seed=42)
        assert build_schedule(scenario, spec) == build_schedule(scenario, spec)

    def test_schedule_changes_with_seed(self):
        scenario = small_scenario()
        a = build_schedule(scenario, LoadSpec(consumers=4, seed=1))
        b = build_schedule(scenario, LoadSpec(consumers=4, seed=2))
        assert a != b

    def test_mix_controls_mutation_rate(self):
        scenario = small_scenario()
        spec = LoadSpec(
            consumers=8, requests_per_consumer=50, mix="mutation_heavy", seed=3
        )
        ops = [op for sched in build_schedule(scenario, spec) for op in sched]
        rate = sum(1 for op in ops if op[0] == "mutate") / len(ops)
        assert 0.2 < rate < 0.4  # ~30%

    def test_unknown_mix_is_typed(self):
        with pytest.raises(ServiceError):
            LoadSpec(mix="write_only")

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_run_load_counts_every_request(self, small_state):
        spec = LoadSpec(consumers=4, requests_per_consumer=5, seed=9)
        daemon = DeliveryDaemon(small_state, workers=4)
        with daemon:
            result = run_load(daemon, small_state.scenario, spec)
        assert result.requests == 20
        assert sum(result.outcomes.values()) == 20
        assert result.throughput_rps > 0
        assert set(LOAD_MIXES) == {"read_heavy", "mutation_heavy"}


# ---------------------------------------------------------------------------
# HTTP face
# ---------------------------------------------------------------------------


class TestHttpd:
    @pytest.fixture
    def served(self, small_state):
        daemon = DeliveryDaemon(small_state, workers=2).start()
        server = start_http_server(daemon)
        port = server.server_address[1]
        yield daemon, f"http://127.0.0.1:{port}"
        server.shutdown()
        daemon.stop()

    def test_healthz_and_stats(self, served):
        daemon, base = served
        health = json.load(urllib.request.urlopen(f"{base}/healthz"))
        assert health["ok"] is True and health["epoch"] == 0
        daemon.mutate(MutationSpec("insert_rows", seed=1))
        stats = json.load(urllib.request.urlopen(f"{base}/stats"))
        assert stats["epoch"] == 1 and stats["running"] is True

    def test_metrics_scrape_has_service_families(self, served):
        daemon, base = served
        definition = daemon.state.scenario.workload[0]
        daemon.deliver(definition.name, **_compliant_args(definition))
        body = urllib.request.urlopen(f"{base}/metrics").read().decode()
        assert "repro_service_requests_total" in body
        assert "repro_service_epoch" in body

    def test_post_deliver_round_trip(self, served):
        daemon, base = served
        definition = daemon.state.scenario.workload[0]
        args = _compliant_args(definition)
        payload = json.dumps(
            {"report": definition.name, "user": args["user"],
             "purpose": args["purpose"]}
        ).encode()
        request = urllib.request.Request(f"{base}/deliver", data=payload)
        out = json.load(urllib.request.urlopen(request))
        assert out["outcome"] in ("delivered", "refused")
        assert out["epoch"] == 0

    def test_post_deliver_bad_body_is_400(self, served):
        _daemon, base = served
        request = urllib.request.Request(f"{base}/deliver", data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_unknown_path_is_404(self, served):
        _daemon, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404
