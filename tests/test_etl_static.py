"""Tests for design-time (static) ETL flow checking — §6's design-time half."""

import pytest

from repro.etl import (
    AggregateOp,
    EtlFlow,
    EtlPlaRegistry,
    ExtractOp,
    IntegrateOp,
    IntegrationProhibition,
    JoinOp,
    JoinProhibition,
    LoadOp,
    OperationRestriction,
)
from repro.relational import Catalog
from repro.relational.algebra import AggSpec
from repro.workloads import paper_drugcost, paper_familydoctor, paper_prescriptions


def laundering_flow() -> EtlFlow:
    flow = EtlFlow("f")
    flow.add(ExtractOp("x1", paper_prescriptions(), "p"))
    flow.add(ExtractOp("x2", paper_familydoctor(), "fd"))
    flow.add(ExtractOp("x3", paper_drugcost(), "c"))
    flow.add(
        IntegrateOp(
            "fill", "p", "fd", "filled",
            key=("patient", "patient"),
            fill_column="doctor",
            reference_column="doctor",
        )
    )
    flow.add(JoinOp("j", "filled", "c", [("drug", "drug")], "joined"))
    flow.add(LoadOp("load", "joined", "dwh"))
    return flow


def prohibition() -> EtlPlaRegistry:
    registry = EtlPlaRegistry()
    registry.add(
        JoinProhibition(
            "no-mix", "municipality",
            "municipality/familydoctor", "health_agency/drugcost",
        )
    )
    return registry


class TestStaticFootprints:
    def test_footprints_flow_through_operators(self):
        footprints = laundering_flow().static_footprints()
        assert footprints["p"] == frozenset({"hospital/prescriptions"})
        assert footprints["filled"] == frozenset(
            {"hospital/prescriptions", "municipality/familydoctor"}
        )
        assert footprints["joined"] >= footprints["filled"] | footprints["c"]

    def test_catalog_inputs_included(self):
        catalog = Catalog()
        catalog.add_table(paper_prescriptions())
        flow = EtlFlow("f")
        flow.add(
            AggregateOp(
                "agg", "prescriptions", "out",
                group_by=["drug"], aggs=[AggSpec("count", None, "n")],
            )
        )
        footprints = flow.static_footprints(catalog)
        assert footprints["out"] == frozenset({"hospital/prescriptions"})


class TestPrecheck:
    def test_finds_laundered_join_without_running(self):
        violations = laundering_flow().precheck(prohibition())
        assert [v.operator for v in violations] == ["j"]
        assert "familydoctor" in violations[0].message

    def test_clean_flow_passes(self):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", paper_prescriptions(), "p"))
        flow.add(
            AggregateOp(
                "agg", "p", "out", group_by=["drug"],
                aggs=[AggSpec("count", None, "n")],
            )
        )
        assert flow.precheck(prohibition()) == []

    def test_integration_prohibition_static(self):
        flow = laundering_flow()
        registry = EtlPlaRegistry()
        registry.add(IntegrationProhibition("no-muni-er", "municipality"))
        violations = flow.precheck(registry)
        assert [v.operator for v in violations] == ["fill"]

    def test_operation_restriction_static(self):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", paper_prescriptions(), "p"))
        flow.add(
            AggregateOp(
                "agg", "p", "out", group_by=["drug"],
                aggs=[AggSpec("count", None, "n")],
            )
        )
        registry = EtlPlaRegistry()
        registry.add(
            OperationRestriction(
                "no-agg", "hospital", "hospital/prescriptions", {"aggregate"}
            )
        )
        violations = flow.precheck(registry)
        assert [v.operator for v in violations] == ["agg"]

    def test_static_agrees_with_runtime(self):
        """Design-time and runtime checks must flag the same operators."""
        flow = laundering_flow()
        registry = prohibition()
        static_ops = {v.operator for v in flow.precheck(registry)}
        runtime = laundering_flow().run(Catalog(), pla=registry)
        runtime_ops = {v.operator for v in runtime.violations}
        assert static_ops == runtime_ops
