"""Edge-case tests for engine internals: view depth, VPD expansion, misc."""

import pytest

from repro.errors import QueryError
from repro.policy import ColumnMask, SubjectRegistry, VPDPolicy, VPDRule
from repro.relational import (
    Catalog,
    Query,
    Table,
    View,
    execute,
    make_schema,
    parse_query,
)
from repro.relational.types import ColumnType


def one_column_table(name="t0"):
    return Table.from_rows(
        name, make_schema(("a", ColumnType.INT)), [(1,), (2,)], provider="p"
    )


class TestViewChains:
    def test_deep_view_chain_executes(self):
        cat = Catalog()
        cat.add_table(one_column_table())
        for i in range(1, 20):
            cat.add_view(View(f"t{i}", parse_query(f"SELECT a FROM t{i - 1}")))
        out = execute(parse_query("SELECT a FROM t19"), cat)
        assert len(out) == 2
        # lineage survives 19 levels of views
        assert {r.table for r in out.all_lineage()} == {"t0"}

    def test_view_depth_limit_enforced(self):
        cat = Catalog()
        cat.add_table(one_column_table())
        for i in range(1, 40):
            cat.add_view(View(f"t{i}", parse_query(f"SELECT a FROM t{i - 1}")))
        with pytest.raises(QueryError, match="nesting"):
            execute(parse_query("SELECT a FROM t39"), cat)

    def test_view_over_missing_relation_fails_at_execution(self):
        cat = Catalog()
        cat.add_view(View("v", parse_query("SELECT a FROM ghost")))
        with pytest.raises(QueryError):
            execute(parse_query("SELECT a FROM v"), cat)


class TestVpdExpansionEdges:
    def _world(self):
        cat = Catalog()
        cat.add_table(one_column_table("t"))
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        return cat, subjects.context("ann", "care")

    def test_select_star_through_projected_view_masks(self):
        cat, ctx = self._world()
        cat.add_view(View("v", parse_query("SELECT a FROM t")))
        policy = VPDPolicy()
        policy.add_rule(VPDRule("t", masks=(ColumnMask("a", -1),)))
        out = policy.run(parse_query("SELECT * FROM v"), cat, ctx)
        assert all(r[0] == -1 for r in out.rows)

    def test_select_star_through_star_view_rejected(self):
        cat, ctx = self._world()
        cat.add_view(View("v", Query.from_("t")))  # SELECT * view
        policy = VPDPolicy()
        policy.add_rule(VPDRule("t", masks=(ColumnMask("a"),)))
        with pytest.raises(QueryError, match="expand"):
            policy.run(parse_query("SELECT * FROM v"), cat, ctx)

    def test_computed_column_over_masked_rejected(self):
        cat, ctx = self._world()
        policy = VPDPolicy()
        policy.add_rule(VPDRule("t", masks=(ColumnMask("a"),)))
        with pytest.raises(QueryError, match="masked"):
            policy.run(parse_query("SELECT a + 1 AS b FROM t"), cat, ctx)


class TestParserEdges:
    def test_group_by_date_column(self):
        # "date" is both a keyword and the paper's column name.
        q = parse_query("SELECT date, COUNT(*) AS n FROM t GROUP BY date ORDER BY date")
        assert q.group_by == ("date",)
        assert q.order == (("date", False),)

    def test_limit_zero(self, paper_catalog):
        out = execute(parse_query("SELECT patient FROM prescriptions LIMIT 0"), paper_catalog)
        assert len(out) == 0

    def test_empty_in_list_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t WHERE a IN ()")

    def test_double_where_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t WHERE a = 1 WHERE b = 2")
