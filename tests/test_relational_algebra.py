"""Unit tests for the relational algebra operators and their provenance rules."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.relational import algebra
from repro.relational.algebra import AggSpec
from repro.relational.expressions import Arith, col, lit
from repro.relational.table import RowId, Table, make_schema
from repro.relational.types import ColumnType


def presc():
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    return Table.from_rows(
        "p",
        schema,
        [("Alice", "DH", 60), ("Bob", "DR", 10), ("Alice", "DR", 10)],
        provider="h",
    )


def costs():
    schema = make_schema(("drug", ColumnType.STRING), ("price", ColumnType.INT))
    return Table.from_rows("c", schema, [("DH", 60), ("DR", 10)], provider="a")


class TestSelect:
    def test_filters_rows(self):
        out = algebra.select(presc(), col("cost") > 20)
        assert [r[0] for r in out.rows] == ["Alice"]

    def test_keeps_provenance(self):
        out = algebra.select(presc(), col("patient") == "Bob")
        assert out.lineage_of(0) == frozenset([RowId("h", "p", 1)])

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            algebra.select(presc(), col("nope") > 1)


class TestProject:
    def test_plain_columns(self):
        out = algebra.project(presc(), ["drug", "cost"])
        assert out.schema.names == ("drug", "cost")

    def test_computed_column_type_inference(self):
        out = algebra.project(
            presc(), ["patient", ("double_cost", Arith("*", col("cost"), lit(2)))]
        )
        assert out.schema.column("double_cost").ctype is ColumnType.INT
        assert out.rows[0][1] == 120

    def test_copy_keeps_where_provenance(self):
        out = algebra.project(presc(), [("who", col("patient"))])
        refs = out.provenance[0].where_of("who")
        assert {r.column for r in refs} == {"patient"}

    def test_computed_column_where_is_derived_union(self):
        out = algebra.project(
            presc(), [("x", Arith("+", col("cost"), lit(1)))]
        )
        refs = out.provenance[0].where_of("x")
        assert {r.column for r in refs} == {"cost"}

    def test_extend_keeps_existing(self):
        out = algebra.extend(presc(), [("flag", col("cost") > 20)])
        assert out.schema.names == ("patient", "drug", "cost", "flag")
        assert out.rows[0][3] is True


class TestRename:
    def test_rename_columns_and_where(self):
        out = algebra.rename(presc(), {"patient": "person"})
        assert "person" in out.schema
        refs = out.provenance[0].where_of("person")
        assert {r.column for r in refs} == {"patient"}


class TestJoin:
    def test_inner_join_matches(self):
        out = algebra.join(presc(), costs(), [("drug", "drug")])
        assert len(out) == 3
        # collision on "drug" gets qualified
        assert "p.drug" in out.schema and "c.drug" in out.schema

    def test_join_merges_lineage(self):
        out = algebra.join(presc(), costs(), [("drug", "drug")])
        providers = {r.provider for r in out.lineage_of(0)}
        assert providers == {"h", "a"}

    def test_left_join_keeps_unmatched(self):
        extra = presc()
        extra.insert(("Zed", "DX", 5))
        out = algebra.join(extra, costs(), [("drug", "drug")], how="left")
        assert len(out) == 4
        zed = [r for r in out.rows if r[0] == "Zed"][0]
        assert zed[-1] is None  # price is NULL

    def test_null_keys_never_match(self):
        left = presc()
        left.insert((None, None, 1))
        out = algebra.join(left, costs(), [("drug", "drug")])
        assert len(out) == 3

    def test_bad_join_type_rejected(self):
        with pytest.raises(QueryError):
            algebra.join(presc(), costs(), [("drug", "drug")], how="semi")

    def test_empty_on_rejected(self):
        with pytest.raises(QueryError):
            algebra.join(presc(), costs(), [])

    def test_cross_join_with_on_pairs_rejected(self):
        with pytest.raises(QueryError):
            algebra.join(presc(), costs(), [("drug", "drug")], how="cross")


class TestUnionDistinct:
    def test_union_concatenates(self):
        out = algebra.union(presc(), presc())
        assert len(out) == 6

    def test_union_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            algebra.union(presc(), costs())

    def test_distinct_merges_duplicates_and_provenance(self):
        doubled = algebra.union(presc(), presc())
        out = algebra.distinct(doubled)
        assert len(out) == 3
        # each kept row's lineage unions both duplicates (same base ids here)
        assert all(len(out.lineage_of(i)) == 1 for i in range(3))


class TestAggregate:
    def test_group_by_with_count_and_sum(self):
        out = algebra.aggregate(
            presc(),
            ["patient"],
            [AggSpec("count", None, "n"), AggSpec("sum", "cost", "total")],
        )
        by_patient = {r[0]: (r[1], r[2]) for r in out.rows}
        assert by_patient == {"Alice": (2, 70), "Bob": (1, 10)}

    def test_group_lineage_is_union_of_members(self):
        out = algebra.aggregate(presc(), ["patient"], [AggSpec("count", None, "n")])
        alice = [i for i in range(len(out)) if out.rows[i][0] == "Alice"][0]
        assert len(out.lineage_of(alice)) == 2

    def test_global_aggregate_on_empty_input(self):
        empty = Table("e", presc().schema, provider="h")
        out = algebra.aggregate(empty, [], [AggSpec("count", None, "n")])
        assert out.rows == [(0,)]

    def test_avg_min_max(self):
        out = algebra.aggregate(
            presc(),
            [],
            [
                AggSpec("avg", "cost", "avg"),
                AggSpec("min", "cost", "lo"),
                AggSpec("max", "cost", "hi"),
            ],
        )
        avg, lo, hi = out.rows[0]
        assert (round(avg, 2), lo, hi) == (26.67, 10, 60)

    def test_count_distinct(self):
        out = algebra.aggregate(
            presc(), [], [AggSpec("count", "drug", "kinds", distinct=True)]
        )
        assert out.rows[0][0] == 2

    def test_sum_of_all_nulls_is_null(self):
        schema = make_schema(("v", ColumnType.INT))
        t = Table.from_rows("t", schema, [(None,), (None,)])
        out = algebra.aggregate(t, [], [AggSpec("sum", "v", "s")])
        assert out.rows[0][0] is None

    def test_count_star_requires_count(self):
        with pytest.raises(QueryError):
            AggSpec("sum", None, "bad")

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            AggSpec("median", "cost", "m")


class TestOrderLimit:
    def test_order_asc_desc(self):
        out = algebra.order_by(presc(), [("cost", True), ("patient", False)])
        assert [r[2] for r in out.rows] == [60, 10, 10]

    def test_nulls_sort_last(self):
        t = presc()
        t.insert(("Nil", "DX", None))
        out = algebra.order_by(t, [("cost", False)])
        assert out.rows[-1][2] is None
        out_desc = algebra.order_by(t, [("cost", True)])
        assert out_desc.rows[-1][2] is None

    def test_limit(self):
        assert len(algebra.limit(presc(), 2)) == 2

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            algebra.limit(presc(), -1)
