"""Tests for data-subject access reports."""

import pytest

from repro.audit import subject_access_report, subject_row_ids

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


@pytest.fixture(scope="module")
def deliveries(scenario):
    instances = []
    verdicts = scenario.checker.check_catalog(scenario.report_catalog.all_current())
    for name, verdict in sorted(verdicts.items()):
        if not verdict.compliant:
            continue
        report = scenario.report_catalog.current(name)
        role = sorted(report.audience)[0]
        context = scenario.subjects.context(ROLE_TO_USER[role], report.purpose)
        instances.append(scenario.enforcer.generate(report, context, verdict))
    return instances


class TestSubjectRowIds:
    def test_finds_records_across_providers(self, scenario):
        providers = list(scenario.providers.values())
        subject = scenario.data.patients[0]
        row_ids = subject_row_ids(providers, subject)
        tables = {(r.provider, r.table) for r in row_ids}
        # The first (Zipf-favored) patient appears in several holdings.
        assert ("municipality", "familydoctor") in tables
        assert ("municipality", "residents") in tables
        assert any(p == "hospital" for p, _ in tables)

    def test_unknown_subject_empty(self, scenario):
        assert subject_row_ids(list(scenario.providers.values()), "Nobody") == frozenset()


class TestAccessReport:
    def test_popular_patient_is_involved(self, scenario, deliveries):
        subject = scenario.data.patients[0]  # Zipf head: in many rows
        report = subject_access_report(
            subject, list(scenario.providers.values()), deliveries
        )
        assert report.base_records > 0
        assert report.involved_anywhere
        text = report.describe()
        assert subject in text and "delivery(ies) involved" in text
        for involvement in report.involvements:
            assert involvement.records_used >= 1
            assert involvement.rows_involving_subject

    def test_involvement_matches_lineage_ground_truth(self, scenario, deliveries):
        subject = scenario.data.patients[0]
        providers = list(scenario.providers.values())
        row_ids = subject_row_ids(providers, subject)
        report = subject_access_report(subject, providers, deliveries)
        by_name = {
            (i.report, i.consumer): set(i.rows_involving_subject)
            for i in report.involvements
        }
        for instance in deliveries:
            expected = {
                i
                for i in range(len(instance.table))
                if instance.table.lineage_of(i) & row_ids
            }
            got = by_name.get((instance.definition.name, instance.consumer), set())
            assert got == expected

    def test_unknown_subject_not_involved(self, scenario, deliveries):
        report = subject_access_report(
            "Nobody", list(scenario.providers.values()), deliveries
        )
        assert not report.involved_anywhere
        assert report.base_records == 0

    def test_hiv_patient_rows_never_delivered(self, scenario, deliveries):
        """An HIV-only patient's prescription rows must reach no report
        (the intensional PLA drops them before aggregation)."""
        hiv_patients = {
            row["patient"]
            for row in scenario.data.prescriptions.iter_dicts()
            if row["disease"] == "HIV"
        }
        only_hiv = [
            p
            for p in hiv_patients
            if all(
                row["disease"] == "HIV"
                for row in scenario.data.prescriptions.iter_dicts()
                if row["patient"] == p
            )
        ]
        if not only_hiv:
            pytest.skip("no HIV-only patient in this seed")
        subject = only_hiv[0]
        providers = [scenario.providers["hospital"]]
        report = subject_access_report(subject, providers, deliveries)
        # Their prescription records contribute to nothing delivered.
        assert not report.involved_anywhere
