"""Integration tests for the exams-mart extension and cross-source PLAs."""

import pytest

from repro.core import (
    PLA,
    AggregationThreshold,
    ComplianceChecker,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
)
from repro.errors import ComplianceError
from repro.relational import Query, View, parse_query
from repro.reports import ReportDefinition
from repro.simulation import extend_with_exams_mart


@pytest.fixture(scope="module")
def extended():
    from repro.simulation import build_scenario

    scenario = build_scenario()
    outcome = extend_with_exams_mart(scenario)
    return scenario, outcome


class TestEtlPath:
    def test_prohibited_flow_blocked_before_materialization(self, extended):
        scenario, outcome = extended
        result = outcome["prohibited_result"]
        assert not result.clean
        assert "join_res" in result.skipped and "load_bad" in result.skipped
        assert "dwh_exams_res" not in result.catalog
        assert all("residents" in str(v) for v in result.violations)

    def test_legitimate_mart_loads_clean(self, extended):
        scenario, outcome = extended
        assert outcome["legit_result"].clean
        exams = scenario.bi_catalog.table("dwh_exams")
        assert {rid.provider for rid in exams.all_lineage()} == {"laboratory"}

    def test_exams_star_queryable(self, extended):
        scenario, _ = extended
        from repro.relational import execute

        out = execute(
            parse_query(
                "SELECT exam_type, COUNT(*) AS n FROM wide_exams GROUP BY exam_type"
            ),
            scenario.bi_catalog,
        )
        assert len(out) >= 2


class TestReportLevelJoinProhibition:
    """A covering meta-report exists, but the report's lineage spans the
    prohibited pair — the JoinPermission annotation must fire."""

    @pytest.fixture
    def cross_checker(self, extended):
        scenario, _ = extended
        # A universe that (legitimately from a schema standpoint) joins the
        # exams mart with the prescriptions mart — whose lineage includes
        # the municipality residents registry.
        scenario.bi_catalog.add_view(
            View(
                "cross_universe",
                Query.from_("dwh_exams")
                .join("dwh_prescriptions", [("patient", "patient")])
                .project("exam_type", "result", "disease", "zip"),
            ),
            replace=True,
        )
        metareports = MetaReportSet()
        metareport = MetaReport(
            "mr_cross",
            Query.from_("cross_universe").project(
                "exam_type", "result", "disease", "zip"
            ),
        )
        registry = PlaRegistry()
        pla = PLA(
            "pla_cross", "municipality", PlaLevel.METAREPORT, "mr_cross",
            (
                AggregationThreshold(2),
                JoinPermission(
                    "municipality/residents", "laboratory/exams", allowed=False
                ),
            ),
        )
        registry.add(pla)
        metareport.attach_pla(registry.approve("pla_cross"))
        metareports.add(metareport)
        metareports.register_views(scenario.bi_catalog)
        return scenario, ComplianceChecker(
            catalog=scenario.bi_catalog, metareports=metareports
        )

    def test_cross_source_report_flagged(self, cross_checker):
        scenario, checker = cross_checker
        report = ReportDefinition(
            "exam_by_zip", "t",
            parse_query(
                "SELECT zip, COUNT(*) AS n FROM mr_cross GROUP BY zip"
            ),
            frozenset({"analyst"}), "care/quality",
        )
        verdict = checker.check_report(report)
        assert not verdict.compliant
        assert any("combines data" in str(v) for v in verdict.violations)

    def test_footprint_sees_through_marts(self, cross_checker):
        scenario, checker = cross_checker
        report = ReportDefinition(
            "exam_by_zip", "t",
            parse_query("SELECT zip, COUNT(*) AS n FROM mr_cross GROUP BY zip"),
            frozenset({"analyst"}), "care/quality",
        )
        footprint = checker.source_footprint(report)
        assert "municipality/residents" in footprint
        assert "laboratory/exams" in footprint


class TestPurposeEnforcement:
    def test_wrong_purpose_blocked_at_generation(self, extended):
        scenario, _ = extended
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        name, verdict = next(
            (n, v) for n, v in sorted(verdicts.items()) if v.compliant
        )
        report = scenario.report_catalog.current(name)
        role = sorted(report.audience)[0]
        user = {
            "analyst": "ann",
            "auditor": "aldo",
            "health_director": "dora",
            "municipality_official": "mara",
        }[role]
        wrong_purpose = next(
            p
            for p in ("care/quality", "admin/reimbursement", "research/epidemiology")
            if p != report.purpose and not p.startswith(report.purpose + "/")
        )
        context = scenario.subjects.context(user, wrong_purpose)
        with pytest.raises(ComplianceError, match="purpose"):
            scenario.enforcer.generate(report, context, verdict)

    def test_sub_purpose_is_allowed(self, extended):
        scenario, _ = extended
        scenario.subjects.purposes.declare("care/quality/followup")
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        for name, verdict in sorted(verdicts.items()):
            report = scenario.report_catalog.current(name)
            if not verdict.compliant or report.purpose != "care/quality":
                continue
            if "analyst" not in report.audience:
                continue
            context = scenario.subjects.context("ann", "care/quality/followup")
            instance = scenario.enforcer.generate(report, context, verdict)
            assert instance.consumer == "ann"
            return
        pytest.skip("no compliant analyst care/quality report in workload")
