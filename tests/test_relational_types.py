"""Unit tests for column types and coercion."""

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import ColumnType, check_value, coerce_value, parse_date


class TestParseDate:
    def test_iso_format(self):
        assert parse_date("2007-02-12") == datetime.date(2007, 2, 12)

    def test_paper_format(self):
        # the figures write 12/02/2007 for 12 February 2007
        assert parse_date("12/02/2007") == datetime.date(2007, 2, 12)

    def test_garbage_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_date("yesterday")


class TestCoerce:
    def test_none_passes_through(self):
        assert coerce_value(None, ColumnType.INT) is None

    def test_int_from_string(self):
        assert coerce_value("42", ColumnType.INT) == 42

    def test_int_from_whole_float(self):
        assert coerce_value(42.0, ColumnType.INT) == 42

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(4.5, ColumnType.INT)

    def test_float_widens_int(self):
        value = coerce_value(3, ColumnType.FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_float_from_string(self):
        assert coerce_value("3.5", ColumnType.FLOAT) == 3.5

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(7, ColumnType.STRING)

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, ColumnType.INT)

    def test_bool_from_words(self):
        assert coerce_value("yes", ColumnType.BOOL) is True
        assert coerce_value("No", ColumnType.BOOL) is False

    def test_bool_rejects_other_strings(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", ColumnType.BOOL)

    def test_date_from_string_both_formats(self):
        assert coerce_value("2008-04-15", ColumnType.DATE) == datetime.date(2008, 4, 15)
        assert coerce_value("15/04/2008", ColumnType.DATE) == datetime.date(2008, 4, 15)

    def test_date_from_datetime(self):
        dt = datetime.datetime(2008, 4, 15, 13, 30)
        assert coerce_value(dt, ColumnType.DATE) == datetime.date(2008, 4, 15)


class TestCheckValue:
    def test_null_in_non_nullable_rejected(self):
        with pytest.raises(TypeMismatchError):
            check_value(None, ColumnType.STRING, nullable=False)

    def test_null_in_nullable_ok(self):
        check_value(None, ColumnType.STRING, nullable=True)

    def test_bool_rejected_in_int_column(self):
        with pytest.raises(TypeMismatchError):
            check_value(True, ColumnType.INT)

    def test_int_accepted_in_float_column(self):
        check_value(3, ColumnType.FLOAT)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeMismatchError):
            check_value("hello", ColumnType.INT)
