"""Unit tests for report definitions, engine, catalog, and evolution."""

import pytest

from repro.errors import ComplianceError, ReproError
from repro.policy import SubjectRegistry
from repro.relational import Query, parse_expression, parse_query
from repro.relational.algebra import AggSpec
from repro.reports import (
    EvolutionEvent,
    EvolutionKind,
    ReportCatalog,
    ReportDefinition,
    ReportEngine,
    apply_event,
)


def drug_report(name="drug_consumption", version=1):
    return ReportDefinition(
        name=name,
        title="Drug consumption",
        query=parse_query(
            "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug"
        ),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
        version=version,
    )


@pytest.fixture
def subjects():
    reg = SubjectRegistry()
    reg.purposes.declare("care/quality")
    reg.add_role("analyst")
    reg.add_role("guest")
    reg.add_user("ann", "analyst")
    reg.add_user("gus", "guest")
    return reg


class TestDefinition:
    def test_columns(self):
        assert drug_report().columns() == ("drug", "consumption")

    def test_empty_audience_rejected(self):
        with pytest.raises(ReproError):
            ReportDefinition(
                name="r", title="t", query=Query.from_("x"),
                audience=frozenset(), purpose="p",
            )

    def test_with_query_bumps_version(self):
        report = drug_report()
        updated = report.with_query(report.query.limit(5))
        assert updated.version == 2 and report.version == 1

    def test_with_audience(self):
        updated = drug_report().with_audience(frozenset({"guest"}))
        assert updated.audience == frozenset({"guest"})
        with pytest.raises(ReproError):
            drug_report().with_audience(frozenset())


class TestEngine:
    def test_generates_for_audience_member(self, paper_catalog, subjects):
        engine = ReportEngine(paper_catalog)
        instance = engine.generate(
            drug_report(), subjects.context("ann", "care/quality")
        )
        assert len(instance) == 4
        assert instance.consumer == "ann"

    def test_rejects_non_audience(self, paper_catalog, subjects):
        engine = ReportEngine(paper_catalog)
        with pytest.raises(ComplianceError):
            engine.generate(drug_report(), subjects.context("gus", "care/quality"))

    def test_pre_check_blocks(self, paper_catalog, subjects):
        engine = ReportEngine(paper_catalog)

        def deny(definition, context):
            raise ComplianceError("nope")

        engine.add_pre_check(deny)
        with pytest.raises(ComplianceError):
            engine.generate(drug_report(), subjects.context("ann", "care/quality"))

    def test_row_filter_suppresses(self, paper_catalog, subjects):
        engine = ReportEngine(paper_catalog)
        engine.add_row_filter(lambda d, row, contributors: contributors >= 2)
        instance = engine.generate(
            drug_report(), subjects.context("ann", "care/quality")
        )
        assert dict(instance.table.rows) == {"DR": 2}
        assert instance.suppressed_rows == 3


class TestCatalog:
    def test_add_update_history(self):
        catalog = ReportCatalog()
        catalog.add(drug_report())
        catalog.update(drug_report(version=2))
        assert catalog.current("drug_consumption").version == 2
        assert len(catalog.history("drug_consumption")) == 2
        assert catalog.total_versions() == 2

    def test_add_existing_rejected(self):
        catalog = ReportCatalog()
        catalog.add(drug_report())
        with pytest.raises(ReproError):
            catalog.add(drug_report())

    def test_update_requires_existing_and_newer_version(self):
        catalog = ReportCatalog()
        with pytest.raises(ReproError):
            catalog.update(drug_report(version=2))
        catalog.add(drug_report())
        with pytest.raises(ReproError):
            catalog.update(drug_report(version=1))

    def test_drop_keeps_history(self):
        catalog = ReportCatalog()
        catalog.add(drug_report())
        catalog.drop("drug_consumption")
        assert "drug_consumption" not in catalog
        assert len(catalog.history("drug_consumption")) == 1
        with pytest.raises(ReproError):
            catalog.current("drug_consumption")

    def test_readd_after_drop(self):
        catalog = ReportCatalog()
        catalog.add(drug_report())
        catalog.drop("drug_consumption")
        catalog.add(drug_report())
        assert "drug_consumption" in catalog

    def test_names_and_all_current(self):
        catalog = ReportCatalog()
        catalog.add(drug_report("b"))
        catalog.add(drug_report("a"))
        assert catalog.names() == ("a", "b")
        assert len(catalog.all_current()) == 2


class TestEvolution:
    def _catalog(self):
        catalog = ReportCatalog()
        catalog.add(drug_report())
        return catalog

    def test_add_report_event(self):
        catalog = self._catalog()
        event = EvolutionEvent(
            kind=EvolutionKind.ADD_REPORT,
            report="new",
            definition=drug_report("new"),
        )
        out = apply_event(catalog, event)
        assert out is not None and "new" in catalog

    def test_add_column_to_aggregate_groups_by_it(self):
        catalog = self._catalog()
        event = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="drug_consumption", column="disease"
        )
        out = apply_event(catalog, event)
        assert out is not None
        assert "disease" in out.query.group_by
        assert out.version == 2

    def test_remove_column(self):
        catalog = self._catalog()
        apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.ADD_COLUMN,
                report="drug_consumption",
                column="disease",
            ),
        )
        out = apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.REMOVE_COLUMN,
                report="drug_consumption",
                column="disease",
            ),
        )
        assert out is not None and "disease" not in out.query.group_by

    def test_change_filter_replaces_where(self):
        catalog = self._catalog()
        out = apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.CHANGE_FILTER,
                report="drug_consumption",
                predicate=parse_expression("disease != 'HIV'"),
            ),
        )
        assert out is not None and "HIV" in str(out.query.where)

    def test_change_grouping_requires_aggregate(self):
        catalog = ReportCatalog()
        catalog.add(
            ReportDefinition(
                name="detail",
                title="d",
                query=parse_query("SELECT patient FROM prescriptions"),
                audience=frozenset({"analyst"}),
                purpose="p",
            )
        )
        with pytest.raises(ReproError):
            apply_event(
                catalog,
                EvolutionEvent(
                    kind=EvolutionKind.CHANGE_GROUPING, report="detail", column="drug"
                ),
            )

    def test_change_audience(self):
        catalog = self._catalog()
        out = apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.CHANGE_AUDIENCE,
                report="drug_consumption",
                audience=frozenset({"guest"}),
            ),
        )
        assert out is not None and out.audience == frozenset({"guest"})

    def test_drop_event(self):
        catalog = self._catalog()
        out = apply_event(
            catalog,
            EvolutionEvent(kind=EvolutionKind.DROP_REPORT, report="drug_consumption"),
        )
        assert out is None and "drug_consumption" not in catalog

    def test_missing_payload_rejected(self):
        catalog = self._catalog()
        with pytest.raises(ReproError):
            apply_event(
                catalog,
                EvolutionEvent(kind=EvolutionKind.ADD_COLUMN, report="drug_consumption"),
            )

    def test_evolved_aggregate_still_executes(self, paper_catalog):
        catalog = self._catalog()
        out = apply_event(
            catalog,
            EvolutionEvent(
                kind=EvolutionKind.ADD_COLUMN,
                report="drug_consumption",
                column="disease",
            ),
        )
        from repro.relational import execute

        table = execute(out.query, paper_catalog)
        assert set(table.schema.names) == {"disease", "drug", "consumption"}
