"""Unit tests for annotations and the PLA model/registry."""

import pytest

from repro.errors import PolicyError
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    PlaLevel,
    PlaRegistry,
    PlaStatus,
)
from repro.relational import parse_expression


class TestAnnotations:
    def test_attribute_access_permits_subset_only(self):
        ann = AttributeAccess("patient", frozenset({"director", "analyst"}))
        assert ann.permits({"analyst"})
        assert ann.permits({"analyst", "director"})
        assert not ann.permits({"analyst", "guest"})

    def test_aggregation_threshold(self):
        ann = AggregationThreshold(5)
        assert ann.satisfied_by(5) and not ann.satisfied_by(4)
        with pytest.raises(PolicyError):
            AggregationThreshold(0)

    def test_anonymization_methods_validated(self):
        AnonymizationRequirement("patient", "pseudonymize")
        with pytest.raises(PolicyError):
            AnonymizationRequirement("patient", "encrypt")

    def test_join_permission_pair(self):
        ann = JoinPermission("a/x", "b/y", allowed=False)
        assert ann.pair() == frozenset({"a/x", "b/y"})
        assert "must NOT" in ann.describe()

    def test_integration_permission_describe(self):
        assert "may" in IntegrationPermission("muni", True).describe()

    def test_intensional_condition_hidden_columns(self):
        ann = IntensionalCondition(
            "result", parse_expression("disease != 'HIV' AND result > 0")
        )
        assert ann.hidden_columns({"result"}) == frozenset({"disease"})
        assert ann.hidden_columns({"result", "disease"}) == frozenset()

    def test_intensional_action_validated(self):
        with pytest.raises(PolicyError):
            IntensionalCondition("x", parse_expression("a > 0"), action="explode")

    def test_all_have_describe_and_kind(self):
        annotations = [
            AttributeAccess("a", frozenset({"r"})),
            AggregationThreshold(3),
            AnonymizationRequirement("a", "suppress"),
            JoinPermission("x", "y", True),
            IntegrationPermission("o", False),
            IntensionalCondition("a", parse_expression("a > 0")),
        ]
        kinds = {a.requirement_kind for a in annotations}
        assert len(kinds) == 6
        assert all(a.describe() for a in annotations)


def make_pla(name="pla1", version=1):
    return PLA(
        name=name,
        owner="hospital",
        level=PlaLevel.METAREPORT,
        target="mr_0",
        annotations=(AggregationThreshold(5),),
        version=version,
    )


class TestPla:
    def test_requires_annotations(self):
        with pytest.raises(PolicyError):
            PLA("p", "o", PlaLevel.REPORT, "t", ())

    def test_lifecycle(self):
        pla = make_pla()
        assert pla.status is PlaStatus.DRAFT
        approved = pla.approved()
        assert approved.status is PlaStatus.APPROVED
        superseded = approved.superseded()
        assert superseded.status is PlaStatus.SUPERSEDED

    def test_revised_bumps_version_and_resets_status(self):
        pla = make_pla().approved()
        revised = pla.revised([AggregationThreshold(10)])
        assert revised.version == 2 and revised.status is PlaStatus.DRAFT

    def test_annotations_of_kind(self):
        pla = make_pla()
        assert len(pla.annotations_of_kind("aggregation_threshold")) == 1
        assert pla.annotations_of_kind("anonymization") == ()

    def test_describe(self):
        text = make_pla().describe()
        assert "hospital" in text and "metareport:mr_0" in text


class TestPlaRegistry:
    def test_add_approve_supersede(self):
        registry = PlaRegistry()
        registry.add(make_pla())
        approved = registry.approve("pla1")
        assert approved.status is PlaStatus.APPROVED
        registry.revise("pla1", [AggregationThreshold(10)])
        registry.approve("pla1")
        versions = [p for p in registry.plas if p.name == "pla1"]
        statuses = sorted(p.status.value for p in versions)
        assert statuses == ["approved", "superseded"]

    def test_duplicate_version_rejected(self):
        registry = PlaRegistry()
        registry.add(make_pla())
        with pytest.raises(PolicyError):
            registry.add(make_pla())

    def test_approve_unknown_rejected(self):
        with pytest.raises(PolicyError):
            PlaRegistry().approve("ghost")

    def test_queries(self):
        registry = PlaRegistry()
        registry.add(make_pla())
        registry.approve("pla1")
        assert len(registry.approved_for_target(PlaLevel.METAREPORT, "mr_0")) == 1
        assert len(registry.approved_at_level(PlaLevel.METAREPORT)) == 1
        assert len(registry.by_owner("hospital")) == 1
        assert registry.annotation_count() == 1
        assert registry.requirement_kind_histogram() == {"aggregation_threshold": 1}

    def test_drafts_not_counted(self):
        registry = PlaRegistry()
        registry.add(make_pla())
        assert registry.annotation_count() == 0
        assert registry.describe() == "(no approved PLAs)"
