"""Tests for PLA → enforcement translation (the runtime obligation machinery)."""

import pytest

from repro.errors import ComplianceError, EnforcementError
from repro.anonymize import Pseudonymizer, zip_hierarchy
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    ComplianceChecker,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    ReportLevelEnforcer,
    to_etl_registry,
    to_vpd_policy,
)
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, Table, View, make_schema, parse_expression, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportDefinition

WIDE = ("patient", "drug", "disease", "doctor", "cost")


@pytest.fixture
def setup():
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("doctor", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", "Luis", 60),
        ("Chris", "DV", "HIV", "Anne", 30),
        ("Bob", "DR", "asthma", "Anne", 10),
        ("Math", "DM", "diabetes", "Mark", 10),
        ("Alice", "DR", "asthma", "Luis", 10),
        ("Bob", "DR", "asthma", "Anne", 10),
    ]
    cat.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
    cat.add_view(View("wide", Query.from_("base").project(*WIDE)))

    mrs = MetaReportSet()
    mr = MetaReport("mr_0", Query.from_("wide").project(*WIDE))
    registry = PlaRegistry()
    pla = PLA(
        "pla",
        "hospital",
        PlaLevel.METAREPORT,
        "mr_0",
        (
            AggregationThreshold(2),
            AnonymizationRequirement("patient", "pseudonymize"),
            IntensionalCondition(
                "disease", parse_expression("disease != 'HIV'"), "suppress_row"
            ),
        ),
    )
    registry.add(pla)
    mr.attach_pla(registry.approve("pla"))
    mrs.add(mr)
    mrs.register_views(cat)

    checker = ComplianceChecker(catalog=cat, metareports=mrs)
    enforcer = ReportLevelEnforcer(
        catalog=cat,
        pseudonymizer=Pseudonymizer(salt="s"),
        hierarchies={"zip": zip_hierarchy()},
    )
    subjects = SubjectRegistry()
    subjects.purposes.declare("care")
    subjects.add_role("analyst")
    subjects.add_user("ann", "analyst")
    return cat, checker, enforcer, subjects


def rpt(sql, name="r", audience=frozenset({"analyst"})):
    return ReportDefinition(
        name=name, title=name, query=parse_query(sql),
        audience=audience, purpose="care",
    )


class TestEnforcer:
    def test_threshold_suppression_via_lineage(self, setup):
        cat, checker, enforcer, subjects = setup
        report = rpt("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        verdict = checker.check_report(report)
        assert verdict.compliant
        instance = enforcer.generate(report, subjects.context("ann", "care"), verdict)
        # HIV rows dropped pre-aggregation (intensional suppress_row),
        # then groups with <2 contributors suppressed: DR=3 survives, DM=1 no.
        assert dict(instance.table.rows) == {"DR": 3}
        assert instance.suppressed_rows == 1

    def test_anonymization_applied(self, setup):
        cat, checker, enforcer, subjects = setup
        report = rpt(
            "SELECT patient, COUNT(*) AS n FROM wide GROUP BY patient"
        )
        verdict = checker.check_report(report)
        if not verdict.compliant:  # audience may be blocked by access rules
            pytest.skip("scenario PLA forbids this audience")
        instance = enforcer.generate(report, subjects.context("ann", "care"), verdict)
        assert all(
            str(v).startswith("anon-") for v in instance.table.column_values("patient")
        )

    def test_non_compliant_verdict_raises(self, setup):
        cat, checker, enforcer, subjects = setup
        report = rpt("SELECT patient, drug FROM wide")  # record-level
        verdict = checker.check_report(report)
        assert not verdict.compliant
        with pytest.raises(ComplianceError):
            enforcer.generate(report, subjects.context("ann", "care"), verdict)

    def test_verdict_version_mismatch_rejected(self, setup):
        cat, checker, enforcer, subjects = setup
        report = rpt("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        verdict = checker.check_report(report)
        evolved = report.with_query(report.query)
        with pytest.raises(ComplianceError):
            enforcer.generate(evolved, subjects.context("ann", "care"), verdict)

    def test_audience_enforced_at_generation(self, setup):
        cat, checker, enforcer, subjects = setup
        subjects.add_role("guest")
        subjects.add_user("gus", "guest")
        report = rpt("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        verdict = checker.check_report(report)
        with pytest.raises(ComplianceError):
            enforcer.generate(report, subjects.context("gus", "care"), verdict)

    def test_obligations_recorded_on_instance(self, setup):
        cat, checker, enforcer, subjects = setup
        report = rpt("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        verdict = checker.check_report(report)
        instance = enforcer.generate(report, subjects.context("ann", "care"), verdict)
        assert len(instance.obligations_applied) == len(verdict.obligations)


class TestHiddenColumns:
    def test_cell_blanking_with_hidden_condition_column(self):
        """The paper's §5 example: exam results blanked for HIV patients,
        with HIV status carried as a hidden column."""
        cat = Catalog()
        schema = make_schema(
            ("patient", ColumnType.STRING),
            ("result", ColumnType.STRING),
            ("disease", ColumnType.STRING),
        )
        rows = [
            ("Alice", "positive", "HIV"),
            ("Bob", "normal", "asthma"),
        ]
        cat.add_table(Table.from_rows("exams", schema, rows, provider="lab"))
        cat.add_view(
            View("wide", Query.from_("exams").project("patient", "result", "disease"))
        )
        mrs = MetaReportSet()
        mr = MetaReport("mr", Query.from_("wide").project("patient", "result", "disease"))
        registry = PlaRegistry()
        pla = PLA(
            "p", "lab", PlaLevel.METAREPORT, "mr",
            (
                IntensionalCondition(
                    "result", parse_expression("disease != 'HIV'"), "suppress_cell"
                ),
            ),
        )
        registry.add(pla)
        mr.attach_pla(registry.approve("p"))
        mrs.add(mr)
        mrs.register_views(cat)
        checker = ComplianceChecker(catalog=cat, metareports=mrs)
        enforcer = ReportLevelEnforcer(catalog=cat)
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")

        # The report shows patient+result but NOT disease.
        report = ReportDefinition(
            name="exam_report", title="t",
            query=parse_query("SELECT patient, result FROM wide"),
            audience=frozenset({"analyst"}), purpose="care",
        )
        verdict = checker.check_report(report)
        assert verdict.compliant
        instance = enforcer.generate(report, subjects.context("ann", "care"), verdict)
        # hidden column projected away again
        assert instance.table.schema.names == ("patient", "result")
        by_patient = {r["patient"]: r["result"] for r in instance.table.iter_dicts()}
        assert by_patient == {"Alice": None, "Bob": "normal"}


class TestCrossLayerProjection:
    def _plas(self):
        return [
            PLA(
                "p1", "municipality", PlaLevel.METAREPORT, "mr",
                (
                    JoinPermission("municipality/residents", "lab/exams", False),
                    IntegrationPermission("municipality", False),
                    JoinPermission("a/x", "b/y", True),  # allowed: no constraint
                ),
            )
        ]

    def test_to_etl_registry(self):
        registry = to_etl_registry(self._plas())
        names = [c.name for c in registry.constraints]
        assert len(names) == 2  # prohibition + integration; allowed join skipped

    def test_to_vpd_policy(self):
        plas = [
            PLA(
                "p2", "hospital", PlaLevel.SOURCE, "prescriptions",
                (
                    IntensionalCondition(
                        "disease", parse_expression("disease != 'HIV'"), "suppress_row"
                    ),
                    AnonymizationRequirement("doctor", "suppress"),
                ),
            )
        ]
        policy = to_vpd_policy(plas)
        rule = policy.rules["prescriptions"]
        assert rule.predicate is not None
        assert [m.column for m in rule.masks] == ["doctor"]

    def test_missing_pseudonymizer_raises(self):
        cat = Catalog()
        schema = make_schema(("patient", ColumnType.STRING))
        cat.add_table(Table.from_rows("t", schema, [("A",)], provider="p"))
        enforcer = ReportLevelEnforcer(catalog=cat)  # no pseudonymizer
        table = cat.table("t")
        with pytest.raises(EnforcementError):
            enforcer._apply_anonymization(
                table, [AnonymizationRequirement("patient", "pseudonymize")]
            )
