"""Every cross-reference in docs/*.md and README.md must resolve.

The checker itself lives in ``docs/check_links.py`` (CI runs it as a
standalone gate next to the API-doc drift check); this test keeps it in
the tier-1 suite so a broken link fails locally before it fails in CI.
"""

from __future__ import annotations

import importlib.util
import pathlib

_SPEC = importlib.util.spec_from_file_location(
    "check_links",
    pathlib.Path(__file__).resolve().parent.parent / "docs" / "check_links.py",
)
check_links = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_links)


def test_every_docs_link_resolves():
    errors = []
    for doc in check_links.documents():
        errors.extend(check_links.check_document(doc))
    assert not errors, "\n".join(errors)


def test_checker_sees_the_expected_documents():
    names = {p.name for p in check_links.documents()}
    # The handbook set this repo promises; a vanished doc is itself a bug.
    assert {
        "README.md",
        "ARCHITECTURE.md",
        "PERFORMANCE.md",
        "VERIFICATION.md",
        "TUTORIAL.md",
        "API.md",
    } <= names


def test_slugging_matches_github_conventions():
    assert check_links.github_slug("Reading BENCH_engine.json") == (
        "reading-bench_enginejson"
    )
    assert check_links.github_slug("The engine-mode matrix") == (
        "the-engine-mode-matrix"
    )
    assert check_links.github_slug("8½. A million rows") == "8-a-million-rows"
