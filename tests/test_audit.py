"""Tests for the disclosure log and the third-party auditor."""

import pytest

from repro.audit import AuditLog, Auditor, Severity
from repro.core import (
    PLA,
    AggregationThreshold,
    AttributeAccess,
    ComplianceChecker,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    ReportLevelEnforcer,
)
from repro.anonymize import Pseudonymizer
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, Table, View, make_schema, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportCatalog, ReportDefinition, ReportEngine

WIDE = ("patient", "drug", "disease", "cost")


@pytest.fixture
def world():
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DR", "asthma", 10),
        ("Bob", "DR", "asthma", 10),
        ("Chris", "DR", "asthma", 10),
        ("Math", "DM", "diabetes", 10),
    ]
    cat.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
    cat.add_view(View("wide", Query.from_("base").project(*WIDE)))
    mrs = MetaReportSet()
    mr = MetaReport("mr", Query.from_("wide").project(*WIDE))
    registry = PlaRegistry()
    pla = PLA(
        "p", "hospital", PlaLevel.METAREPORT, "mr",
        (
            AggregationThreshold(2),
            AttributeAccess("patient", frozenset({"director"})),
        ),
    )
    registry.add(pla)
    mr.attach_pla(registry.approve("p"))
    mrs.add(mr)
    mrs.register_views(cat)
    checker = ComplianceChecker(catalog=cat, metareports=mrs)
    enforcer = ReportLevelEnforcer(catalog=cat, pseudonymizer=Pseudonymizer(salt="s"))
    subjects = SubjectRegistry()
    subjects.purposes.declare("care")
    subjects.add_role("analyst")
    subjects.add_role("director")
    subjects.add_user("ann", "analyst")
    subjects.add_user("dora", "director")
    reports = ReportCatalog()
    return cat, checker, enforcer, subjects, reports


def drug_report():
    return ReportDefinition(
        name="by_drug", title="t",
        query=parse_query("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
        audience=frozenset({"analyst"}), purpose="care",
    )


class TestAuditLog:
    def test_chain_verifies_and_detects_tampering(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        reports.add(report)
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        instance = enforcer.generate(report, ctx, verdict)
        log = AuditLog()
        log.record_instance(instance, ctx)
        log.record_instance(instance, ctx)
        assert log.verify_chain()
        # Tamper with the first record:
        from dataclasses import replace

        log.records[0] = replace(log.records[0], row_count=999)
        assert not log.verify_chain()

    def test_record_contents(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        instance = enforcer.generate(report, ctx, verdict)
        log = AuditLog()
        record = log.record_instance(instance, ctx)
        assert record.report == "by_drug"
        assert record.consumer == "ann"
        assert record.purpose == "care"
        assert record.min_contributors >= 2  # threshold was enforced
        assert record.source_footprint == ("hospital/base",)
        assert len(log) == 1 and log.last() is log.records[0]

    def test_as_table_enables_meta_audit(self, world):
        """Auditors can analyze the log with the engine itself."""
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        log = AuditLog()
        log.record_instance(enforcer.generate(report, ctx, verdict), ctx)
        log.record_instance(enforcer.generate(report, ctx, verdict), ctx)

        from repro.relational import Catalog, execute, parse_query

        audit_catalog = Catalog()
        audit_catalog.add_table(log.as_table())
        out = execute(
            parse_query(
                "SELECT consumer, COUNT(*) AS n, MIN(min_contributors) AS floor "
                "FROM audit_log GROUP BY consumer"
            ),
            audit_catalog,
        )
        # Two deliveries by ann; every published cell met the k=2 floor.
        assert out.rows == [("ann", 2, 3)]
        assert out.rows[0][2] >= 2

    def test_query_helpers(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        log = AuditLog()
        log.record_instance(enforcer.generate(report, ctx, verdict), ctx)
        assert len(log.for_report("by_drug")) == 1
        assert len(log.for_consumer("ann")) == 1
        assert log.for_consumer("nobody") == ()


class TestAuditor:
    def test_clean_deployment_audits_clean(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        reports.add(report)
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        log = AuditLog()
        log.record_instance(enforcer.generate(report, ctx, verdict), ctx)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert audit.clean, audit.summary()
        assert audit.disclosures_checked == 1

    def test_unenforced_threshold_detected(self, world):
        """A rogue path that skips enforcement must be caught by the audit."""
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        reports.add(report)
        ctx = subjects.context("ann", "care")
        rogue_engine = ReportEngine(cat)  # no PLA hooks at all
        instance = rogue_engine.generate(report, ctx)
        log = AuditLog()
        log.record_instance(instance, ctx)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert not audit.clean
        kinds = {v.kind for v in audit.violations}
        assert "aggregation_threshold" in kinds  # DM cell had 1 contributor
        assert any(v.severity is Severity.CRITICAL for v in audit.violations)

    def test_audience_violation_detected(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        reports.add(report)
        verdict = checker.check_report(report)
        ctx_analyst = subjects.context("ann", "care")
        instance = enforcer.generate(report, ctx_analyst, verdict)
        log = AuditLog()
        # Log claims dora-the-director received an analyst-audience report:
        # simulate mis-delivery by recording under the wrong context.
        ctx_director = subjects.context("dora", "care")
        log.record_instance(instance, ctx_director)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert any(v.kind == "audience" for v in audit.violations)

    def test_disclosed_attribute_violation_detected(self, world):
        cat, checker, enforcer, subjects, reports = world
        # A patient-level report delivered to an analyst: patient attribute
        # is restricted to directors.
        report = ReportDefinition(
            name="patients", title="t",
            query=parse_query(
                "SELECT patient, COUNT(*) AS n FROM wide GROUP BY patient"
            ),
            audience=frozenset({"analyst"}), purpose="care",
        )
        reports.add(report)
        ctx = subjects.context("ann", "care")
        rogue = ReportEngine(cat)
        log = AuditLog()
        log.record_instance(rogue.generate(report, ctx), ctx)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert any(
            v.kind in ("static_compliance", "attribute_access")
            for v in audit.violations
        )

    def test_unknown_report_flagged(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        verdict = checker.check_report(report)
        ctx = subjects.context("ann", "care")
        log = AuditLog()
        log.record_instance(enforcer.generate(report, ctx, verdict), ctx)
        # reports catalog was never told about the report
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert any(v.kind == "unknown_report" for v in audit.violations)

    def test_missing_obligation_warning(self, world):
        cat, checker, enforcer, subjects, reports = world
        report = drug_report()
        reports.add(report)
        ctx = subjects.context("ann", "care")
        # Generate compliantly but strip the obligation bookkeeping:
        verdict = checker.check_report(report)
        instance = enforcer.generate(report, ctx, verdict)
        from dataclasses import replace

        stripped = replace(instance, obligations_applied=())
        log = AuditLog()
        log.record_instance(stripped, ctx)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert any(v.kind == "missing_obligation" for v in audit.violations)
        assert all(
            v.severity is Severity.WARNING
            for v in audit.violations
            if v.kind == "missing_obligation"
        )
