"""Tests for the static column-level dataflow pass.

The manual cases pin each propagation rule to its runtime counterpart in
:mod:`repro.relational.algebra`; the hypothesis property test then checks
the soundness contract on randomly generated query trees: for every output
cell, the runtime where-provenance refs are a subset of the static
``copied | derived`` sources of that column (and of ``copied`` alone for
plain copy columns).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ColumnFlow, column_flows
from repro.analysis.dataflow import live_predicate_columns
from repro.errors import AnalysisError
from repro.relational import Catalog, View, execute
from repro.relational.algebra import AggSpec
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Lit,
    Or,
    conjuncts,
    disjuncts,
)
from repro.relational.query import Query
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType

INT = ColumnType.INT
STRING = ColumnType.STRING


def small_catalog() -> Catalog:
    t = Table.from_rows(
        "t",
        make_schema(("k", INT), ("x", INT), ("s", STRING)),
        [(i % 4, (i * 7) % 11 - 5, f"s{i % 3}") for i in range(12)],
        provider="alpha",
    )
    u = Table.from_rows(
        "u",
        make_schema(("k", INT), ("z", INT)),
        [(i % 5, (i * 3) % 7 - 3) for i in range(8)],
        provider="beta",
    )
    catalog = Catalog()
    catalog.add_table(t)
    catalog.add_table(u)
    return catalog


CATALOG = small_catalog()


class TestPropagationRules:
    def test_base_table_columns_are_self_copies(self):
        flow = column_flows(Query.from_("t"), CATALOG)
        assert flow.flow_of("x") == ColumnFlow(copied=frozenset({"t.x"}))
        assert flow.names() == ("k", "x", "s")

    def test_plain_projection_and_alias_keep_copies(self):
        query = Query.from_("t").project("x", ("xx", Col("x")))
        flow = column_flows(query, CATALOG)
        assert flow.flow_of("x").copied == {"t.x"}
        assert flow.flow_of("xx").copied == {"t.x"}
        assert not flow.flow_of("xx").derived

    def test_computed_projection_derives_from_all_inputs(self):
        query = Query.from_("t").project(("sum", Arith("+", Col("x"), Col("k"))))
        got = flow = column_flows(query, CATALOG).flow_of("sum")
        assert got.copied == frozenset()
        assert got.derived == {"t.x", "t.k"}
        assert flow.sources == {"t.x", "t.k"}

    def test_where_discloses_predicate_columns(self):
        query = (
            Query.from_("t")
            .filter(Comparison(">", Col("x"), Lit(0)))
            .project("s")
        )
        flow = column_flows(query, CATALOG)
        assert flow.condition_sources == {"t.x"}
        assert flow.all_sources() == {"t.x", "t.s"}

    def test_join_qualifies_collisions_like_runtime(self):
        query = Query.from_("t").join("u", [("k", "k")])
        flow = column_flows(query, CATALOG)
        runtime = execute(query, CATALOG)
        assert set(flow.names()) == set(runtime.schema.names)
        assert flow.flow_of("t.k").copied == {"t.k"}
        assert flow.flow_of("u.k").copied == {"u.k"}
        assert flow.condition_sources == {"t.k", "u.k"}  # join keys disclosed

    def test_aggregation_marks_flows_and_demotes_to_derivation(self):
        query = (
            Query.from_("t")
            .group("s")
            .agg(AggSpec("count", None, "n"), AggSpec("sum", "x", "sx"))
        )
        flow = column_flows(query, CATALOG)
        assert flow.flow_of("s").copied == {"t.s"}
        assert not flow.flow_of("s").aggregated
        n = flow.flow_of("n")
        assert n.aggregated and n.sources == frozenset()
        sx = flow.flow_of("sx")
        assert sx.aggregated and sx.derived == {"t.x"} and not sx.copied

    def test_views_are_expanded_to_base_tables(self):
        catalog = small_catalog()
        catalog.add_view(View("v", Query.from_("t").project("k", "x")))
        flow = column_flows(Query.from_("v").project("x"), catalog)
        assert flow.flow_of("x").copied == {"t.x"}

    def test_unknown_relation_raises(self):
        with pytest_raises_analysis():
            column_flows(Query.from_("ghost"), CATALOG)

    def test_unknown_column_raises(self):
        with pytest_raises_analysis():
            column_flows(Query.from_("t").project("ghost"), CATALOG)


def pytest_raises_analysis():
    import pytest

    return pytest.raises(AnalysisError)


# -- property test: static flow over-approximates runtime where-provenance --

OPS = ("<", "<=", ">", ">=", "=", "!=")


@st.composite
def queries(draw) -> Query:
    """Random query trees the engine accepts, over the fixed two-table catalog."""
    query = Query.from_("t")
    if draw(st.booleans()):  # join
        query = query.join("u", [("k", "k")])
        cols = ["t.k", "x", "s", "u.k", "z"]
        numeric = ["t.k", "x", "u.k", "z"]
    else:
        cols = ["k", "x", "s"]
        numeric = ["k", "x"]

    if draw(st.booleans()):  # where
        query = query.filter(
            Comparison(
                draw(st.sampled_from(OPS)),
                Col(draw(st.sampled_from(numeric))),
                Lit(draw(st.integers(-5, 5))),
            )
        )

    if draw(st.booleans()):  # group/aggregate
        groups = draw(
            st.lists(st.sampled_from(cols), max_size=2, unique=True)
        )
        aggs = [AggSpec("count", None, "n")]
        if draw(st.booleans()):
            aggs.append(
                AggSpec(
                    draw(st.sampled_from(["sum", "min", "max"])),
                    draw(st.sampled_from(numeric)),
                    "m",
                )
            )
        query = query.group(*groups).agg(*aggs)
        out_names = list(groups) + [a.alias for a in aggs]
        numeric = [a.alias for a in aggs] + [g for g in groups if g in numeric]
    else:
        out_names = cols

    if draw(st.booleans()):  # projection (plain / alias / computed)
        chosen = draw(
            st.lists(
                st.sampled_from(out_names), min_size=1, max_size=4, unique=True
            )
        )
        items = []
        for name in chosen:
            style = draw(st.integers(0, 2))
            alias = f"c_{name.replace('.', '_')}"
            if style == 1:
                items.append((alias, Col(name)))
            elif style == 2 and name in numeric:
                items.append((alias, Arith("+", Col(name), Lit(1))))
            else:
                items.append(name)
        query = query.project(*items)
        out_names = [i if isinstance(i, str) else i[0] for i in items]

    if draw(st.booleans()):
        query = query.distinct()
    if draw(st.booleans()):
        query = query.order_by(draw(st.sampled_from(out_names)))
    if draw(st.booleans()):
        query = query.limit(draw(st.integers(0, 10)))
    return query


def runtime_refs(provenance, column) -> set[str]:
    return {
        f"{ref.row.table}.{ref.column}" for ref in provenance.where_of(column)
    }


@given(query=queries())
@settings(max_examples=150, deadline=None)
def test_static_flow_covers_runtime_where_provenance(query):
    static = column_flows(query, CATALOG)
    table = execute(query, CATALOG)

    # Static and runtime agree on the output schema.
    assert list(static.names()) == list(table.schema.names)

    for name in table.schema.names:
        flow = static.flow_of(name)
        for provenance in table.provenance:
            refs = runtime_refs(provenance, name)
            assert refs <= flow.sources, (
                f"column {name!r}: runtime where-prov {refs} escapes static "
                f"sources {set(flow.sources)} for {query}"
            )
            # Pure copy columns must be covered by the copy set alone.
            if flow.copied and not flow.derived and not flow.aggregated:
                assert refs <= flow.copied


# -- dead-branch pruning: soundness (vs data) and precision ------------------


@st.composite
def cnf_predicates(draw):
    """Random conjunctions of small disjunctions over t's numeric columns."""

    def atom():
        return Comparison(
            draw(st.sampled_from(OPS)),
            Col(draw(st.sampled_from(["k", "x"]))),
            Lit(draw(st.integers(-5, 5))),
        )

    def disjunction():
        atoms = [atom() for _ in range(draw(st.integers(1, 3)))]
        pred = atoms[0]
        for extra in atoms[1:]:
            pred = Or(pred, extra)
        return pred

    pred = disjunction()
    for _ in range(draw(st.integers(0, 2))):
        pred = And(pred, disjunction())
    return pred


@given(predicate=cnf_predicates())
@settings(max_examples=150, deadline=None)
def test_pruned_branches_are_dead_on_real_data(predicate):
    """Soundness of the pruning: a pruned branch never admits a real row.

    ``live_predicate_columns`` drops an OR branch only when the solver
    proves it disjoint from the sibling conjuncts — which must mean no row
    of any instance satisfies branch ∧ rest. Check that against the actual
    table, and check the pruned set is exactly the columns of the provably
    dead branches (over-approximation: everything else stays live).
    """
    from repro.verify.solver import overlap

    live = live_predicate_columns(predicate)
    assert live <= predicate.columns()

    rows = [dict(zip(("k", "x", "s"), row)) for row in CATALOG.table("t").rows]
    parts = list(conjuncts(predicate))
    expected_live: set[str] = set()
    for i, conjunct in enumerate(parts):
        branches = list(disjuncts(conjunct))
        rest = [c for j, c in enumerate(parts) if j != i]
        if len(branches) == 1 or not rest:
            expected_live |= conjunct.columns()
            continue
        context = rest[0]
        for extra in rest[1:]:
            context = And(context, extra)
        for branch in branches:
            if overlap(branch, context).is_unsat():
                for row in rows:  # solver's UNSAT must hold on real data
                    assert And(branch, context).evaluate(row) is not True
            else:
                expected_live |= branch.columns()
    assert live == frozenset(expected_live)


def test_dead_branch_stops_tainting_condition_sources():
    """The precision case: a provably dead identifier test discloses nothing."""
    # (s='secret' AND x<-90) OR k>0, conjoined with x>0: the s-branch
    # requires x<-90 ∧ x>0, which is unsatisfiable, so only k and x are
    # genuinely consulted.
    dead_branch = And(
        Comparison("=", Col("s"), Lit("secret")),
        Comparison("<", Col("x"), Lit(-90)),
    )
    predicate = And(
        Or(dead_branch, Comparison(">", Col("k"), Lit(0))),
        Comparison(">", Col("x"), Lit(0)),
    )
    query = Query.from_("t").filter(predicate).project("k")
    flow = column_flows(query, CATALOG)
    assert flow.condition_sources == {"t.k", "t.x"}  # no t.s
    # Soundness half: without the contradicting conjunct the branch is
    # live again and s is disclosed.
    relaxed = Query.from_("t").filter(
        Or(dead_branch, Comparison(">", Col("k"), Lit(0)))
    ).project("k")
    assert "t.s" in column_flows(relaxed, CATALOG).condition_sources


@given(query=queries())
@settings(max_examples=60, deadline=None)
def test_static_flow_covers_runtime_through_views(query):
    """The same contract holds when the query tree hides behind a view."""
    catalog = small_catalog()
    catalog.add_view(View("v", query))
    outer = Query.from_("v")
    static = column_flows(outer, catalog)
    table = execute(outer, catalog)
    assert list(static.names()) == list(table.schema.names)
    for name in table.schema.names:
        flow = static.flow_of(name)
        for provenance in table.provenance:
            assert runtime_refs(provenance, name) <= flow.sources
