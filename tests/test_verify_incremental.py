"""Incremental re-verification: the cache may never change a verdict.

The load-bearing property: across randomized mutation sequences over a
deployment (report redefinitions, added/removed reports, PLA revisions,
source-policy changes, data-only inserts), ``IncrementalVerifier`` with a
persistent cache produces a report identical to a cold ``DeploymentVerifier``
pass after every single step. The cache serialization round-trip and the
invalidation classes documented in docs/VERIFICATION.md are pinned
alongside.
"""

from __future__ import annotations

import random

import pytest

from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, IntensionalCondition, PlaLevel, PlaStatus
from repro.relational import Catalog, Query, Table, make_schema
from repro.relational.expressions import And, Col, Comparison, Lit, Not
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition
from repro.verify import (
    DeploymentVerifier,
    IncrementalVerifier,
    SourcePolicy,
    VerdictCache,
    VerificationInput,
    result_from_dict,
    result_to_dict,
)

COLS = ("patient", "disease", "cost")


def _range(col: str, lo: int, hi: int):
    return And(
        Comparison(">", Col(col), Lit(lo)), Comparison("<", Col(col), Lit(hi))
    )


def _report_query(mr_name: str, i: int) -> Query:
    return (
        Query.from_(mr_name)
        .filter(_range("cost", (i % 5) * 10, (i % 5) * 10 + 40))
        .project("disease", "cost")
    )


def build_input(n_reports: int = 6, n_metareports: int = 2) -> VerificationInput:
    cat = Catalog()
    schema = make_schema(
        *((c, ColumnType.INT if c == "cost" else ColumnType.STRING, True) for c in COLS)
    )
    cat.add_table(Table.from_rows("universe", schema, [], provider="warehouse"))
    metareports = MetaReportSet()
    for m in range(n_metareports):
        query = (
            Query.from_("universe")
            .filter(Comparison(">", Col("cost"), Lit(-100 - m)))
            .project(*COLS)
        )
        mr = MetaReport(f"mr_{m}", query)
        mr.attach_pla(
            PLA(
                f"pla_mr_{m}",
                "owner",
                PlaLevel.METAREPORT,
                f"mr_{m}",
                (
                    IntensionalCondition(
                        "disease",
                        Not(Comparison("=", Col("disease"), Lit("HIV"))),
                        "suppress_row",
                    ),
                ),
                status=PlaStatus.APPROVED,
            )
        )
        metareports.add(mr)
    metareports.register_views(cat)
    reports = tuple(
        ReportDefinition(
            f"r_{i}",
            f"R {i}",
            _report_query(f"mr_{i % n_metareports}", i),
            frozenset({"analyst"}),
            "care",
        )
        for i in range(n_reports)
    )
    policies = (
        SourcePolicy("policy_0", "universe", Comparison(">", Col("cost"), Lit(-500))),
    )
    return VerificationInput(
        catalog=cat,
        metareports=metareports,
        reports=reports,
        universe="universe",
        universe_columns=COLS,
        source_policies=policies,
    )


def _signature(report):
    return [
        (r.code, r.location, r.claim, r.verdict, r.message)
        for r in report.results
    ], report.coverage


# ---------------------------------------------------------------------------
# Mutations (pure: each returns a new VerificationInput)
# ---------------------------------------------------------------------------


def _with(target: VerificationInput, **kw) -> VerificationInput:
    fields = dict(
        catalog=target.catalog,
        metareports=target.metareports,
        reports=target.reports,
        universe=target.universe,
        universe_columns=target.universe_columns,
        source_policies=target.source_policies,
    )
    fields.update(kw)
    return VerificationInput(**fields)


def mutate_report_query(target, rng):
    if not target.reports:
        return target
    victim = rng.choice(target.reports)
    new_query = _report_query(victim.query.source, rng.randrange(100))
    reports = tuple(
        r.with_query(new_query) if r is victim else r for r in target.reports
    )
    return _with(target, reports=reports)


def add_report(target, rng):
    i = len(target.reports) + rng.randrange(100)
    mr_name = f"mr_{rng.randrange(2)}"
    new = ReportDefinition(
        f"r_new_{i}", f"R {i}", _report_query(mr_name, i),
        frozenset({"analyst"}), "care",
    )
    return _with(target, reports=target.reports + (new,))


def remove_report(target, rng):
    if len(target.reports) <= 1:
        return target
    victim = rng.randrange(len(target.reports))
    reports = tuple(r for i, r in enumerate(target.reports) if i != victim)
    return _with(target, reports=reports)


def revise_pla(target, rng):
    mr = rng.choice(list(target.metareports))
    bound = rng.randrange(2, 50)
    revised = mr.pla.revised(
        (
            IntensionalCondition(
                "disease", Comparison("<", Col("cost"), Lit(bound * 100)),
                "suppress_row",
            ),
        )
    ).approved()
    mr.attach_pla(revised)
    return target


def change_source_policy(target, rng):
    bound = -rng.randrange(200, 900)
    policies = (
        SourcePolicy(
            "policy_0", "universe", Comparison(">", Col("cost"), Lit(bound))
        ),
    ) + target.source_policies[1:]
    return _with(target, source_policies=policies)


def insert_data_only(target, rng):
    table = target.catalog.table("universe")
    table.insert((f"p{rng.randrange(10**6)}", "flu", rng.randrange(100)))
    return target


MUTATIONS = [
    mutate_report_query,
    add_report,
    remove_report,
    revise_pla,
    change_source_policy,
    insert_data_only,
]


# ---------------------------------------------------------------------------
# The property
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_incremental_equals_full_across_random_mutations(seed):
    rng = random.Random(seed)
    target = build_input()
    cache = VerdictCache()
    for _step in range(8):
        incremental = IncrementalVerifier(target, cache=cache).verify()
        full = DeploymentVerifier(target).verify()
        assert _signature(incremental) == _signature(full)
        target = rng.choice(MUTATIONS)(target, rng)
    # One final comparison after the last mutation.
    incremental = IncrementalVerifier(target, cache=cache).verify()
    full = DeploymentVerifier(target).verify()
    assert _signature(incremental) == _signature(full)


def test_unchanged_rerun_is_pure_cache_hit():
    target = build_input()
    cache = VerdictCache()
    IncrementalVerifier(target, cache=cache).verify()
    cache.hits = cache.misses = 0
    IncrementalVerifier(target, cache=cache).verify()
    assert cache.misses == 0
    assert cache.hits > 0


def test_data_only_insert_reuses_every_unit():
    target = build_input()
    cache = VerdictCache()
    IncrementalVerifier(target, cache=cache).verify()
    target = insert_data_only(target, random.Random(0))
    cache.hits = cache.misses = 0
    report = IncrementalVerifier(target, cache=cache).verify()
    assert cache.misses == 0
    assert _signature(report) == _signature(DeploymentVerifier(target).verify())


def test_report_mutation_reproves_exactly_one_unit():
    target = build_input()
    cache = VerdictCache()
    IncrementalVerifier(target, cache=cache).verify()
    target = mutate_report_query(target, random.Random(1))
    cache.hits = cache.misses = 0
    IncrementalVerifier(target, cache=cache).verify()
    assert cache.misses == 1


def test_pla_revision_invalidates_covered_reports():
    target = build_input()
    cache = VerdictCache()
    IncrementalVerifier(target, cache=cache).verify()
    target = revise_pla(target, random.Random(2))
    cache.hits = cache.misses = 0
    report = IncrementalVerifier(target, cache=cache).verify()
    # The revised meta-report unit plus every report it covers re-prove;
    # units under the untouched meta-report are all reused.
    assert cache.misses >= 2
    assert cache.hits >= 1
    assert _signature(report) == _signature(DeploymentVerifier(target).verify())


# ---------------------------------------------------------------------------
# Cache persistence
# ---------------------------------------------------------------------------


def test_cache_json_round_trip_stays_warm(tmp_path):
    target = build_input()
    cache = VerdictCache()
    baseline = IncrementalVerifier(target, cache=cache).verify()
    path = tmp_path / "cache.json"
    cache.save(str(path))

    reloaded = VerdictCache.load(str(path))
    assert len(reloaded) == len(cache)
    report = IncrementalVerifier(target, cache=reloaded).verify()
    assert reloaded.misses == 0
    assert _signature(report) == _signature(baseline)


def test_cache_load_tolerates_missing_and_corrupt_files(tmp_path):
    assert len(VerdictCache.load(str(tmp_path / "absent.json"))) == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert len(VerdictCache.load(str(bad))) == 0
    stale = tmp_path / "stale.json"
    stale.write_text('{"format": 999, "entries": {}}')
    assert len(VerdictCache.load(str(stale))) == 0


def test_check_result_serialization_round_trip():
    target = build_input()
    report = DeploymentVerifier(target).verify()
    assert report.results, "fixture produced no checks"
    for result in report.results:
        clone = result_from_dict(result_to_dict(result))
        assert clone.code == result.code
        assert clone.location == result.location
        assert clone.claim == result.claim
        assert clone.verdict == result.verdict
        assert clone.message == result.message
        assert clone.fix_hint == result.fix_hint
        assert (clone.trace is None) == (result.trace is None)
        if result.trace is not None:
            assert clone.trace.steps == result.trace.steps
