"""Tests for the delivery service (check → enforce → deliver → log)."""

import pytest

from repro.audit import Auditor
from repro.errors import ComplianceError

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


@pytest.fixture
def service(scenario):
    svc = scenario.delivery_service()
    yield svc
    # The session-scoped scenario shares the audit log; clear our additions.
    svc.audit_log.records.clear()
    svc.refusals.clear()


class TestDeliver:
    def _compliant_report(self, scenario):
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        return next(
            scenario.report_catalog.current(name)
            for name, verdict in sorted(verdicts.items())
            if verdict.compliant
        )

    def test_successful_delivery_is_logged(self, scenario, service):
        report = self._compliant_report(scenario)
        role = sorted(report.audience)[0]
        instance = service.deliver(
            report.name, user=ROLE_TO_USER[role], purpose=report.purpose
        )
        assert instance.definition.name == report.name
        assert len(service.audit_log) == 1
        assert service.audit_log.last().report == report.name
        assert service.refusals == []

    def test_unknown_report_refused_and_recorded(self, scenario, service):
        with pytest.raises(ComplianceError):
            service.deliver("rpt_999", user="ann", purpose="care/quality")
        assert service.refusals[-1].report == "rpt_999"
        assert len(service.audit_log) == 0

    def test_non_compliant_report_refused(self, scenario, service):
        verdicts = scenario.checker.check_catalog(
            scenario.report_catalog.all_current()
        )
        bad = next(
            name for name, verdict in sorted(verdicts.items()) if not verdict.compliant
        )
        report = scenario.report_catalog.current(bad)
        role = sorted(report.audience)[0]
        with pytest.raises(ComplianceError):
            service.deliver(bad, user=ROLE_TO_USER[role], purpose=report.purpose)
        assert service.refusals[-1].report == bad
        assert len(service.audit_log) == 0  # nothing disclosed

    def test_wrong_audience_refused(self, scenario, service):
        report = self._compliant_report(scenario)
        outsider = next(
            user
            for role, user in ROLE_TO_USER.items()
            if role not in report.audience
        )
        with pytest.raises(ComplianceError):
            service.deliver(report.name, user=outsider, purpose=report.purpose)
        assert service.refusals[-1].consumer == outsider

    def test_wrong_purpose_refused(self, scenario, service):
        report = self._compliant_report(scenario)
        role = sorted(report.audience)[0]
        wrong = next(
            p
            for p in ("care/quality", "admin/reimbursement", "research/epidemiology")
            if p != report.purpose
        )
        with pytest.raises(ComplianceError):
            service.deliver(report.name, user=ROLE_TO_USER[role], purpose=wrong)

    def test_deliver_all_compliant_audits_clean(self, scenario, service):
        delivered, refusals = service.deliver_all_compliant(ROLE_TO_USER)
        assert len(delivered) >= 10
        assert len(delivered) + len(refusals) >= len(
            scenario.report_catalog.all_current()
        ) - len(refusals)
        audit = Auditor(
            checker=scenario.checker, reports=scenario.report_catalog
        ).audit(service.audit_log)
        assert audit.clean, audit.summary()
