"""Unit tests for providers, consents, and the source gateway (Fig 2)."""

import pytest

from repro.errors import CatalogError, EnforcementError, PolicyError
from repro.anonymize import Pseudonymizer, QuasiIdentifier, is_k_anonymous
from repro.policy import IntensionalAssociation, SubjectRegistry
from repro.relational import parse_expression
from repro.sources import (
    CellPolicy,
    ConsentAgreement,
    ConsentRegistry,
    DataProvider,
    ProviderKind,
    SourceGateway,
    TrustPosture,
)
from repro.workloads import healthcare


@pytest.fixture
def subjects():
    reg = SubjectRegistry()
    reg.purposes.declare("care/quality")
    reg.purposes.declare("research")
    reg.add_role("analyst")
    reg.add_user("ann", "analyst")
    return reg


@pytest.fixture
def hospital(prescriptions, policies):
    provider = DataProvider("hospital", ProviderKind.HOSPITAL)
    provider.add_table(prescriptions)
    provider.consents = ConsentRegistry.from_policies_table(policies)
    return provider


class TestConsents:
    def test_from_policies_table_roundtrip(self, policies):
        registry = ConsentRegistry.from_policies_table(policies)
        assert len(registry) == 4
        assert registry.for_patient("Alice").show_name is True
        assert registry.for_patient("Alice").show_disease is False
        back = registry.to_policies_table()
        assert len(back) == 4

    def test_default_is_deny(self):
        registry = ConsentRegistry()
        consent = registry.for_patient("Unknown")
        assert not consent.show_name and not consent.show_disease

    def test_duplicate_consent_rejected(self):
        registry = ConsentRegistry()
        registry.add(ConsentAgreement("Alice", True, True))
        with pytest.raises(PolicyError):
            registry.add(ConsentAgreement("Alice", False, False))

    def test_purpose_prefix_semantics(self):
        consent = ConsentAgreement(
            "Alice", True, True, allowed_purposes=frozenset({"care"})
        )
        assert consent.permits_purpose("care")
        assert consent.permits_purpose("care/quality")
        assert not consent.permits_purpose("research")

    def test_empty_purposes_means_any(self):
        consent = ConsentAgreement("Alice", True, True)
        assert consent.permits_purpose("anything")


class TestProvider:
    def test_table_provider_tag_enforced(self, prescriptions):
        provider = DataProvider("clinic", ProviderKind.HOSPITAL)
        with pytest.raises(CatalogError):
            provider.add_table(prescriptions)  # tagged "hospital"

    def test_posture_for_skill(self):
        assert DataProvider.posture_for_skill(0.2) is TrustPosture.SOURCE_ENFORCES
        assert DataProvider.posture_for_skill(0.9) is TrustPosture.BI_ENFORCES

    def test_describe(self, hospital):
        text = hospital.describe()
        assert "hospital" in text and "prescriptions" in text


class TestGateway:
    def test_pseudonymizes_when_consent_denies_name(self, hospital, subjects):
        gateway = SourceGateway(
            hospital, pseudonymizer=Pseudonymizer(salt="s")
        )
        gateway.add_cell_policy(CellPolicy("patient", "show_name"))
        ctx = subjects.context("ann", "care/quality")
        out, report = gateway.export_table("prescriptions", ctx)
        # Math denies show_name; Chris/Alice/Bob allow it
        values = out.column_values("patient")
        assert "Math" not in values
        assert any(str(v).startswith("anon-") for v in values)
        assert report.cells_pseudonymized >= 1

    def test_suppresses_disease_per_consent(self, hospital, subjects):
        gateway = SourceGateway(hospital)
        gateway.add_cell_policy(
            CellPolicy("disease", "show_disease", action="suppress")
        )
        ctx = subjects.context("ann", "care/quality")
        out, report = gateway.export_table("prescriptions", ctx)
        by_patient = {}
        for row in out.iter_dicts():
            by_patient.setdefault(row["patient"], row["disease"])
        assert by_patient["Chris"] == "HIV"  # Chris consented to show_disease
        assert by_patient["Alice"] is None
        assert report.cells_suppressed >= 1

    def test_intensional_deny_row(self, hospital, subjects):
        hospital.metadata.add(
            IntensionalAssociation(
                "hiv-deny",
                "prescriptions",
                parse_expression("disease = 'HIV'"),
                {"deny_row": True},
            )
        )
        gateway = SourceGateway(hospital)
        ctx = subjects.context("ann", "care/quality")
        out, report = gateway.export_table("prescriptions", ctx)
        assert report.rows_dropped_intensional == 2
        assert "HIV" not in out.column_values("disease")

    def test_intensional_mask_columns(self, hospital, subjects):
        hospital.metadata.add(
            IntensionalAssociation(
                "hiv-mask",
                "prescriptions",
                parse_expression("disease = 'HIV'"),
                {"mask_columns": ("doctor",)},
            )
        )
        gateway = SourceGateway(hospital)
        ctx = subjects.context("ann", "care/quality")
        out, _ = gateway.export_table("prescriptions", ctx)
        hiv_rows = [r for r in out.iter_dicts() if r["disease"] == "HIV"]
        assert all(r["doctor"] is None for r in hiv_rows)

    def test_purpose_enforcement_drops_rows(self, hospital, subjects):
        hospital.consents = ConsentRegistry()
        hospital.consents.add(
            ConsentAgreement(
                "Alice", True, True, allowed_purposes=frozenset({"care"})
            )
        )
        hospital.consents.default = ConsentAgreement(
            "<default>", False, False, allowed_purposes=frozenset({"care"})
        )
        gateway = SourceGateway(hospital)
        gateway.add_cell_policy(CellPolicy("patient", "show_name", action="suppress"))
        ctx = subjects.context("ann", "research")
        out, report = gateway.export_table("prescriptions", ctx)
        assert report.rows_dropped_purpose == 5
        assert len(out) == 0

    def test_missing_pseudonymizer_raises(self, hospital, subjects):
        gateway = SourceGateway(hospital)
        gateway.add_cell_policy(CellPolicy("patient", "show_name"))
        ctx = subjects.context("ann", "care/quality")
        with pytest.raises(EnforcementError):
            gateway.export_table("prescriptions", ctx)

    def test_k_anonymization_pass(self, subjects):
        data = healthcare.generate(
            healthcare.HealthcareConfig(n_patients=100, n_prescriptions=0, n_exams=0)
        )
        municipality = DataProvider("municipality", ProviderKind.MUNICIPALITY)
        municipality.add_table(data.residents)
        gateway = SourceGateway(municipality, enforce_purpose=False)
        gateway.require_k_anonymity(
            [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")], k=5
        )
        ctx = subjects.context("ann", "care/quality")
        out, report = gateway.export_table("residents", ctx)
        assert report.k_anonymized
        assert is_k_anonymous(out, ["zip", "birth_year"], 5)

    def test_invalid_cell_action_rejected(self):
        with pytest.raises(EnforcementError):
            CellPolicy("patient", "show_name", action="shred")

    def test_l_diversity_pass(self, subjects):
        from repro.anonymize import is_l_diverse

        data = healthcare.generate(
            healthcare.HealthcareConfig(n_patients=120, n_prescriptions=0, n_exams=0)
        )
        municipality = DataProvider("municipality", ProviderKind.MUNICIPALITY)
        municipality.add_table(data.residents)
        gateway = SourceGateway(municipality, enforce_purpose=False)
        gateway.require_k_anonymity(
            [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")], k=3
        )
        gateway.require_l_diversity("gender", 2)
        ctx = subjects.context("ann", "care/quality")
        out, report = gateway.export_table("residents", ctx)
        assert report.k_anonymized
        assert is_k_anonymous(out, ["zip", "birth_year"], 3)
        assert is_l_diverse(out, ["zip", "birth_year"], "gender", 2).satisfied

    def test_l_diversity_requires_k_anonymity(self, hospital):
        gateway = SourceGateway(hospital)
        with pytest.raises(EnforcementError):
            gateway.require_l_diversity("disease", 2)
