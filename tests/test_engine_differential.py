"""Differential tests: the columnar batch executor against the row-store
reference engine.

The row engine (:func:`repro.relational.execute_row`) is the semantics
oracle. For hypothesis-generated random tables (NULL-heavy) and random query
trees — joins (inner and left outer), three-valued WHERE logic, grouping and
aggregates, HAVING, computed projections, DISTINCT, ORDER BY, LIMIT — the
columnar path (with plan caching disabled, so every run actually executes)
must produce:

* the same output schema,
* the same rows in the same order (which implies bag equality), and
* *identical provenance*: why-lineage and per-cell where-provenance,
  value-equal row by row — the property PLA auditing depends on;

and when the reference raises, the columnar path must raise the same
exception type with the same message.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational import (
    AggSpec,
    Catalog,
    ExecutionConfig,
    Query,
    Table,
    View,
    execute,
    execute_row,
    make_schema,
    parse_query,
)
from repro.relational.expressions import And, Arith, Col, Comparison, IsNull, Lit, Not, Or
from repro.relational.types import ColumnType

UNCACHED = ExecutionConfig(mode="columnar", use_plan_cache=False)

T_SCHEMA = make_schema(
    ("g", ColumnType.STRING),
    ("x", ColumnType.INT),
    ("y", ColumnType.INT),
)
D_SCHEMA = make_schema(("h", ColumnType.STRING), ("z", ColumnType.INT))

# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------


def _run(engine, query, catalog):
    try:
        return engine(query, catalog), None
    except Exception as exc:  # noqa: BLE001 - parity includes error parity
        return None, exc


def assert_equivalent(query: Query, catalog: Catalog) -> None:
    """Both engines agree on result (rows, order, schema, provenance) or on
    the raised exception (type and message)."""
    ref, ref_exc = _run(execute_row, query, catalog)
    got, got_exc = _run(
        lambda q, c: execute(q, c, config=UNCACHED), query, catalog
    )
    if ref_exc is not None or got_exc is not None:
        assert got_exc is not None, f"columnar succeeded, reference raised {ref_exc!r}"
        assert ref_exc is not None, f"reference succeeded, columnar raised {got_exc!r}"
        assert type(got_exc) is type(ref_exc), (ref_exc, got_exc)
        assert str(got_exc) == str(ref_exc)
        return
    assert got.schema == ref.schema
    assert list(got.rows) == list(ref.rows)
    assert list(got.provenance) == list(ref.provenance)


def build_catalog(t_rows, d_rows) -> Catalog:
    cat = Catalog()
    cat.add_table(Table.from_rows("t", T_SCHEMA, t_rows, provider="p"))
    cat.add_table(Table.from_rows("d", D_SCHEMA, d_rows, provider="q"))
    return cat


# ---------------------------------------------------------------------------
# Strategies: NULL-heavy tables, random query trees
# ---------------------------------------------------------------------------

_g = st.one_of(st.none(), st.sampled_from(["a", "b", "c"]))
_i = st.one_of(st.none(), st.integers(min_value=-4, max_value=4))

t_rows_strategy = st.lists(st.tuples(_g, _i, _i), min_size=0, max_size=20)
d_rows_strategy = st.lists(st.tuples(_g, _i), min_size=0, max_size=10)

_OPS = ["=", "!=", "<", "<=", ">", ">="]


def _predicates(int_cols: list[str], str_cols: list[str]):
    int_leaf = st.builds(
        lambda c, op, v: Comparison(op, Col(c), Lit(v)),
        st.sampled_from(int_cols),
        st.sampled_from(_OPS),
        st.integers(min_value=-3, max_value=3),
    )
    str_leaf = st.builds(
        lambda c, op, v: Comparison(op, Col(c), Lit(v)),
        st.sampled_from(str_cols),
        st.sampled_from(["=", "!="]),
        st.sampled_from(["a", "b"]),
    )
    null_leaf = st.builds(IsNull, st.builds(Col, st.sampled_from(int_cols + str_cols)))
    col_col = st.builds(
        lambda l, op, r: Comparison(op, Col(l), Col(r)),
        st.sampled_from(int_cols),
        st.sampled_from(_OPS),
        st.sampled_from(int_cols),
    )
    leaf = st.one_of(int_leaf, str_leaf, null_leaf, col_col)
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.builds(And, inner, inner),
            st.builds(Or, inner, inner),
            st.builds(Not, inner),
        ),
        max_leaves=5,
    )


_AGG_MENU = [
    AggSpec("count", None, "cnt"),
    AggSpec("sum", "x", "sx"),
    AggSpec("min", "y", "mny"),
    AggSpec("max", "x", "mxx"),
    AggSpec("count", "g", "cdg", distinct=True),
]


@st.composite
def query_trees(draw) -> Query:
    q = Query.from_("t")
    str_cols, int_cols = ["g"], ["x", "y"]
    if draw(st.booleans()):
        how = draw(st.sampled_from(["inner", "left"]))
        on = draw(st.sampled_from([[("g", "h")], [("x", "z")], [("g", "h"), ("x", "z")]]))
        q = q.join("d", on, how=how)
        str_cols, int_cols = str_cols + ["h"], int_cols + ["z"]
    if draw(st.booleans()):
        q = q.filter(draw(_predicates(int_cols, str_cols)))

    if draw(st.booleans()):  # aggregate pipeline
        group = draw(st.sampled_from([(), ("g",), ("g", "x")]))
        aggs = draw(
            st.lists(st.sampled_from(_AGG_MENU), min_size=0 if group else 1, max_size=3)
        )
        if group:
            q = q.group(*group)
        q = q.agg(*aggs)
        out_ints = [a.alias for a in aggs] + [c for c in group if c != "g"]
        if out_ints and draw(st.booleans()):
            q = q.having_(
                Comparison(
                    draw(st.sampled_from(_OPS)),
                    Col(draw(st.sampled_from(out_ints))),
                    Lit(draw(st.integers(min_value=-2, max_value=4))),
                )
            )
        out_names = list(group) + [a.alias for a in aggs]
        if out_names and draw(st.booleans()):
            q = q.project(*draw(st.permutations(out_names)))
    else:  # plain pipeline
        out_names = str_cols + int_cols
        if draw(st.booleans()):
            items: list = list(draw(st.permutations(out_names))[:3])
            if draw(st.booleans()):
                items.append(
                    (
                        "calc",
                        Arith(
                            draw(st.sampled_from(["+", "-", "*"])),
                            Col(draw(st.sampled_from(int_cols))),
                            Col(draw(st.sampled_from(int_cols))),
                        ),
                    )
                )
            q = q.project(*items)
            out_names = [i if isinstance(i, str) else i[0] for i in items]

    if draw(st.booleans()):
        q = q.distinct()
    if out_names and draw(st.booleans()):
        keys = [
            (c, draw(st.booleans()))
            for c in draw(st.permutations(out_names))[:2]
        ]
        q = q.order_by(*keys)
    if draw(st.booleans()):
        q = q.limit(draw(st.integers(min_value=0, max_value=7)))
    return q


# ---------------------------------------------------------------------------
# Property: random query trees over random NULL-heavy instances
# ---------------------------------------------------------------------------


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(t_rows=t_rows_strategy, d_rows=d_rows_strategy, query=query_trees())
def test_columnar_matches_row_reference(t_rows, d_rows, query):
    assert_equivalent(query, build_catalog(t_rows, d_rows))


@settings(max_examples=60, deadline=None)
@given(t_rows=t_rows_strategy, sql_where=st.sampled_from([
    "x > 1",
    "x > 1 AND y < 2",
    "NOT (g = 'a')",
    "g = 'a' OR x <= 0",
    "x IS NULL",
    "x IS NOT NULL AND y IS NULL",
]))
def test_three_valued_where_parity(t_rows, sql_where):
    """UNKNOWN must exclude rows identically on both paths."""
    cat = build_catalog(t_rows, [])
    assert_equivalent(parse_query(f"SELECT g, x FROM t WHERE {sql_where}"), cat)


# ---------------------------------------------------------------------------
# Pinned regressions: the corners the property test found or must keep
# ---------------------------------------------------------------------------


def test_empty_tables_everywhere():
    cat = build_catalog([], [])
    for sql in (
        "SELECT g, x FROM t",
        "SELECT g, x FROM t WHERE x > 0",
        "SELECT g FROM t JOIN d ON g = h",
        "SELECT COUNT(*) AS n FROM t",
        "SELECT g, SUM(x) AS sx FROM t GROUP BY g",
    ):
        assert_equivalent(parse_query(sql), cat)


def test_scalar_aggregate_on_empty_input_emits_one_row():
    cat = build_catalog([], [])
    out = execute(parse_query("SELECT COUNT(*) AS n FROM t"), cat, config=UNCACHED)
    ref = execute_row(parse_query("SELECT COUNT(*) AS n FROM t"), cat)
    assert list(out.rows) == list(ref.rows) == [(0,)]


def test_left_join_miss_provenance_drops_right_keys():
    """Reference left-miss rows carry only left-side where keys; the
    columnar path must reproduce the *exact* dict, not an empty-ref one."""
    cat = build_catalog([("a", 1, 1), ("zzz", 2, 2)], [("a", 1)])
    q = Query.from_("t").join("d", [("g", "h")], how="left")
    assert_equivalent(q, cat)
    ref = execute_row(q, cat)
    miss = [p for r, p in zip(ref.rows, ref.provenance) if r[0] == "zzz"]
    assert miss and set(miss[0].where) == {"g", "x", "y"}


def test_chained_join_over_left_outer_partial_provenance():
    """A left-outer result (with partial where dicts) fed into a second
    join exercises the exact-rebuild path."""
    cat = build_catalog([("a", 1, 1), ("b", 2, 2)], [("a", 7)])
    q = (
        Query.from_("t")
        .join("d", [("g", "h")], how="left")
        .join("d", [("x", "z")], how="left")
    )
    assert_equivalent(q, cat)


def test_collision_join_qualifies_both_sides():
    cat = Catalog()
    cat.add_table(Table.from_rows("t", T_SCHEMA, [("a", 1, 2)], provider="p"))
    c_schema = make_schema(("g", ColumnType.STRING), ("x", ColumnType.INT))
    cat.add_table(Table.from_rows("c", c_schema, [("a", 9)], provider="q"))
    for q in (
        Query.from_("t").join("c", [("g", "g")]),
        Query.from_("t").join("c", [("g", "g")]).project("t.g", "c.x"),
        Query.from_("t").join("c", [("g", "g")]).filter(
            Comparison(">", Col("c.x"), Lit(0))
        ).project("t.x", "c.x"),
    ):
        assert_equivalent(q, cat)


def test_view_chain_parity():
    cat = build_catalog([("a", 1, 2), ("b", None, 3), ("a", 4, None)], [("a", 1)])
    cat.add_view(View("v1", parse_query("SELECT g, x FROM t WHERE x IS NOT NULL")))
    cat.add_view(View("v2", parse_query("SELECT g FROM v1 WHERE x > 0")))
    assert_equivalent(parse_query("SELECT g FROM v1"), cat)
    assert_equivalent(parse_query("SELECT COUNT(*) AS n FROM v1 GROUP BY g"), cat)
    # v2 is invalid (x was projected away) — both engines must agree on that too.
    assert_equivalent(parse_query("SELECT g FROM v2"), cat)


def test_distinct_merges_provenance_identically():
    cat = build_catalog([("a", 1, 1), ("a", 1, 2), ("a", 1, 3)], [])
    assert_equivalent(parse_query("SELECT DISTINCT g, x FROM t"), cat)


def test_order_by_nulls_last_both_directions():
    cat = build_catalog([("a", None, 1), ("b", 2, 1), ("c", 1, 1), ("d", None, 2)], [])
    assert_equivalent(parse_query("SELECT g, x FROM t ORDER BY x"), cat)
    assert_equivalent(parse_query("SELECT g, x FROM t ORDER BY x DESC, g"), cat)


def test_limit_zero_and_overshoot():
    cat = build_catalog([("a", 1, 1), ("b", 2, 2)], [])
    assert_equivalent(parse_query("SELECT g FROM t LIMIT 0"), cat)
    assert_equivalent(parse_query("SELECT g FROM t LIMIT 99"), cat)


def test_error_parity_on_bad_queries():
    cat = build_catalog([("a", 1, 1)], [("a", 1)])
    for sql_or_query in (
        parse_query("SELECT nope FROM t"),
        parse_query("SELECT g FROM t WHERE nope > 1"),
        parse_query("SELECT g FROM missing"),
        Query.from_("t").having_(Comparison(">", Col("x"), Lit(0))).project("g"),
        Query.from_("t")
        .filter(Comparison(">", Col("x"), Lit(0)))
        .having_(Comparison(">", Col("x"), Lit(0)))
        .project("g"),
    ):
        assert_equivalent(sql_or_query, cat)


def test_count_distinct_and_nan_free_dedup():
    cat = build_catalog(
        [("a", 1, 1), ("a", 1, 2), ("a", 2, 3), ("b", None, 4)], []
    )
    assert_equivalent(
        parse_query("SELECT g, COUNT(DISTINCT x) AS dx FROM t GROUP BY g"), cat
    )


def test_bare_select_star_returns_base_contents():
    cat = build_catalog([("a", 1, 1)], [])
    ref = execute_row(Query.from_("t"), cat)
    got = execute(Query.from_("t"), cat, config=UNCACHED)
    assert list(got.rows) == list(ref.rows)
    assert list(got.provenance) == list(ref.provenance)
    assert got.schema == ref.schema


@pytest.mark.parametrize("how", ["inner", "left"])
def test_null_join_keys_never_match(how):
    cat = build_catalog([(None, 1, 1), ("a", 2, 2)], [(None, 5), ("a", 6)])
    q = Query.from_("t").join("d", [("g", "h")], how=how)
    assert_equivalent(q, cat)
