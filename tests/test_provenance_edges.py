"""Edge cases in provenance classification and flow catalog reuse."""

import pytest

from repro.etl import DedupeOp, EtlFlow, ExtractOp
from repro.provenance import CellOrigin, classify_cell
from repro.relational import Catalog, Table, execute, make_schema, parse_query
from repro.relational.types import ColumnType


class TestClassifyCellDerived:
    def test_computed_cell_is_derived(self, paper_catalog):
        out = execute(
            parse_query("SELECT cost * 2 AS doubled FROM drugcost"), paper_catalog
        )
        cell = classify_cell(out, 0, "doubled")
        assert cell.origin is CellOrigin.DERIVED
        assert all(ref.column == "cost" for ref in cell.sources)

    def test_renamed_copy_still_copied(self, paper_catalog):
        out = execute(
            parse_query("SELECT patient AS person FROM prescriptions"), paper_catalog
        )
        cell = classify_cell(out, 0, "person")
        # alias differs from the source column name: ref-cardinality 1 but
        # column identity differs → classified as derived-from-one-cell
        assert cell.origin in (CellOrigin.COPIED, CellOrigin.DERIVED)
        assert len(cell.sources) == 1

    def test_null_constant_cell_is_opaque(self, paper_catalog):
        from repro.relational import Query
        from repro.relational.expressions import Lit

        out = execute(
            Query.from_("prescriptions").project(("marker", Lit("x"))),
            paper_catalog,
        )
        cell = classify_cell(out, 0, "marker")
        assert cell.origin is CellOrigin.OPAQUE
        assert "no base origin" in cell.describe()


class TestFlowCatalogReuse:
    def test_flow_can_consume_pre_registered_tables(self):
        cat = Catalog()
        schema = make_schema(("a", ColumnType.INT))
        cat.add_table(
            Table.from_rows("seed", schema, [(1,), (1,), (2,)], provider="p")
        )
        flow = EtlFlow("f")
        flow.add(DedupeOp("d", "seed", "deduped"))
        result = flow.run(cat)
        assert result.clean
        assert len(cat.table("deduped")) == 2

    def test_rerun_replaces_outputs(self, prescriptions):
        cat = Catalog()
        flow = EtlFlow("f")
        flow.add(ExtractOp("x", prescriptions, "staged"))
        flow.run(cat)
        first = cat.table("staged")
        flow2 = EtlFlow("f")
        flow2.add(ExtractOp("x", prescriptions, "staged"))
        flow2.run(cat)
        assert cat.table("staged") is not first  # replaced, not appended
        assert len(cat.table("staged")) == len(prescriptions)

    def test_validate_accepts_catalog_views_as_inputs(self, paper_catalog):
        flow = EtlFlow("f")
        flow.add(DedupeOp("d", "nohiv", "out"))
        # nohiv is a *view*; DedupeOp reads tables — validate passes (the
        # name exists) but run fails cleanly at resolution time.
        flow.validate(paper_catalog)
        with pytest.raises(Exception):
            flow.run(paper_catalog)
