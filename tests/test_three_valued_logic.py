"""SQL three-valued logic: the NULL semantics privacy conditions rely on."""

import pytest

from repro.relational import Table, execute, make_schema, parse_expression, parse_query
from repro.relational.catalog import Catalog
from repro.relational.expressions import col, lit
from repro.relational.types import ColumnType

ROW_NULL = {"disease": None, "cost": None, "flag": None}
ROW_HIV = {"disease": "HIV", "cost": 10, "flag": True}
ROW_OK = {"disease": "asthma", "cost": 10, "flag": False}


class TestKleeneTables:
    def test_comparison_with_null_is_unknown(self):
        assert (col("disease") == "HIV").evaluate(ROW_NULL) is None
        assert (col("disease") != "HIV").evaluate(ROW_NULL) is None
        assert (col("cost") > 5).evaluate(ROW_NULL) is None

    def test_not_propagates_unknown(self):
        expr = ~(col("disease") == "HIV")
        assert expr.evaluate(ROW_NULL) is None
        assert expr.evaluate(ROW_HIV) is False
        assert expr.evaluate(ROW_OK) is True

    def test_and_truth_table(self):
        unknown = col("disease") == "HIV"  # UNKNOWN on ROW_NULL
        assert (lit(False) & unknown).evaluate(ROW_NULL) is False
        assert (unknown & lit(False)).evaluate(ROW_NULL) is False
        assert (lit(True) & unknown).evaluate(ROW_NULL) is None
        assert (unknown & unknown).evaluate(ROW_NULL) is None
        assert (lit(True) & lit(True)).evaluate(ROW_NULL) is True

    def test_or_truth_table(self):
        assert (lit(True) | (col("disease") == "HIV")).evaluate(ROW_NULL) is True
        assert (lit(False) | (col("disease") == "HIV")).evaluate(ROW_NULL) is None
        assert (lit(False) | lit(False)).evaluate(ROW_NULL) is False

    def test_in_list_null_is_unknown(self):
        assert parse_expression("disease IN ('HIV', 'flu')").evaluate(ROW_NULL) is None

    def test_is_null_is_boolean(self):
        assert parse_expression("disease IS NULL").evaluate(ROW_NULL) is True
        assert parse_expression("disease IS NOT NULL").evaluate(ROW_NULL) is False


class TestPrivacyPolarity:
    """UNKNOWN must never disclose: both spellings of the HIV rule hide
    rows with an unrecorded disease."""

    @pytest.fixture
    def catalog(self):
        schema = make_schema(
            ("patient", ColumnType.STRING),
            ("disease", ColumnType.STRING),
        )
        table = Table.from_rows(
            "t",
            schema,
            [("Alice", "HIV"), ("Bob", "asthma"), ("Mist", None)],
            provider="p",
        )
        cat = Catalog()
        cat.add_table(table)
        return cat

    def test_both_spellings_agree_on_null(self, catalog):
        direct = execute(
            parse_query("SELECT patient FROM t WHERE disease != 'HIV'"), catalog
        )
        negated = execute(
            parse_query("SELECT patient FROM t WHERE NOT disease = 'HIV'"), catalog
        )
        assert {r[0] for r in direct.rows} == {"Bob"}
        assert {r[0] for r in negated.rows} == {"Bob"}

    def test_unknown_never_reaches_either_branch(self, catalog):
        shown = execute(
            parse_query("SELECT patient FROM t WHERE disease = 'HIV'"), catalog
        )
        hidden = execute(
            parse_query("SELECT patient FROM t WHERE disease != 'HIV'"), catalog
        )
        assert "Mist" not in {r[0] for r in shown.rows}
        assert "Mist" not in {r[0] for r in hidden.rows}

    def test_explicit_null_handling_recovers_the_row(self, catalog):
        out = execute(
            parse_query(
                "SELECT patient FROM t WHERE disease != 'HIV' OR disease IS NULL"
            ),
            catalog,
        )
        assert {r[0] for r in out.rows} == {"Bob", "Mist"}

    def test_intensional_condition_conservative_on_null(self, catalog):
        from repro.policy import IntensionalAssociation

        assoc = IntensionalAssociation(
            "show-only-non-hiv",
            "t",
            parse_expression("disease != 'HIV'"),
            {"show": True},
        )
        assert not assoc.covers({"disease": None})  # unknown → not shown
