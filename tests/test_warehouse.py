"""Unit tests for star schemas, cubes, authorization, and DWH metadata."""

import pytest

from repro.errors import PolicyError, WarehouseError
from repro.policy import IntensionalAssociation, SubjectRegistry
from repro.relational import Catalog, execute, parse_expression
from repro.relational.algebra import AggSpec
from repro.relational.expressions import col
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType
from repro.warehouse import (
    ColumnAnnotation,
    Cube,
    CubeAuthorizationRule,
    CubeAuthorizer,
    PrivacyMetadataRegistry,
    StarSchema,
    TableAnnotation,
    build_dimension,
    build_fact,
)


@pytest.fixture
def wide():
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", 60),
        ("Alice", "DR", "asthma", 10),
        ("Bob", "DR", "asthma", 10),
        ("Math", "DM", "diabetes", 10),
        ("Chris", "DV", "HIV", 30),
        ("Bob", "DR", "asthma", 10),
    ]
    return Table.from_rows("wide", schema, rows, provider="hospital")


@pytest.fixture
def star(wide):
    dim_drug = build_dimension("drug", wide, ["drug", "disease"], levels=["drug", "disease"])
    dim_patient = build_dimension("patient", wide, ["patient"])
    fact = build_fact(
        "rx",
        wide,
        [
            (dim_drug, {"drug": "drug", "disease": "disease"}),
            (dim_patient, {"patient": "patient"}),
        ],
        measures=["cost"],
    )
    return StarSchema("rx", fact, [dim_drug, dim_patient])


class TestStar:
    def test_dimension_has_dense_surrogates(self, wide):
        dim = build_dimension("drug", wide, ["drug"])
        keys = dim.table.column_values("drug_id")
        assert keys == list(range(len(dim.table)))

    def test_dimension_has_empty_lineage_but_where(self, wide):
        # Dimension members are reference data: no lineage, but the where-
        # provenance unions every base cell that exhibited the member.
        dim = build_dimension("drug", wide, ["drug"])
        dr = [i for i in range(len(dim.table)) if dim.table.rows[i][1] == "DR"][0]
        assert dim.table.lineage_of(dr) == frozenset()
        assert len(dim.table.provenance[dr].where_of("drug")) == 3

    def test_fact_preserves_row_count_and_lineage(self, star, wide):
        assert len(star.fact) == len(wide)
        assert star.fact.all_lineage() == wide.all_lineage()

    def test_fact_rejects_missing_member(self, wide):
        dim = build_dimension("drug", wide, ["drug"])
        other = Table.from_rows(
            "w2", wide.schema, [("X", "ZZ", "flu", 1)], provider="hospital"
        )
        with pytest.raises(WarehouseError):
            build_fact("bad", other, [(dim, {"drug": "drug"})], ["cost"])

    def test_wide_view_roundtrip(self, star, wide):
        cat = Catalog()
        star.register(cat)
        out = execute(cat.view(star.wide_view_name()).query, cat)
        assert len(out) == len(wide)
        assert set(out.schema.names) == {"drug", "disease", "patient", "cost"}

    def test_attribute_dimension_lookup(self, star):
        assert star.attribute_dimension("disease").name == "drug"
        with pytest.raises(WarehouseError):
            star.attribute_dimension("unknown")

    def test_level_of(self, star):
        dim = star.dimension("drug")
        assert dim.level_of("drug") == 0 and dim.level_of("disease") == 1


class TestCube:
    @pytest.fixture
    def cube(self, star):
        return Cube(star, Catalog())

    def test_aggregate_by_drug(self, cube):
        cq = cube.base_query(["drug"], [AggSpec("count", None, "n")])
        out = cube.evaluate(cq)
        counts = dict(out.rows)
        assert counts == {"DH": 1, "DR": 3, "DM": 1, "DV": 1}

    def test_rollup_drug_to_disease(self, cube):
        cq = cube.base_query(["drug"], [AggSpec("sum", "cost", "total")])
        rolled = cube.rollup(cq, "drug")
        assert rolled.group_by == ("disease",)
        out = cube.evaluate(rolled)
        totals = dict(out.rows)
        assert totals == {"HIV": 90, "asthma": 30, "diabetes": 10}

    def test_rollup_at_top_drops_attribute(self, cube):
        cq = cube.base_query(["disease"], [AggSpec("count", None, "n")])
        rolled = cube.rollup(cq, "disease")
        assert rolled.group_by == ()
        out = cube.evaluate(rolled)
        assert out.rows == [(6,)]

    def test_drilldown(self, cube):
        cq = cube.base_query(["disease"], [AggSpec("count", None, "n")])
        drilled = cube.drilldown(cq, "disease")
        assert drilled.group_by == ("drug",)

    def test_drilldown_at_bottom_rejected(self, cube):
        cq = cube.base_query(["drug"], [AggSpec("count", None, "n")])
        with pytest.raises(WarehouseError):
            cube.drilldown(cq, "drug")

    def test_slice(self, cube):
        cq = cube.base_query(["drug"], [AggSpec("count", None, "n")])
        sliced = cube.slice(cq, col("disease") == "asthma")
        out = cube.evaluate(sliced)
        assert dict(out.rows) == {"DR": 3}

    def test_dice_subset_only(self, cube):
        cq = cube.base_query(["drug", "patient"], [AggSpec("count", None, "n")])
        diced = cube.dice(cq, "drug")
        assert diced.group_by == ("drug",)
        with pytest.raises(WarehouseError):
            cube.dice(cq, "disease")

    def test_unknown_attribute_rejected(self, cube):
        with pytest.raises(WarehouseError):
            cube.evaluate(cube.base_query(["nope"], [AggSpec("count", None, "n")]))


class TestCubeAuthorization:
    @pytest.fixture
    def setup(self, star):
        cube = Cube(star, Catalog())
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        authorizer = CubeAuthorizer(cube)
        authorizer.add_rule(
            CubeAuthorizationRule(
                role="analyst",
                max_detail={"drug": "drug"},  # patient dimension not allowed
                min_cell_contributors=2,
                denied_slices=(col("disease") == "HIV",),
            )
        )
        return cube, subjects, authorizer

    def test_allows_within_detail(self, setup):
        cube, subjects, auth = setup
        ctx = subjects.context("ann", "care")
        cq = cube.base_query(["drug"], [AggSpec("count", None, "n")])
        published, suppressed = auth.evaluate(ctx, cq)
        # HIV rows (DH, DV) are filtered out before aggregation, so those
        # cells never exist; DM's single contributor is below the floor.
        assert dict(published.rows) == {"DR": 3}
        assert suppressed == 1

    def test_denies_unlisted_dimension(self, setup):
        cube, subjects, auth = setup
        ctx = subjects.context("ann", "care")
        cq = cube.base_query(["patient"], [AggSpec("count", None, "n")])
        with pytest.raises(PolicyError):
            auth.evaluate(ctx, cq)

    def test_denies_finer_than_allowed(self, star):
        cube = Cube(star, Catalog())
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        auth = CubeAuthorizer(cube)
        auth.add_rule(
            CubeAuthorizationRule(role="analyst", max_detail={"drug": "disease"})
        )
        ctx = subjects.context("ann", "care")
        decision = auth.check(ctx, cube.base_query(["drug"], [AggSpec("count", None, "n")]))
        assert not decision
        decision2 = auth.check(
            ctx, cube.base_query(["disease"], [AggSpec("count", None, "n")])
        )
        assert decision2

    def test_no_rule_denied(self, setup):
        cube, subjects, auth = setup
        subjects.add_role("guest")
        subjects.add_user("gus", "guest")
        ctx = subjects.context("gus", "care")
        decision = auth.check(ctx, cube.base_query(["drug"], [AggSpec("count", None, "n")]))
        assert not decision

    def test_duplicate_rule_rejected(self, setup):
        _, _, auth = setup
        with pytest.raises(PolicyError):
            auth.add_rule(CubeAuthorizationRule(role="analyst", max_detail={}))


class TestPrivacyMetadataRegistry:
    def test_column_annotations(self):
        reg = PrivacyMetadataRegistry()
        reg.annotate_column(
            ColumnAnnotation("dwh", "patient", sensitivity="identifying")
        )
        reg.annotate_column(
            ColumnAnnotation(
                "dwh", "disease", sensitivity="sensitive",
                allowed_roles=frozenset({"director"}),
            )
        )
        assert reg.sensitive_columns("dwh") == ("disease", "patient")
        ann = reg.column_annotation("dwh", "disease")
        assert ann is not None and not ann.permits_role("analyst")
        with pytest.raises(PolicyError):
            reg.annotate_column(ColumnAnnotation("dwh", "patient"))

    def test_table_annotations_and_join_rules(self):
        reg = PrivacyMetadataRegistry()
        reg.annotate_table(
            TableAnnotation("residents", joinable_with=frozenset({"prescriptions"}))
        )
        assert reg.join_permitted("residents", "prescriptions")
        assert not reg.join_permitted("residents", "exams")
        assert reg.join_permitted("other", "exams")  # unannotated = permitted

    def test_min_aggregation_composes(self):
        reg = PrivacyMetadataRegistry()
        reg.annotate_table(TableAnnotation("a", min_aggregation=5))
        reg.annotate_table(TableAnnotation("b", min_aggregation=10))
        assert reg.min_aggregation_for({"a", "b"}) == 10
        assert reg.min_aggregation_for({"c"}) == 1

    def test_purpose_restrictions(self):
        reg = PrivacyMetadataRegistry()
        reg.annotate_table(
            TableAnnotation("a", allowed_purposes=frozenset({"care"}))
        )
        ann = reg.table_annotation("a")
        assert ann is not None
        assert ann.permits_purpose("care/quality")
        assert not ann.permits_purpose("research")

    def test_row_rules(self):
        reg = PrivacyMetadataRegistry()
        reg.add_row_rule(
            IntensionalAssociation(
                "hiv", "dwh", parse_expression("disease = 'HIV'"), {"mask": True}
            )
        )
        assert reg.row_restrictions_for("dwh", {"disease": "HIV"}) == {"mask": True}
        assert reg.row_restrictions_for("dwh", {"disease": "flu"}) == {}
        assert reg.annotation_count() == 1
