"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def shared_scenario():
    """Patch the CLI's scenario builder to reuse one instance (speed)."""
    from repro.simulation import build_scenario

    return build_scenario()


@pytest.fixture(autouse=True)
def _reuse_scenario(monkeypatch, shared_scenario):
    monkeypatch.setattr("repro.cli._scenario", lambda: shared_scenario)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_scenario(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "compliance:" in out and "meta-reports: 4" in out

    def test_check_compliant(self, capsys):
        code = main(
            [
                "check",
                "SELECT drug, COUNT(*) AS n FROM wide_prescriptions GROUP BY drug",
            ]
        )
        assert code == 0
        assert "COMPLIANT" in capsys.readouterr().out

    def test_check_non_compliant_exits_nonzero(self, capsys):
        code = main(
            [
                "check",
                "SELECT patient, drug FROM wide_prescriptions",
                "--audience",
                "municipality_official",
            ]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_check_bad_sql_is_error(self, capsys):
        assert main(["check", "SELECT FROM"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_deliver(self, capsys):
        code = main(["deliver", "rpt_001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered to:" in out

    def test_deliver_unknown_report(self, capsys):
        assert main(["deliver", "rpt_999"]) == 2

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_gaps(self, capsys):
        assert main(["gaps", "--n", "40", "--show", "3"]) == 0
        out = capsys.readouterr().out
        assert "PLA coverage:" in out

    def test_fig_runs_a_bench_main(self, capsys):
        assert main(["fig", "3"]) == 0
        out = capsys.readouterr().out
        assert "FIG3" in out

    def test_bench_smoke_writes_json(self, capsys, tmp_path):
        import json

        target = str(tmp_path / "bench.json")
        assert main(["bench", "--smoke", "--json", target]) == 0
        out = capsys.readouterr().out
        assert "columnar batch executor" in out
        data = json.loads((tmp_path / "bench.json").read_text())
        assert data["smoke"] is True
        assert data["summary"]["max_speedup_at_largest"] > 1.0
        assert data["containment"]["speedup"] > 1.0

    def test_lint_text(self, capsys):
        assert main(["lint"]) == 0  # scenario has warnings, no errors
        out = capsys.readouterr().out
        assert out.startswith("lint[")
        assert "warning(s)" in out
        assert "hint:" in out

    def test_lint_json_is_machine_readable(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["error"] == 0
        assert data["counts"]["warning"] > 0
        assert data["coverage"]["reports"] == 30
        codes = {d["code"] for d in data["diagnostics"]}
        assert {"ETL001", "PLA001", "RPT002"} <= codes

    def test_lint_fail_on_warning_exits_nonzero(self, capsys):
        assert main(["lint", "--fail-on", "warning"]) == 1

    def test_lint_saved_deployment(self, capsys, tmp_path):
        target = str(tmp_path / "deploy")
        assert main(["save", target]) == 0
        assert main(["lint", "--deployment", target]) == 0
        out = capsys.readouterr().out
        assert "lint[" in out

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        target = str(tmp_path / "deploy")
        assert main(["save", target]) == 0
        assert main(["load", target]) == 0
        out = capsys.readouterr().out
        assert "deployment saved" in out
        assert "compliance on reload:" in out

    def test_load_missing_directory_errors(self, capsys, tmp_path):
        assert main(["load", str(tmp_path / "ghost")]) == 2
        assert "error:" in capsys.readouterr().err
