"""Tests for the command-line interface."""

import pytest

from repro.cli import _HANDLERS, build_parser, main, subcommand_help


@pytest.fixture(scope="module")
def shared_scenario():
    """Patch the CLI's scenario builder to reuse one instance (speed)."""
    from repro.simulation import build_scenario

    return build_scenario()


@pytest.fixture(autouse=True)
def _reuse_scenario(monkeypatch, shared_scenario):
    monkeypatch.setattr("repro.cli._scenario", lambda: shared_scenario)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_every_subcommand_has_nonempty_help(self):
        """The help-string audit: no command ships undocumented."""
        documented = subcommand_help(build_parser())
        assert documented, "no subcommands registered?"
        for name, (help_text, description) in documented.items():
            assert help_text.strip(), f"subcommand {name!r} has no help text"
            assert description.strip(), f"subcommand {name!r} has no description"

    def test_every_subcommand_has_a_handler_and_vice_versa(self):
        documented = set(subcommand_help(build_parser()))
        assert documented == set(_HANDLERS)

    def test_every_subcommand_help_renders_an_example(self):
        parser = build_parser()
        import argparse

        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, subparser in action.choices.items():
                    text = subparser.format_help()
                    assert "example:" in text, f"{name} help lacks an example"
                    assert f"repro {name}" in text, f"{name} example is off-command"


class TestCommands:
    def test_scenario(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "compliance:" in out and "meta-reports: 4" in out

    def test_check_compliant(self, capsys):
        code = main(
            [
                "check",
                "SELECT drug, COUNT(*) AS n FROM wide_prescriptions GROUP BY drug",
            ]
        )
        assert code == 0
        assert "COMPLIANT" in capsys.readouterr().out

    def test_check_non_compliant_exits_nonzero(self, capsys):
        code = main(
            [
                "check",
                "SELECT patient, drug FROM wide_prescriptions",
                "--audience",
                "municipality_official",
            ]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_check_bad_sql_is_error(self, capsys):
        assert main(["check", "SELECT FROM"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_deliver(self, capsys):
        code = main(["deliver", "rpt_001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered to:" in out

    def test_deliver_unknown_report(self, capsys):
        assert main(["deliver", "rpt_999"]) == 2

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_gaps(self, capsys):
        assert main(["gaps", "--n", "40", "--show", "3"]) == 0
        out = capsys.readouterr().out
        assert "PLA coverage:" in out

    def test_fig_runs_a_bench_main(self, capsys):
        assert main(["fig", "3"]) == 0
        out = capsys.readouterr().out
        assert "FIG3" in out

    def test_bench_smoke_writes_json(self, capsys, tmp_path):
        import json

        target = str(tmp_path / "bench.json")
        assert main(["bench", "--smoke", "--json", target]) == 0
        out = capsys.readouterr().out
        assert "fused vector kernels" in out
        data = json.loads((tmp_path / "bench.json").read_text())
        assert data["smoke"] is True
        assert data["summary"]["max_speedup_at_largest"] > 1.0
        assert data["summary"]["max_fused_speedup_at_largest"] > 1.0
        assert data["containment"]["speedup"] > 1.0
        assert all(g["passed"] for g in data["gates"])

    def test_lint_text(self, capsys):
        assert main(["lint"]) == 0  # scenario has warnings, no errors
        out = capsys.readouterr().out
        assert out.startswith("lint[")
        assert "warning(s)" in out
        assert "hint:" in out

    def test_lint_json_is_machine_readable(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["error"] == 0
        assert data["counts"]["warning"] > 0
        assert data["coverage"]["reports"] == 30
        codes = {d["code"] for d in data["diagnostics"]}
        assert {"ETL001", "PLA001", "RPT002"} <= codes

    def test_lint_fail_on_warning_exits_nonzero(self, capsys):
        assert main(["lint", "--fail-on", "warning"]) == 1

    def test_lint_saved_deployment(self, capsys, tmp_path):
        target = str(tmp_path / "deploy")
        assert main(["save", target]) == 0
        assert main(["lint", "--deployment", target]) == 0
        out = capsys.readouterr().out
        assert "lint[" in out

    def test_verify_text(self, capsys):
        assert main(["verify"]) == 0  # seed scenario proves clean
        out = capsys.readouterr().out
        assert out.startswith("verify[")
        assert "0 refuted, 0 unknown" in out

    def test_verify_json_is_machine_readable(self, capsys):
        import json

        assert main(["verify", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["refuted"] == 0
        assert data["counts"]["unknown"] == 0
        assert data["coverage"]["reports"] == 30
        codes = {r["code"] for r in data["results"]}
        assert {"VER001", "VER002", "VER003", "VER004", "VER005"} <= codes

    def test_verify_saved_deployment(self, capsys, tmp_path):
        target = str(tmp_path / "deploy")
        assert main(["save", target]) == 0
        assert main(["verify", "--deployment", target, "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "verify[" in out

    def test_verify_fail_on_accepts_warning(self, capsys):
        assert main(["verify", "--fail-on", "warning"]) == 0

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        target = str(tmp_path / "deploy")
        assert main(["save", target]) == 0
        assert main(["load", target]) == 0
        out = capsys.readouterr().out
        assert "deployment saved" in out
        assert "compliance on reload:" in out

    def test_load_missing_directory_errors(self, capsys, tmp_path):
        assert main(["load", str(tmp_path / "ghost")]) == 2
        assert "error:" in capsys.readouterr().err


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        from repro import obs

        previous = obs.enabled()
        yield
        obs.TRACER.enabled = previous
        obs.reset()

    def test_trace_deliver_prints_span_tree(self, capsys):
        assert main(["trace", "deliver", "--report", "rpt_001"]) == 0
        out = capsys.readouterr().out
        assert "trace t" in out
        assert "report.deliver" in out
        assert "query.execute" in out
        assert "enforcement decisions" in out

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        import json

        target = tmp_path / "spans.jsonl"
        assert main(["trace", "deliver", "--jsonl", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        assert any(s["name"] == "report.deliver" for s in spans)
        assert all(
            set(s) >= {"trace_id", "span_id", "name", "wall_ms", "status"}
            for s in spans
        )

    def test_trace_leaves_observability_disabled(self, capsys):
        from repro import obs

        obs.disable()
        assert main(["trace", "audit"]) == 0
        assert not obs.enabled()

    def test_metrics_prometheus_output(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_deliveries_total counter" in out
        assert "repro_enforcement_decisions_total{" in out
        assert 'level="meta-report"' in out

    def test_metrics_json_output(self, capsys):
        import json

        assert main(["metrics", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["repro_deliveries_total"]["kind"] == "counter"
        assert data["repro_span_seconds"]["kind"] == "histogram"
