"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* algebra laws: selection cascades/commutes, projection narrows, join
  lineage is the union of its inputs, distinct is idempotent;
* lineage safety: every derived row's lineage points at existing base rows;
* k-anonymity post-conditions for arbitrary tables and k;
* pseudonym consistency (injective on observed values, deterministic);
* predicate-implication soundness: implication certified ⇒ no witness row
  satisfies the stronger predicate while failing the weaker;
* containment soundness: certified Q1 ⊆ Q2 ⇒ Q1's answers ⊆ Q2's answers
  on arbitrary generated instances.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymize import (
    Pseudonymizer,
    QuasiIdentifier,
    is_k_anonymous,
    mondrian_anonymize,
)
from repro.core import is_contained, predicate_implies
from repro.relational import Catalog, algebra, execute, parse_query
from repro.relational.expressions import And, Col, Comparison, Expr, Lit
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType

SCHEMA = make_schema(
    ("g", ColumnType.STRING),
    ("x", ColumnType.INT),
    ("y", ColumnType.INT),
)

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=0,
    max_size=40,
)


def table_of(rows) -> Table:
    return Table.from_rows("t", SCHEMA, rows, provider="p")


predicate_strategy = st.builds(
    lambda column, op, value: Comparison(op, Col(column), Lit(value)),
    st.sampled_from(["x", "y"]),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    st.integers(min_value=-30, max_value=30),
)

conjunction_strategy = st.lists(predicate_strategy, min_size=1, max_size=3).map(
    lambda parts: parts[0]
    if len(parts) == 1
    else And(parts[0], And(parts[1], parts[2]) if len(parts) == 3 else parts[1])
)


class TestAlgebraLaws:
    @given(rows=rows_strategy, p=predicate_strategy, q=predicate_strategy)
    def test_selection_cascade_commutes(self, rows, p, q):
        t = table_of(rows)
        ab = algebra.select(algebra.select(t, p), q)
        ba = algebra.select(algebra.select(t, q), p)
        both = algebra.select(t, And(p, q))
        assert ab.rows == both.rows
        assert sorted(ba.rows) == sorted(ab.rows)

    @given(rows=rows_strategy)
    def test_projection_narrows_schema_keeps_cardinality(self, rows):
        t = table_of(rows)
        out = algebra.project(t, ["g", "x"])
        assert len(out) == len(t)
        assert out.schema.names == ("g", "x")

    @given(rows=rows_strategy)
    def test_distinct_idempotent(self, rows):
        t = table_of(rows)
        once = algebra.distinct(t)
        twice = algebra.distinct(once)
        assert once.rows == twice.rows
        assert len({tuple(r) for r in t.rows}) == len(once)

    @given(rows=rows_strategy, other=rows_strategy)
    def test_join_lineage_is_union_of_sides(self, rows, other):
        left = table_of(rows)
        right = Table.from_rows(
            "u",
            make_schema(("g", ColumnType.STRING), ("z", ColumnType.INT)),
            [(g, x) for g, x, _ in other],
            provider="q",
        )
        out = algebra.join(left, right, [("g", "g")])
        for i in range(len(out)):
            lineage = out.lineage_of(i)
            assert any(r.provider == "p" for r in lineage)
            assert any(r.provider == "q" for r in lineage)

    @given(rows=rows_strategy)
    def test_aggregate_lineage_partitions_input(self, rows):
        t = table_of(rows)
        out = algebra.aggregate(
            t, ["g"], [algebra.AggSpec("count", None, "n")]
        )
        union = set()
        total = 0
        for i in range(len(out)):
            lineage = out.lineage_of(i)
            assert not (union & lineage)  # groups are disjoint
            union |= lineage
            total += out.rows[i][out.schema.index_of("n")]
        assert union == set(t.all_lineage())
        assert total == len(t)

    @given(rows=rows_strategy)
    def test_derived_lineage_points_to_base(self, rows):
        t = table_of(rows)
        out = algebra.select(t, Comparison(">", Col("x"), Lit(0)))
        valid = t.all_lineage()
        for i in range(len(out)):
            assert out.lineage_of(i) <= valid


class TestAnonymityProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=30)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["381a", "381b", "382a", "382b"]),
                st.integers(min_value=1940, max_value=2000),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=10,
            max_size=60,
        ),
        k=st.integers(min_value=2, max_value=5),
    )
    def test_mondrian_always_k_anonymous(self, rows, k):
        schema = make_schema(
            ("zip", ColumnType.STRING),
            ("birth_year", ColumnType.INT),
            ("flag", ColumnType.INT),
        )
        t = Table.from_rows("t", schema, rows, provider="p")
        result = mondrian_anonymize(
            t, [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")], k
        )
        assert is_k_anonymous(result.table, ["zip", "birth_year"], k)
        assert len(result.table) == len(t)
        assert result.table.all_lineage() == t.all_lineage()


class TestPseudonymProperties:
    @given(values=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=30))
    def test_deterministic_and_injective_on_sample(self, values):
        p = Pseudonymizer(salt="prop")
        tokens = {v: p.pseudonym(v) for v in values}
        # deterministic
        assert all(p.pseudonym(v) == t for v, t in tokens.items())
        # injective on the observed sample (collisions at 8 hex chars are
        # astronomically unlikely at this scale)
        assert len(set(tokens.values())) == len(set(values))
        # escrow inverts
        assert all(p.reidentify(t) == str(v) for v, t in tokens.items())


class TestImplicationSoundness:
    @given(
        stronger=conjunction_strategy,
        weaker=conjunction_strategy,
        rows=rows_strategy,
    )
    def test_no_witness_when_certified(self, stronger, weaker, rows):
        if not predicate_implies(stronger, weaker):
            return
        for g, x, y in rows:
            row = {"g": g, "x": x, "y": y}
            if stronger.evaluate(row):
                assert weaker.evaluate(row), (
                    f"implication unsound: {stronger} => {weaker} on {row}"
                )

    def test_contradictory_conclusion_is_not_certified(self):
        # Regression: _decompose keeps the last of repeated equalities, so
        # x = 1 => (x = 0 AND x = 1) used to be (unsoundly) certified.
        from repro.relational.expressions import And, Col, Comparison, Lit

        x_eq = lambda v: Comparison("=", Col("x"), Lit(v))  # noqa: E731
        assert not predicate_implies(x_eq(1), And(x_eq(0), x_eq(1)))
        # The vacuous direction stays certified: an empty premise implies
        # anything.
        assert predicate_implies(And(x_eq(0), x_eq(1)), x_eq(7))


class TestContainmentSoundness:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=40)
    @given(
        rows=rows_strategy,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_certified_containment_holds_on_instances(self, rows, seed):
        rng = random.Random(seed)
        cat = Catalog()
        cat.add_table(table_of(rows))

        def random_query():
            ops = ["<", "<=", ">", ">=", "=", "!="]
            conjuncts = []
            for _ in range(rng.randint(0, 2)):
                conjuncts.append(
                    f"{rng.choice(['x', 'y'])} {rng.choice(ops)} {rng.randint(-20, 20)}"
                )
            where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
            return parse_query(f"SELECT g, x FROM t{where}")

        q1, q2 = random_query(), random_query()
        if not is_contained(q1, q2, cat):
            return
        out1 = {tuple(r) for r in execute(q1, cat).rows}
        out2 = {tuple(r) for r in execute(q2, cat).rows}
        assert out1 <= out2
