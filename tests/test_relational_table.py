"""Unit tests for Table, RowId, and provenance bookkeeping."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.table import CellRef, RowId, RowProvenance, Table, make_schema
from repro.relational.types import ColumnType


def people_schema():
    return make_schema(
        ("name", ColumnType.STRING, False), ("age", ColumnType.INT)
    )


class TestInsert:
    def test_insert_assigns_sequential_row_ids(self):
        table = Table("t", people_schema(), provider="p")
        first = table.insert(("Ada", 30))
        second = table.insert(("Bo", 40))
        assert first == RowId("p", "t", 0)
        assert second == RowId("p", "t", 1)

    def test_insert_mapping(self):
        table = Table("t", people_schema())
        table.insert({"age": 30, "name": "Ada"})
        assert table.row_dict(0) == {"name": "Ada", "age": 30}

    def test_insert_coerces(self):
        table = Table("t", people_schema())
        table.insert(("Ada", "30"))
        assert table.rows[0][1] == 30

    def test_wrong_arity_rejected(self):
        table = Table("t", people_schema())
        with pytest.raises(SchemaError):
            table.insert(("Ada", 30, "extra"))

    def test_null_in_non_nullable_rejected(self):
        table = Table("t", people_schema())
        with pytest.raises(TypeMismatchError):
            table.insert((None, 30))

    def test_insert_many_returns_ids(self):
        table = Table("t", people_schema())
        ids = table.insert_many([("A", 1), ("B", 2)])
        assert [r.ordinal for r in ids] == [0, 1]


class TestProvenance:
    def test_base_row_lineage_is_itself(self):
        table = Table("t", people_schema(), provider="p")
        row_id = table.insert(("Ada", 30))
        assert table.lineage_of(0) == frozenset([row_id])

    def test_base_row_where_is_per_cell(self):
        table = Table("t", people_schema(), provider="p")
        row_id = table.insert(("Ada", 30))
        prov = table.provenance[0]
        assert prov.where_of("name") == frozenset([CellRef(row_id, "name")])
        assert prov.where_of("age") == frozenset([CellRef(row_id, "age")])

    def test_merged_unions_lineage_and_where(self):
        r1 = RowId("p", "t", 0)
        r2 = RowId("p", "u", 0)
        a = RowProvenance(
            lineage=frozenset([r1]), where={"x": frozenset([CellRef(r1, "x")])}
        )
        b = RowProvenance(
            lineage=frozenset([r2]), where={"y": frozenset([CellRef(r2, "y")])}
        )
        merged = a.merged(b)
        assert merged.lineage == frozenset([r1, r2])
        assert merged.where_of("x") and merged.where_of("y")

    def test_projected_remaps_names(self):
        r1 = RowId("p", "t", 0)
        prov = RowProvenance(
            lineage=frozenset([r1]), where={"x": frozenset([CellRef(r1, "x")])}
        )
        projected = prov.projected({"renamed": "x"})
        assert projected.where_of("renamed") == frozenset([CellRef(r1, "x")])
        assert projected.where_of("x") == frozenset()

    def test_all_lineage(self):
        table = Table("t", people_schema(), provider="p")
        table.insert_many([("A", 1), ("B", 2)])
        assert table.all_lineage() == frozenset(
            [RowId("p", "t", 0), RowId("p", "t", 1)]
        )


class TestAccess:
    def test_iter_dicts(self):
        table = Table.from_rows("t", people_schema(), [("A", 1), ("B", 2)])
        assert list(table.iter_dicts()) == [
            {"name": "A", "age": 1},
            {"name": "B", "age": 2},
        ]

    def test_column_values_and_distinct(self):
        table = Table.from_rows("t", people_schema(), [("A", 1), ("B", None), ("A", 1)])
        assert table.column_values("age") == [1, None, 1]
        assert table.distinct_values("age") == {1}

    def test_filter_rows_keeps_provenance(self):
        table = Table.from_rows("t", people_schema(), [("A", 1), ("B", 2)], provider="p")
        out = table.filter_rows(lambda row: row["age"] > 1)
        assert len(out) == 1
        assert out.lineage_of(0) == frozenset([RowId("p", "t", 1)])

    def test_derived_requires_matching_lengths(self):
        with pytest.raises(SchemaError):
            Table.derived("t", people_schema(), [("A", 1)], [])

    def test_pretty_contains_header_and_null(self):
        table = Table.from_rows("t", people_schema(), [("A", None)])
        text = table.pretty()
        assert "name" in text and "NULL" in text

    def test_pretty_truncates(self):
        table = Table.from_rows("t", people_schema(), [("A", i) for i in range(20)])
        assert "more rows" in table.pretty(limit=3)
