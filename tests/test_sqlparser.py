"""Unit tests for the SQL-subset parser."""

import datetime

import pytest

from repro.errors import ParseError
from repro.relational.algebra import AggSpec
from repro.relational.expressions import Comparison, InList, IsNull, Not
from repro.relational.sqlparser import parse_expression, parse_query


class TestQueries:
    def test_select_star(self):
        q = parse_query("SELECT * FROM t")
        assert q.source == "t" and not q.select

    def test_select_columns_and_aliases(self):
        q = parse_query("SELECT a, b AS bee FROM t")
        assert q.output_names() == ("a", "bee")

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").select_distinct

    def test_joins(self):
        q = parse_query(
            "SELECT a FROM t JOIN u ON x = y LEFT JOIN v ON p = q AND r = s"
        )
        assert q.joins[0].how == "inner" and q.joins[0].on == (("x", "y"),)
        assert q.joins[1].how == "left" and len(q.joins[1].on) == 2

    def test_where_group_having_order_limit(self):
        q = parse_query(
            "SELECT drug, COUNT(*) AS n FROM t WHERE cost > 10 "
            "GROUP BY drug HAVING n > 1 ORDER BY n DESC, drug LIMIT 3"
        )
        assert q.where is not None
        assert q.group_by == ("drug",)
        assert q.aggregates == (AggSpec("count", None, "n"),)
        assert q.having is not None
        assert q.order == (("n", True), ("drug", False))
        assert q.limit_n == 3

    def test_aggregates_all_functions(self):
        q = parse_query(
            "SELECT COUNT(*) AS c, SUM(x) AS s, AVG(x) AS a, MIN(x) AS lo, MAX(x) AS hi FROM t"
        )
        assert [spec.func for spec in q.aggregates] == ["count", "sum", "avg", "min", "max"]

    def test_count_distinct(self):
        q = parse_query("SELECT COUNT(DISTINCT drug) AS kinds FROM t")
        assert q.aggregates[0].distinct

    def test_default_aggregate_alias(self):
        q = parse_query("SELECT SUM(cost) FROM t")
        assert q.aggregates[0].alias == "sum_cost"

    def test_computed_select_item(self):
        q = parse_query("SELECT cost * 2 AS double FROM t")
        assert q.output_names() == ("double",)

    def test_qualified_column_names(self):
        q = parse_query("SELECT t.a FROM t JOIN u ON t.a = u.b")
        assert q.joins[0].on == (("t.a", "u.b"),)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a")


class TestExpressions:
    def test_comparisons_and_precedence(self):
        expr = parse_expression("a > 1 AND b = 'x' OR NOT c < 2")
        # OR binds loosest: (a>1 AND b='x') OR (NOT c<2)
        assert expr.evaluate({"a": 0, "b": "y", "c": 5})

    def test_ne_spelled_both_ways(self):
        assert isinstance(parse_expression("a != 1"), Comparison)
        assert isinstance(parse_expression("a <> 1"), Comparison)

    def test_in_list(self):
        expr = parse_expression("drug IN ('DH', 'DV')")
        assert isinstance(expr, InList)
        assert expr.evaluate({"drug": "DH"})

    def test_is_null_and_not_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNull)
        expr = parse_expression("a IS NOT NULL")
        assert expr.evaluate({"a": 1})

    def test_not(self):
        assert isinstance(parse_expression("NOT a = 1"), Not)

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.evaluate({}) == 7

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.evaluate({}) == 9

    def test_unary_minus(self):
        assert parse_expression("-5 + 1").evaluate({}) == -4

    def test_string_escaping(self):
        expr = parse_expression("name = 'O''Hara'")
        assert expr.evaluate({"name": "O'Hara"})

    def test_date_literal(self):
        expr = parse_expression("d >= DATE '2007-01-01'")
        assert expr.evaluate({"d": datetime.date(2007, 6, 1)})

    def test_booleans_and_null_literals(self):
        assert parse_expression("flag = true").evaluate({"flag": True})
        assert not parse_expression("a = NULL").evaluate({"a": 1})

    def test_float_literals(self):
        assert parse_expression("x > 1.5").evaluate({"x": 2.0})

    def test_negative_in_list(self):
        expr = parse_expression("x IN (-1, -2)")
        assert expr.evaluate({"x": -2})

    def test_tokenizer_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a ?? b")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a = 1 b")


class TestDiagnosticQuality:
    """Satellite of the ingestion PR: errors carry offsets and snippets."""

    def test_parse_error_has_offset_and_caret_snippet(self):
        from repro.errors import ParseError

        try:
            parse_query("SELECT drug FROM prescriptions WHERE")
        except ParseError as exc:
            assert exc.offset is not None
            snippet = exc.snippet()
            caret_line = snippet.splitlines()[-1]
            assert caret_line.strip() == "^"
            assert exc.line == 1
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")

    def test_caret_aligns_to_visual_column_past_tabs(self):
        from repro.errors import ParseError

        source = "\tSELECT drug\tFROM x WHERE"
        exc = ParseError("boom", source=source, offset=source.index("FROM"))
        shown, caret = exc.snippet().splitlines()
        assert "\t" not in shown  # tabs are expanded for display
        assert caret.index("^") == len("\tSELECT drug\t".expandtabs())

    def test_unsupported_constructs_are_named(self):
        from repro.errors import UnsupportedConstructError

        cases = {
            "SELECT a FROM t UNION SELECT a FROM u": "UNION",
            "WITH x AS (SELECT a FROM t) SELECT a FROM x": "WITH",
            "SELECT a FROM t WHERE EXISTS (SELECT a FROM u)": "EXISTS",
            "SELECT a FROM t WHERE a > (SELECT b FROM u)": "scalar subquery",
            "SELECT row_number() OVER (ORDER BY a) AS rn FROM t": "window",
        }
        for sql, construct in cases.items():
            try:
                parse_query(sql)
            except UnsupportedConstructError as exc:
                assert construct.lower() in exc.construct.lower(), sql
            else:  # pragma: no cover
                raise AssertionError(f"expected unsupported-construct: {sql}")
