"""Tests for retention enforcement and dispute resolution."""

import datetime

import pytest

from repro.anonymize import Pseudonymizer
from repro.audit import (
    AuditLog,
    Auditor,
    DisputeResolver,
    purge_expired,
    retention_violations,
)
from repro.core import (
    PLA,
    AggregationThreshold,
    ComplianceChecker,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
)
from repro.errors import ReproError
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, Table, View, make_schema, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportCatalog, ReportDefinition, ReportEngine
from repro.sources import ConsentAgreement, ConsentRegistry

AS_OF = datetime.date(2008, 12, 31)


@pytest.fixture
def consents():
    registry = ConsentRegistry()
    registry.add(
        ConsentAgreement("Alice", True, True, retention_days=30)
    )
    registry.add(ConsentAgreement("Bob", True, True, retention_days=10_000))
    registry.add(ConsentAgreement("Chris", True, True))  # no limit
    return registry


@pytest.fixture
def visits():
    schema = make_schema(
        ("patient", ColumnType.STRING), ("date", ColumnType.DATE)
    )
    return Table.from_rows(
        "visits",
        schema,
        [
            ("Alice", "2008-01-01"),  # way past 30 days by AS_OF
            ("Alice", "2008-12-20"),  # within 30 days
            ("Bob", "2007-01-01"),  # within 10000 days
            ("Chris", "2000-01-01"),  # unlimited retention
        ],
        provider="hospital",
    )


class TestRetention:
    def test_violations_found(self, visits, consents):
        findings = retention_violations(
            visits, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
        )
        assert len(findings) == 1
        assert findings[0].subject == "Alice"
        assert findings[0].overdue_days > 300
        assert "retention" in findings[0].describe()

    def test_default_limit_applies_only_to_unlimited_consents(self, visits, consents):
        findings = retention_violations(
            visits, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
            default_days=365,
        )
        subjects = {f.subject for f in findings}
        # Chris (no explicit limit) now falls under the 365-day default;
        # Bob's explicit 10000-day consent overrides the default.
        assert subjects == {"Alice", "Chris"}

    def test_purge_expired(self, visits, consents):
        purged, count = purge_expired(
            visits, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
        )
        assert count == 1
        assert len(purged) == 3
        remaining = retention_violations(
            purged, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
        )
        assert remaining == []

    def test_unknown_subject_uses_default_consent(self, consents):
        schema = make_schema(
            ("patient", ColumnType.STRING), ("date", ColumnType.DATE)
        )
        t = Table.from_rows("t", schema, [("Ghost", "2000-01-01")])
        findings = retention_violations(
            t, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
            default_days=100,
        )
        assert len(findings) == 1

    def test_null_subject_flagged_conservatively(self, consents):
        schema = make_schema(
            ("patient", ColumnType.STRING), ("date", ColumnType.DATE)
        )
        t = Table.from_rows("t", schema, [(None, "2008-12-30")])
        assert retention_violations(
            t, consents,
            subject_column="patient", date_column="date", as_of=AS_OF,
        ) == []
        assert len(
            retention_violations(
                t, consents,
                subject_column="patient", date_column="date", as_of=AS_OF,
                default_days=30,
            )
        ) == 1


class TestDisputes:
    @pytest.fixture
    def world(self):
        cat = Catalog()
        schema = make_schema(
            ("patient", ColumnType.STRING),
            ("drug", ColumnType.STRING),
            ("cost", ColumnType.INT),
        )
        rows = [("Alice", "DR", 10), ("Bob", "DR", 10), ("Math", "DM", 10)]
        cat.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
        cat.add_view(View("wide", Query.from_("base").project("patient", "drug", "cost")))
        mrs = MetaReportSet()
        mr = MetaReport("mr", Query.from_("wide").project("patient", "drug", "cost"))
        registry = PlaRegistry()
        pla = PLA("p", "hospital", PlaLevel.METAREPORT, "mr", (AggregationThreshold(2),))
        registry.add(pla)
        mr.attach_pla(registry.approve("p"))
        mrs.add(mr)
        mrs.register_views(cat)
        checker = ComplianceChecker(catalog=cat, metareports=mrs)
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        reports = ReportCatalog()
        report = ReportDefinition(
            "by_drug", "t",
            parse_query("SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
            frozenset({"analyst"}), "care",
        )
        reports.add(report)
        return cat, checker, subjects, reports, report

    def _violating_log(self, cat, subjects, report):
        rogue = ReportEngine(cat)
        ctx = subjects.context("ann", "care")
        log = AuditLog()
        log.record_instance(rogue.generate(report, ctx), ctx)
        return log

    def test_case_bundle_contents(self, world):
        cat, checker, subjects, reports, report = world
        log = self._violating_log(cat, subjects, report)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        assert audit.violations
        resolver = DisputeResolver(checker=checker, reports=reports)
        case = resolver.build_case(audit.violations[0], log)
        assert case.disclosure.report == "by_drug"
        assert "GROUP BY drug" in case.report_definition
        assert "aggregates must combine" in case.governing_pla
        assert case.derivability_trail  # at least the covering attempt
        assert "DISPUTE CASE" in case.describe()
        assert resolver.cases() == (case,)

    def test_escrow_reidentification(self, world):
        cat, checker, subjects, reports, report = world
        log = self._violating_log(cat, subjects, report)
        audit = Auditor(checker=checker, reports=reports).audit(log)
        pseudonymizer = Pseudonymizer(salt="s")
        token = pseudonymizer.pseudonym("Alice")
        resolver = DisputeResolver(
            checker=checker, reports=reports, pseudonymizer=pseudonymizer
        )
        case = resolver.build_case(
            audit.violations[0], log, disputed_tokens=(token, "anon-deadbeef")
        )
        assert case.reidentified_subjects[0] == "Alice"
        assert "unknown token" in case.reidentified_subjects[1]

    def test_missing_disclosure_raises(self, world):
        cat, checker, subjects, reports, report = world
        from repro.audit import Severity, Violation

        resolver = DisputeResolver(checker=checker, reports=reports)
        ghost = Violation(Severity.CRITICAL, "x", "by_drug", 99, "no such record")
        with pytest.raises(ReproError):
            resolver.build_case(ghost, AuditLog())
