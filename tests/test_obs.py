"""Unit semantics of repro.obs: tracer, metrics, exporters.

These tests pin down the observability *contract*: histogram bucket
boundaries are ``le``-inclusive, counters are monotonic, registry reset
keeps registrations alive, and the exporters render deterministically
(golden-tested). The integration half — instrumented pipeline behavior —
lives in ``test_obs_integration.py``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs.export import (
    render_prometheus,
    render_span_tree,
    span_to_dict,
    spans_to_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_SPAN, Tracer


@pytest.fixture()
def clean_obs():
    """Fresh global obs state, restored afterwards."""
    previous = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    obs.TRACER.enabled = previous
    obs.reset()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_returns_noop_span(self):
        tracer = Tracer()
        span = tracer.span("anything")
        assert span is NOOP_SPAN
        assert not span  # falsy, so `if span:` skips tag work
        with span as s:
            s.set_tag("ignored", 1)
        assert list(tracer.finished) == []

    def test_nesting_builds_one_trace(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    assert grand.trace_id == root.trace_id
                assert child.parent_id == root.span_id
            assert root.parent_id is None
        names = [s.name for s in tracer.finished]
        assert names == ["grandchild", "child", "root"]  # finish order
        assert tracer.trace_ids() == (root.trace_id,)

    def test_sequential_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = tracer.trace_ids()
        assert len(ids) == 2 and ids[0] != ids[1]

    def test_deterministic_ids_after_reset(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("x") as first:
            pass
        tracer.reset()
        with tracer.span("x") as second:
            pass
        assert first.trace_id == second.trace_id == "t000000000001"
        assert first.span_id == second.span_id == "s00000001"

    def test_force_opens_root_and_activates_children(self):
        tracer = Tracer()
        assert not tracer.active()
        with tracer.span("forced-root", force=True):
            # A forced root makes nested instrumentation record too.
            assert tracer.active()
            with tracer.span("child"):
                pass
        assert not tracer.active()
        assert [s.name for s in tracer.finished] == ["child", "forced-root"]

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        tracer.enabled = True
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.status == "error"
        assert span.tags["error"] == "ValueError"

    def test_mismatched_exit_unwinds_stack(self):
        tracer = Tracer()
        tracer.enabled = True
        outer = tracer.span("outer")
        tracer.span("leaked-inner")  # never exited
        outer.__exit__(None, None, None)
        assert tracer.current_span() is None  # stack fully unwound

    def test_current_trace_id(self):
        tracer = Tracer()
        tracer.enabled = True
        assert tracer.current_trace_id() is None
        with tracer.span("root") as root:
            assert tracer.current_trace_id() == root.trace_id

    def test_on_finish_hook_fires(self):
        tracer = Tracer()
        tracer.enabled = True
        seen = []
        tracer.on_finish = seen.append
        with tracer.span("hooked"):
            pass
        assert [s.name for s in seen] == ["hooked"]

    def test_retention_is_bounded(self):
        tracer = Tracer(max_finished=3)
        tracer.enabled = True
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s2", "s3", "s4"]


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------


class TestCounter:
    def test_monotonic(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)
        assert c.value() == 3.5  # unchanged after the rejected decrement

    def test_label_cardinality_enforced(self):
        c = Counter("c_total", labelnames=("a", "b"))
        with pytest.raises(MetricError):
            c.inc(1, ("only-one",))
        c.inc(1, ("x", "y"))
        assert c.value(("x", "y")) == 1

    def test_samples_sorted(self):
        c = Counter("c_total", labelnames=("k",))
        c.inc(1, ("zebra",))
        c.inc(2, ("alpha",))
        assert c.samples() == [(("alpha",), 2.0), (("zebra",), 1.0)]


class TestGauge:
    def test_up_and_down(self):
        g = Gauge("g")
        g.set(10)
        g.dec(4)
        g.inc(1)
        assert g.value() == 7


# ---------------------------------------------------------------------------
# Histogram bucket semantics
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_le_boundary_is_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)  # exactly on a bound → that bucket, not the next
        h.observe(2.0)
        snap = h.value()
        assert snap["buckets"] == ((1.0, 1), (2.0, 1))
        assert snap["inf"] == 0
        assert snap["count"] == 2
        assert snap["sum"] == 3.0

    def test_above_last_bound_lands_in_inf(self):
        h = Histogram("h", buckets=(0.1,))
        h.observe(0.5)
        snap = h.value()
        assert snap["buckets"] == ((0.1, 0),)
        assert snap["inf"] == 1

    def test_below_first_bound_lands_in_first_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)
        assert h.value()["buckets"] == ((1.0, 1), (2.0, 0))

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=())

    def test_default_buckets_are_valid_and_span_latency_range(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.0001)
        assert DEFAULT_BUCKETS[-1] == 10.0
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_per_labelset_isolation(self):
        h = Histogram("h", labelnames=("op",), buckets=(1.0,))
        h.observe(0.5, ("a",))
        h.observe(5.0, ("b",))
        assert h.value(("a",))["count"] == 1
        assert h.value(("b",))["inf"] == 1
        assert h.value(("missing",))["count"] == 0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", ("k",))
        b = reg.counter("x_total", "other help ignored", ("k",))
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_labelname_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            reg.counter("x", labelnames=("b",))

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("h", buckets=(1.0, 3.0))
        assert reg.histogram("h", buckets=(1.0, 2.0)) is reg.get("h")

    def test_reset_zeroes_values_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("k",))
        c.inc(5, ("v",))
        reg.reset()
        assert reg.get("x_total") is c  # the handle survives
        assert c.value(("v",)) == 0.0
        c.inc(1, ("v",))  # and still works
        assert c.value(("v",)) == 1.0

    def test_iteration_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz")
        reg.counter("aaa")
        assert [m.name for m in reg] == ["aaa", "zzz"]

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "Help.", ("k",)).inc(2, ("v",))
        snap = reg.as_dict()
        assert snap == {
            "x_total": {
                "kind": "counter",
                "help": "Help.",
                "labelnames": ["k"],
                "samples": [{"labels": ["v"], "value": 2.0}],
            }
        }


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

PROMETHEUS_GOLDEN = """\
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{op="read",le="0.1"} 1
demo_latency_seconds_bucket{op="read",le="1"} 2
demo_latency_seconds_bucket{op="read",le="+Inf"} 3
demo_latency_seconds_sum{op="read"} 5.55
demo_latency_seconds_count{op="read"} 3
# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{code="200"} 10
demo_requests_total{code="500"} 1
# TYPE demo_up gauge
demo_up 1
"""


class TestPrometheusExport:
    def test_golden(self):
        reg = MetricsRegistry()
        c = reg.counter("demo_requests_total", "Requests.", ("code",))
        c.inc(10, ("200",))
        c.inc(1, ("500",))
        reg.gauge("demo_up").set(1)
        h = reg.histogram("demo_latency_seconds", "Latency.", ("op",), buckets=(0.1, 1.0))
        h.observe(0.05, ("read",))
        h.observe(0.5, ("read",))
        h.observe(5.0, ("read",))
        assert render_prometheus(reg) == PROMETHEUS_GOLDEN

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("q",)).inc(1, ('say "hi"\n',))
        text = render_prometheus(reg)
        assert r'q="say \"hi\"\n"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestSpanExport:
    def _spans(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("root", {"k": "v"}):
            with tracer.span("child"):
                pass
        return list(tracer.finished)

    def test_span_to_dict_stable_keys(self):
        spans = self._spans()
        d = span_to_dict(spans[-1])  # the root
        assert list(d) == [
            "trace_id", "span_id", "parent_id", "name", "start",
            "wall_ms", "cpu_ms", "status", "tags",
        ]
        assert d["name"] == "root"
        assert d["parent_id"] is None
        assert d["tags"] == {"k": "v"}

    def test_jsonl_round_trip(self):
        spans = self._spans()
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "child"
        assert parsed[0]["parent_id"] == parsed[1]["span_id"]
        assert parsed[0]["trace_id"] == parsed[1]["trace_id"]

    def test_write_jsonl_to_file_object(self):
        spans = self._spans()
        buf = io.StringIO()
        assert write_jsonl(spans, buf) == 2
        assert buf.getvalue().endswith("\n")
        assert len(buf.getvalue().splitlines()) == 2

    def test_write_jsonl_to_path(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(self._spans(), str(path)) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_write_jsonl_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl([], str(path)) == 0
        assert path.read_text() == ""

    def test_render_span_tree_indents_children(self):
        text = render_span_tree(self._spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace t")
        assert lines[1].startswith("  root")
        assert lines[2].startswith("    child")
        assert "[k=v]" in lines[1]


# ---------------------------------------------------------------------------
# Global wiring
# ---------------------------------------------------------------------------


class TestGlobalObs:
    def test_enable_disable(self, clean_obs):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_reset_clears_spans_and_metrics(self, clean_obs):
        obs.enable()
        with obs.TRACER.span("x"):
            pass
        obs.instrument.QUERIES.inc(1, ("row",))
        obs.reset()
        assert list(obs.TRACER.finished) == []
        assert obs.instrument.QUERIES.value(("row",)) == 0.0

    def test_finished_spans_feed_latency_histogram(self, clean_obs):
        obs.enable()
        with obs.TRACER.span("timed.thing"):
            pass
        snap = obs.instrument.SPAN_SECONDS.value(("timed.thing",))
        assert snap["count"] == 1

    def test_env_var_enables(self, clean_obs, monkeypatch):
        from repro.obs import _init_from_env

        monkeypatch.setenv("REPRO_OBS", "yes")
        _init_from_env()
        assert obs.enabled()
        obs.disable()
        monkeypatch.setenv("REPRO_OBS", "0")
        _init_from_env()
        assert not obs.enabled()


# ---------------------------------------------------------------------------
# Bounded retention + thread safety (the resilience PR's tracer fixes)
# ---------------------------------------------------------------------------


class TestTracerRetention:
    def test_evictions_are_counted_and_hooked(self):
        tracer = Tracer(max_finished=2)
        tracer.enabled = True
        hooked = []
        tracer.on_drop = hooked.append
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s3", "s4"]
        assert tracer.dropped == 3
        assert sum(hooked) == 3

    def test_set_max_finished_evicts_immediately(self):
        tracer = Tracer()
        tracer.enabled = True
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        tracer.set_max_finished(1)
        assert [s.name for s in tracer.finished] == ["s3"]
        assert tracer.dropped == 3
        with pytest.raises(ValueError):
            tracer.set_max_finished(-1)

    def test_drain_clears_retention(self):
        tracer = Tracer()
        tracer.enabled = True
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["s0", "s1", "s2"]
        assert list(tracer.finished) == []
        assert tracer.drain() == ()

    def test_reset_zeroes_drop_count(self):
        tracer = Tracer(max_finished=1)
        tracer.enabled = True
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.dropped == 0 and list(tracer.finished) == []

    def test_dropped_spans_metric(self, clean_obs):
        previous_cap = obs.TRACER.max_finished
        obs.enable()
        try:
            obs.TRACER.set_max_finished(1)
            for i in range(4):
                with obs.TRACER.span(f"s{i}"):
                    pass
            assert obs.instrument.SPANS_DROPPED.value() == 3.0
        finally:
            obs.TRACER.set_max_finished(previous_cap)

    def test_env_var_sets_span_cap(self, clean_obs, monkeypatch):
        from repro.obs import _init_from_env

        previous_cap = obs.TRACER.max_finished
        try:
            monkeypatch.setenv("REPRO_OBS_MAX_SPANS", "123")
            _init_from_env()
            assert obs.TRACER.max_finished == 123
        finally:
            obs.TRACER.set_max_finished(previous_cap)


class TestTracerThreads:
    def test_two_threads_keep_independent_span_stacks(self):
        """Regression: one shared stack used to interleave parent/child
        linkage across threads — a span could be adopted by another
        thread's trace."""
        import threading

        tracer = Tracer()
        tracer.enabled = True
        barrier = threading.Barrier(2, timeout=5)
        errors = []

        def worker(label: str) -> None:
            try:
                for _ in range(50):
                    with tracer.span(f"{label}-root") as root:
                        barrier.wait()  # force both roots open concurrently
                        with tracer.span(f"{label}-child") as child:
                            assert child.parent_id == root.span_id
                            assert child.trace_id == root.trace_id
                        assert tracer.current_span() is root
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        spans = {s.name: s for s in tracer.finished}
        for label in ("alpha", "beta"):
            child, root = spans[f"{label}-child"], spans[f"{label}-root"]
            assert child.parent_id == root.span_id
            assert child.trace_id == root.trace_id
        # The two threads' traces are disjoint.
        assert spans["alpha-root"].trace_id != spans["beta-root"].trace_id

    def test_active_is_per_thread(self):
        import threading

        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("forced", force=True):
            assert tracer.active()  # this thread has an open span
            seen = []
            t = threading.Thread(target=lambda: seen.append(tracer.active()))
            t.start()
            t.join()
            assert seen == [False]  # the other thread does not


class TestMetricThreadSafety:
    """Regression: unsynchronized read-modify-write increments lost counts."""

    def test_two_threads_lose_no_counter_increments(self):
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("c_total", "d", ("who",))
        n = 10_000

        def worker(label: str) -> None:
            for _ in range(n):
                counter.inc(1, (label,))
                counter.inc(1, ("shared",))

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(("alpha",)) == n
        assert counter.value(("beta",)) == n
        # The contended label is where the torn read-modify-write showed.
        assert counter.value(("shared",)) == 2 * n

    def test_two_threads_lose_no_histogram_observations(self):
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "d", ("op",))
        n = 5_000

        def worker() -> None:
            for i in range(n):
                hist.observe(0.001 * (i % 7), ("op",))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.value(("op",))["count"] == 2 * n
