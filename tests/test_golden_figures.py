"""Golden-file pin for the committed benchmark transcript.

``results/RESULTS.txt`` is the full ``run_all.py`` transcript that the
README and the paper-comparison notes point at. This test freezes its
*structure* — every table shape, header, row count, verdict line, and
figure section — while masking the numbers that legitimately vary from
machine to machine (wall-clock timings, throughputs, ratios derived from
them). Seeded quantities (row counts, violation counts, coverage totals)
stay pinned verbatim: if an engine or policy change alters what the
figures say, this test fails before the stale transcript ships.

Regenerating after an intentional change::

    PYTHONPATH=src python benchmarks/run_all.py --json > results/RESULTS.txt
    PYTHONPATH=src python tests/test_golden_figures.py --regen

The first command reruns every figure (≈1 minute) and rewrites
``BENCH_engine.json``; the second refreshes the normalized fixture at
``tests/golden/RESULTS.normalized.txt``. Commit both.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS = REPO_ROOT / "results" / "RESULTS.txt"
GOLDEN = REPO_ROOT / "tests" / "golden" / "RESULTS.normalized.txt"

# Wall-clock derived: timings ("1.6s", "0.0004"), speedups ("5.3x"),
# ratios ("0.939") — any float literal.
_FLOAT = re.compile(r"\d+\.\d+(?:[eE][+-]?\d+)?")
# Throughput figures are printed with thousands separators ("1,210,661").
_GROUPED_INT = re.compile(r"\b\d{1,3}(?:,\d{3})+\b")


def normalize(text: str) -> str:
    """Mask machine-dependent numbers, keep everything else verbatim."""
    text = _FLOAT.sub("#.#", text)
    text = _GROUPED_INT.sub("#,#", text)
    # Collapse trailing whitespace so column padding around masked numbers
    # cannot cause spurious diffs.
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def test_results_transcript_matches_golden():
    assert RESULTS.exists(), (
        "results/RESULTS.txt is missing; regenerate with "
        "`PYTHONPATH=src python benchmarks/run_all.py --json > results/RESULTS.txt`"
    )
    actual = normalize(RESULTS.read_text())
    expected = GOLDEN.read_text()
    assert actual == expected, (
        "results/RESULTS.txt no longer matches the golden fixture. If the "
        "change is intentional, regenerate the transcript and refresh the "
        "fixture (see this module's docstring for both commands)."
    )


def test_transcript_pins_engine_acceptance_lines():
    """The engine section's qualitative claims survive normalization."""
    normalized = normalize(RESULTS.read_text())
    assert "Row-store reference vs columnar batch executor" in normalized
    assert "over the row reference." in normalized
    assert "via proof memoization" in normalized


def main(argv: list[str]) -> int:
    if argv[1:] != ["--regen"]:
        print(__doc__)
        return 2
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(normalize(RESULTS.read_text()))
    print(f"wrote {GOLDEN.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
