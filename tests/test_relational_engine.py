"""Integration tests for the query executor over the paper's tables."""

import pytest

from repro.errors import QueryError
from repro.relational import Engine, Query, View, execute, parse_query
from repro.relational.algebra import AggSpec
from repro.relational.expressions import col


class TestExecution:
    def test_fig4_drug_consumption(self, paper_catalog):
        """The Fig 4 report: consumption per drug over prescriptions."""
        q = parse_query(
            "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug"
        )
        out = execute(q, paper_catalog)
        assert {tuple(r) for r in out.rows} == {
            ("DH", 1), ("DV", 1), ("DR", 2), ("DM", 1),
        }

    def test_where_filters(self, paper_catalog):
        q = parse_query("SELECT patient FROM prescriptions WHERE disease = 'HIV'")
        out = execute(q, paper_catalog)
        assert sorted(r[0] for r in out.rows) == ["Alice", "Chris"]

    def test_join_prescriptions_costs(self, paper_catalog):
        q = parse_query(
            "SELECT patient, cost FROM prescriptions JOIN drugcost ON drug = drug "
            "ORDER BY cost DESC LIMIT 1"
        )
        out = execute(q, paper_catalog)
        assert out.rows == [("Alice", 60)]

    def test_view_expansion_carries_provenance(self, paper_catalog):
        q = parse_query("SELECT patient FROM nohiv")
        out = execute(q, paper_catalog)
        base_tables = {r.table for r in out.all_lineage()}
        assert base_tables == {"prescriptions"}
        assert len(out) == 3  # Bob, Math, Alice(asthma)

    def test_having(self, paper_catalog):
        q = (
            Query.from_("prescriptions")
            .group("patient")
            .agg(AggSpec("count", None, "n"))
            .having_(col("n") > 1)
        )
        out = execute(q, paper_catalog)
        assert out.rows == [("Alice", 2)]

    def test_having_without_group_rejected(self, paper_catalog):
        q = Query.from_("prescriptions").having_(col("patient") == "Alice")
        with pytest.raises(QueryError):
            execute(q, paper_catalog)

    def test_distinct(self, paper_catalog):
        q = parse_query("SELECT DISTINCT patient FROM prescriptions")
        out = execute(q, paper_catalog)
        assert len(out) == 4

    def test_unknown_relation_raises(self, paper_catalog):
        with pytest.raises(QueryError):
            execute(Query.from_("missing"), paper_catalog)

    def test_named_result(self, paper_catalog):
        out = execute(Query.from_("prescriptions"), paper_catalog, name="copy")
        assert out.name == "copy"

    def test_select_projection_over_aggregate_must_use_outputs(self, paper_catalog):
        q = (
            Query.from_("prescriptions")
            .group("drug")
            .agg(AggSpec("count", None, "n"))
            .project("patient", "n")
        )
        with pytest.raises(QueryError):
            execute(q, paper_catalog)


class TestEngineWrapper:
    def test_sql_helper(self, paper_catalog):
        engine = Engine(paper_catalog)
        out = engine.sql("SELECT COUNT(*) AS n FROM prescriptions")
        assert out.rows == [(5,)]

    def test_default_catalog(self):
        engine = Engine()
        assert engine.catalog.table_names() == ()

    def test_nested_views(self, paper_catalog):
        paper_catalog.add_view(
            View("asthma_only", parse_query("SELECT patient, drug FROM nohiv WHERE disease != 'HIV'"))
        )
        # nohiv lacks "disease"? it projects it; ensure chain works
        out = execute(parse_query("SELECT patient FROM asthma_only"), paper_catalog)
        assert len(out) == 3


class TestSetOperations:
    """UNION execution: the base grammar rejects set ops, so these queries
    come in through the ingestion grammar (repro.ingest)."""

    @staticmethod
    def parse_union(sql: str) -> Query:
        from repro.ingest import parse_suite_text
        from repro.ingest.dialects import DIALECTS

        (statement,) = parse_suite_text(
            sql + ";", DIALECTS["ansi"], mangle_prefix="eng"
        )
        return statement.query

    def test_union_all_concatenates(self, paper_catalog):
        q = self.parse_union(
            "SELECT patient FROM prescriptions WHERE disease = 'HIV' "
            "UNION ALL SELECT patient FROM prescriptions WHERE disease = 'HIV'"
        )
        out = execute(q, paper_catalog)
        assert sorted(r[0] for r in out.rows) == [
            "Alice", "Alice", "Chris", "Chris",
        ]

    def test_union_deduplicates(self, paper_catalog):
        q = self.parse_union(
            "SELECT patient FROM prescriptions WHERE disease = 'HIV' "
            "UNION SELECT patient FROM prescriptions WHERE disease = 'HIV'"
        )
        out = execute(q, paper_catalog)
        assert sorted(r[0] for r in out.rows) == ["Alice", "Chris"]

    def test_branches_conform_positionally(self, paper_catalog):
        # Branch columns (drug, patient) swap into head names (patient, drug):
        # SQL aligns by position, never by name.
        q = self.parse_union(
            "SELECT patient, drug FROM prescriptions WHERE disease = 'HIV' "
            "UNION ALL SELECT drug, patient FROM prescriptions WHERE disease = 'diabetes'"
        )
        out = execute(q, paper_catalog)
        assert out.schema.names == ("patient", "drug")
        assert ("DM", "Math") in {tuple(r) for r in out.rows}

    def test_conformance_renames_where_provenance(self, paper_catalog):
        """Permuted overlapping names must re-key per-cell provenance too;
        the row and columnar engines must agree on it cell for cell."""
        from repro.relational.columnar import execute_columnar

        q = self.parse_union(
            "SELECT patient, drug FROM prescriptions "
            "UNION ALL SELECT drug, patient FROM prescriptions"
        )
        row = execute(q, paper_catalog)
        col = execute_columnar(q, paper_catalog)
        assert row.rows == col.rows
        n = len(row.rows) // 2
        for i, (pr, pc) in enumerate(zip(row.provenance, col.provenance)):
            source_col = "patient" if i < n else "drug"
            assert {r.column for r in pr.where_of("patient")} == {source_col}
            assert pr.where_of("patient") == pc.where_of("patient")
            assert pr.where_of("drug") == pc.where_of("drug")

    def test_arity_mismatch_is_rejected(self, paper_catalog):
        q = self.parse_union(
            "SELECT patient, drug FROM prescriptions UNION SELECT patient FROM prescriptions"
        )
        with pytest.raises(QueryError):
            execute(q, paper_catalog)
