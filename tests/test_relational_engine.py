"""Integration tests for the query executor over the paper's tables."""

import pytest

from repro.errors import QueryError
from repro.relational import Engine, Query, View, execute, parse_query
from repro.relational.algebra import AggSpec
from repro.relational.expressions import col


class TestExecution:
    def test_fig4_drug_consumption(self, paper_catalog):
        """The Fig 4 report: consumption per drug over prescriptions."""
        q = parse_query(
            "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug"
        )
        out = execute(q, paper_catalog)
        assert {tuple(r) for r in out.rows} == {
            ("DH", 1), ("DV", 1), ("DR", 2), ("DM", 1),
        }

    def test_where_filters(self, paper_catalog):
        q = parse_query("SELECT patient FROM prescriptions WHERE disease = 'HIV'")
        out = execute(q, paper_catalog)
        assert sorted(r[0] for r in out.rows) == ["Alice", "Chris"]

    def test_join_prescriptions_costs(self, paper_catalog):
        q = parse_query(
            "SELECT patient, cost FROM prescriptions JOIN drugcost ON drug = drug "
            "ORDER BY cost DESC LIMIT 1"
        )
        out = execute(q, paper_catalog)
        assert out.rows == [("Alice", 60)]

    def test_view_expansion_carries_provenance(self, paper_catalog):
        q = parse_query("SELECT patient FROM nohiv")
        out = execute(q, paper_catalog)
        base_tables = {r.table for r in out.all_lineage()}
        assert base_tables == {"prescriptions"}
        assert len(out) == 3  # Bob, Math, Alice(asthma)

    def test_having(self, paper_catalog):
        q = (
            Query.from_("prescriptions")
            .group("patient")
            .agg(AggSpec("count", None, "n"))
            .having_(col("n") > 1)
        )
        out = execute(q, paper_catalog)
        assert out.rows == [("Alice", 2)]

    def test_having_without_group_rejected(self, paper_catalog):
        q = Query.from_("prescriptions").having_(col("patient") == "Alice")
        with pytest.raises(QueryError):
            execute(q, paper_catalog)

    def test_distinct(self, paper_catalog):
        q = parse_query("SELECT DISTINCT patient FROM prescriptions")
        out = execute(q, paper_catalog)
        assert len(out) == 4

    def test_unknown_relation_raises(self, paper_catalog):
        with pytest.raises(QueryError):
            execute(Query.from_("missing"), paper_catalog)

    def test_named_result(self, paper_catalog):
        out = execute(Query.from_("prescriptions"), paper_catalog, name="copy")
        assert out.name == "copy"

    def test_select_projection_over_aggregate_must_use_outputs(self, paper_catalog):
        q = (
            Query.from_("prescriptions")
            .group("drug")
            .agg(AggSpec("count", None, "n"))
            .project("patient", "n")
        )
        with pytest.raises(QueryError):
            execute(q, paper_catalog)


class TestEngineWrapper:
    def test_sql_helper(self, paper_catalog):
        engine = Engine(paper_catalog)
        out = engine.sql("SELECT COUNT(*) AS n FROM prescriptions")
        assert out.rows == [(5,)]

    def test_default_catalog(self):
        engine = Engine()
        assert engine.catalog.table_names() == ()

    def test_nested_views(self, paper_catalog):
        paper_catalog.add_view(
            View("asthma_only", parse_query("SELECT patient, drug FROM nohiv WHERE disease != 'HIV'"))
        )
        # nohiv lacks "disease"? it projects it; ensure chain works
        out = execute(parse_query("SELECT patient FROM asthma_only"), paper_catalog)
        assert len(out) == 3
