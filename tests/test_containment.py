"""Unit tests for predicate implication, derivability, and CQ containment."""

import pytest

from repro.core import (
    NotConjunctive,
    canonicalize,
    check_derivability,
    is_contained,
    predicate_implies,
    source_columns_used,
)
from repro.relational import (
    Catalog,
    Query,
    Table,
    View,
    make_schema,
    parse_expression,
    parse_query,
)
from repro.relational.algebra import AggSpec
from repro.relational.types import ColumnType


def P(text):
    return parse_expression(text)


class TestPredicateImplies:
    def test_none_is_true(self):
        assert predicate_implies(P("a > 1"), None)
        assert not predicate_implies(None, P("a > 1"))

    def test_interval_reasoning(self):
        assert predicate_implies(P("a > 10"), P("a > 5"))
        assert predicate_implies(P("a >= 10"), P("a > 5"))
        assert not predicate_implies(P("a > 5"), P("a > 10"))
        assert predicate_implies(P("a > 10"), P("a >= 10"))
        assert not predicate_implies(P("a >= 10"), P("a > 10"))
        assert predicate_implies(P("a < 3"), P("a <= 3"))

    def test_equality(self):
        assert predicate_implies(P("a = 5"), P("a > 1"))
        assert predicate_implies(P("a = 5"), P("a != 6"))
        assert predicate_implies(P("a = 5"), P("a = 5"))
        assert not predicate_implies(P("a > 1"), P("a = 5"))

    def test_in_sets(self):
        assert predicate_implies(P("a IN (1, 2)"), P("a IN (1, 2, 3)"))
        assert not predicate_implies(P("a IN (1, 4)"), P("a IN (1, 2, 3)"))
        assert predicate_implies(P("a = 2"), P("a IN (1, 2)"))
        assert predicate_implies(P("a IN (5, 6)"), P("a > 4"))

    def test_not_equal(self):
        assert predicate_implies(P("a = 'x'"), P("a != 'y'"))
        assert predicate_implies(P("a != 'y' AND a > 0"), P("a != 'y'"))
        assert not predicate_implies(P("a > 0"), P("a != 5"))
        assert predicate_implies(P("a > 10"), P("a != 5"))
        assert predicate_implies(P("a < 3"), P("a != 5"))

    def test_multi_column(self):
        assert predicate_implies(
            P("a > 10 AND b = 'x'"), P("a > 5 AND b != 'y'")
        )
        assert not predicate_implies(P("a > 10"), P("a > 5 AND b = 'x'"))

    def test_not_null(self):
        assert predicate_implies(P("a IS NOT NULL"), P("a IS NOT NULL"))
        assert predicate_implies(P("a > 1"), P("a IS NOT NULL"))
        assert not predicate_implies(None, P("a IS NOT NULL"))

    def test_non_conjunctive_falls_back_to_syntactic(self):
        disj = P("a > 1 OR b > 2")
        assert predicate_implies(disj, disj)  # verbatim conjunct match
        assert not predicate_implies(disj, P("a > 1"))
        assert predicate_implies(P("(a > 1 OR b > 2) AND c = 3"), disj)


@pytest.fixture
def cq_catalog():
    cat = Catalog()
    presc = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    cost = make_schema(("drug", ColumnType.STRING), ("price", ColumnType.INT))
    cat.add_table(Table.from_rows("presc", presc, [], provider="h"))
    cat.add_table(Table.from_rows("dcost", cost, [], provider="a"))
    return cat


class TestCanonicalize:
    def test_atoms_and_head(self, cq_catalog):
        q = parse_query("SELECT patient FROM presc WHERE drug = 'DH'")
        c = canonicalize(q, cq_catalog)
        assert len(c.atoms) == 1 and c.atoms[0].relation == "presc"
        assert set(c.head) == {"patient"}
        assert len(c.constraints) == 1

    def test_join_merges_variables(self, cq_catalog):
        q = parse_query("SELECT patient FROM presc JOIN dcost ON drug = drug")
        c = canonicalize(q, cq_catalog)
        presc_drug = c.atoms[0].variables[1]
        dcost_drug = c.atoms[1].variables[0]
        assert presc_drug == dcost_drug

    def test_var_var_equality_in_where(self, cq_catalog):
        q = parse_query(
            "SELECT patient FROM presc JOIN dcost ON drug = drug WHERE cost = price"
        )
        c = canonicalize(q, cq_catalog)
        assert c.atoms[0].variables[3] == c.atoms[1].variables[1]

    def test_aggregates_rejected(self, cq_catalog):
        q = parse_query("SELECT drug, COUNT(*) AS n FROM presc GROUP BY drug")
        with pytest.raises(NotConjunctive):
            canonicalize(q, cq_catalog)

    def test_views_rejected(self, cq_catalog):
        cq_catalog.add_view(View("v", parse_query("SELECT patient FROM presc")))
        with pytest.raises(NotConjunctive):
            canonicalize(parse_query("SELECT patient FROM v"), cq_catalog)

    def test_disjunction_rejected(self, cq_catalog):
        q = parse_query("SELECT patient FROM presc WHERE drug = 'a' OR drug = 'b'")
        with pytest.raises(NotConjunctive):
            canonicalize(q, cq_catalog)


class TestIsContained:
    def test_stricter_filter_contained(self, cq_catalog):
        q1 = parse_query("SELECT patient FROM presc WHERE cost > 20")
        q2 = parse_query("SELECT patient FROM presc WHERE cost > 10")
        assert is_contained(q1, q2, cq_catalog)
        assert not is_contained(q2, q1, cq_catalog)

    def test_join_contained_in_projection(self, cq_catalog):
        q1 = parse_query("SELECT patient FROM presc JOIN dcost ON drug = drug")
        q2 = parse_query("SELECT patient FROM presc")
        assert is_contained(q1, q2, cq_catalog)
        assert not is_contained(q2, q1, cq_catalog)

    def test_equal_queries_both_ways(self, cq_catalog):
        q = parse_query("SELECT patient, drug FROM presc WHERE disease != 'HIV'")
        assert is_contained(q, q, cq_catalog)

    def test_different_heads_not_contained(self, cq_catalog):
        q1 = parse_query("SELECT patient FROM presc")
        q2 = parse_query("SELECT drug FROM presc")
        assert not is_contained(q1, q2, cq_catalog)

    def test_constant_in_head_position(self, cq_catalog):
        q1 = parse_query("SELECT patient FROM presc WHERE drug = 'DH'")
        q2 = parse_query("SELECT patient FROM presc WHERE drug != 'DR'")
        assert is_contained(q1, q2, cq_catalog)

    def test_self_join_folding(self, cq_catalog):
        # presc ⋈ presc on all of drug is contained in plain presc scan
        q1 = parse_query(
            "SELECT patient FROM presc JOIN dcost ON drug = drug WHERE price > 0"
        )
        q2 = parse_query("SELECT patient FROM presc JOIN dcost ON drug = drug")
        assert is_contained(q1, q2, cq_catalog)


class TestSourceColumnsUsed:
    def test_excludes_agg_aliases(self):
        q = (
            Query.from_("t")
            .group("g")
            .agg(AggSpec("sum", "m", "total"))
            .project("g", "total")
            .order_by("total")
        )
        assert source_columns_used(q) == frozenset({"g", "m"})

    def test_includes_filters_joins_order(self):
        q = (
            Query.from_("t")
            .join("u", [("a", "b")])
            .filter(parse_expression("c > 1"))
            .project("d")
            .order_by("e")
        )
        assert source_columns_used(q) == frozenset({"a", "b", "c", "d", "e"})


class TestDerivability:
    @pytest.fixture
    def catalog(self, cq_catalog):
        cq_catalog.add_view(
            View(
                "meta",
                parse_query(
                    "SELECT patient, drug, disease, cost FROM presc "
                    "WHERE disease != 'HIV'"
                ),
            )
        )
        return cq_catalog

    def test_narrowing_report_is_derivable(self, catalog):
        report = parse_query(
            "SELECT drug, COUNT(*) AS n FROM meta WHERE disease = 'asthma' GROUP BY drug"
        )
        meta = catalog.view("meta").query
        assert check_derivability(report, "meta", meta, catalog)

    def test_weaker_predicate_not_derivable(self, catalog):
        # Authored over the base table (bypassing the view), a weaker
        # predicate cannot be certified against the meta-report's filter.
        report = parse_query("SELECT drug FROM presc WHERE cost > 0")
        meta = catalog.view("meta").query
        result = check_derivability(report, "meta", meta, catalog)
        assert not result and any("predicate" in r for r in result.reasons)

    def test_weaker_predicate_over_view_is_fine(self, catalog):
        # The same report authored over the view inherits the HIV filter.
        report = parse_query("SELECT drug FROM meta WHERE cost > 0")
        meta = catalog.view("meta").query
        assert check_derivability(report, "meta", meta, catalog)

    def test_foreign_relation_not_derivable(self, catalog):
        report = parse_query(
            "SELECT patient FROM presc JOIN dcost ON drug = drug WHERE disease != 'HIV'"
        )
        meta = catalog.view("meta").query
        result = check_derivability(report, "meta", meta, catalog)
        assert not result and any("base relations" in r for r in result.reasons)

    def test_unexposed_column_not_derivable(self, catalog):
        catalog.add_view(
            View("meta2", parse_query("SELECT drug, cost FROM presc"))
        )
        report = parse_query("SELECT patient FROM meta2")
        result = check_derivability(
            report, "meta2", catalog.view("meta2").query, catalog
        )
        assert not result and any("does not expose" in r for r in result.reasons)

    def test_report_over_filtered_metareport_inherits_its_filter(self, catalog):
        """A report FROM the meta-report need not restate the view's WHERE —
        executing through the view applies it anyway."""
        report = parse_query("SELECT drug FROM meta")  # no WHERE at all
        meta = catalog.view("meta").query  # WHERE disease != 'HIV'
        assert check_derivability(report, "meta", meta, catalog)

    def test_warehouse_report_must_still_imply_filter(self, catalog):
        report = parse_query("SELECT drug FROM presc")  # bypasses the view
        meta = catalog.view("meta").query
        result = check_derivability(report, "meta", meta, catalog)
        assert not result
        assert any("predicate" in r for r in result.reasons)

    def test_join_smuggled_through_metareport_source_flagged(self, catalog):
        """Regression: FROM meta JOIN other must not bypass the base check."""
        from repro.relational import Table, make_schema
        from repro.relational.types import ColumnType

        catalog.add_table(
            Table.from_rows(
                "exams",
                make_schema(("patient", ColumnType.STRING), ("res", ColumnType.INT)),
                [],
                provider="lab",
            )
        )
        report = parse_query(
            "SELECT patient FROM meta JOIN exams ON patient = patient "
            "WHERE disease != 'HIV'"
        )
        meta = catalog.view("meta").query
        result = check_derivability(report, "meta", meta, catalog)
        assert not result
        assert any("outside the meta-report" in r for r in result.reasons)

    def test_aggregate_metareport_rejected(self, catalog):
        agg_meta = parse_query("SELECT drug, COUNT(*) AS n FROM presc GROUP BY drug")
        report = parse_query("SELECT drug FROM aggm")
        catalog.add_view(View("aggm", agg_meta))
        result = check_derivability(report, "aggm", agg_meta, catalog)
        assert not result
