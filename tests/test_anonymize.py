"""Unit tests for the anonymization subsystem."""

import statistics

import pytest

from repro.errors import AnonymizationError
from repro.anonymize import (
    Pseudonymizer,
    QuasiIdentifier,
    SUPPRESSED,
    aggregate_error,
    average_class_size,
    discernibility,
    enforce_l_diversity,
    entropy_l_diversity,
    equivalence_classes,
    generalization_loss,
    global_recoding,
    is_k_anonymous,
    is_l_diverse,
    mondrian_anonymize,
    perturb_numeric,
    scramble_column,
    suppression_hierarchy,
    taxonomy_hierarchy,
    year_hierarchy,
    zip_hierarchy,
)
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType
from repro.workloads import healthcare


@pytest.fixture
def residents():
    data = healthcare.generate(
        healthcare.HealthcareConfig(n_patients=120, n_prescriptions=0, n_exams=0)
    )
    return data.residents


class TestHierarchies:
    def test_zip_levels(self):
        h = zip_hierarchy()
        assert h.generalize("38121", 0) == "38121"
        assert h.generalize("38121", 2) == "381**"
        assert h.generalize("38121", 5) == SUPPRESSED

    def test_year_buckets(self):
        h = year_hierarchy(widths=(1, 10, 25))
        assert h.generalize(1987, 0) == "1987"
        assert h.generalize(1987, 1) == "1980-1989"
        assert h.generalize(1987, 2) == "1975-1999"
        assert h.generalize(1987, 3) == SUPPRESSED

    def test_taxonomy(self):
        h = taxonomy_hierarchy(
            "disease", {"HIV": "infectious", "flu": "infectious"}
        )
        assert h.generalize("HIV", 1) == "infectious"
        assert h.generalize("HIV", h.height) == SUPPRESSED

    def test_taxonomy_cycle_rejected(self):
        h = taxonomy_hierarchy("bad", {"a": "b", "b": "a"}, height=2)
        with pytest.raises(AnonymizationError):
            h.generalize("a", 1)

    def test_suppression_hierarchy(self):
        h = suppression_hierarchy()
        assert h.generalize("Alice", 0) == "Alice"
        assert h.generalize("Alice", 1) == SUPPRESSED

    def test_loss_normalized(self):
        h = zip_hierarchy()
        assert h.loss(0) == 0.0 and h.loss(h.height) == 1.0

    def test_none_is_suppressed(self):
        assert zip_hierarchy().generalize(None, 0) == SUPPRESSED

    def test_bad_level_rejected(self):
        with pytest.raises(AnonymizationError):
            zip_hierarchy().generalize("38121", 99)


class TestMondrian:
    def test_result_is_k_anonymous(self, residents):
        qis = [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")]
        for k in (2, 5, 10):
            result = mondrian_anonymize(residents, qis, k)
            assert is_k_anonymous(result.table, ["zip", "birth_year"], k)
            assert len(result.table) == len(residents)  # no suppression

    def test_numeric_ranges_produced(self, residents):
        result = mondrian_anonymize(
            residents, [QuasiIdentifier("birth_year")], 10
        )
        values = set(result.table.column_values("birth_year"))
        assert any("-" in v for v in values)

    def test_higher_k_coarser(self, residents):
        qis = [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")]
        small = mondrian_anonymize(residents, qis, 2)
        large = mondrian_anonymize(residents, qis, 20)
        assert large.partitions <= small.partitions

    def test_provenance_preserved(self, residents):
        result = mondrian_anonymize(residents, [QuasiIdentifier("zip")], 5)
        assert result.table.all_lineage() == residents.all_lineage()

    def test_too_small_table_rejected(self):
        schema = make_schema(("x", ColumnType.INT))
        t = Table.from_rows("t", schema, [(1,), (2,)])
        with pytest.raises(AnonymizationError):
            mondrian_anonymize(t, [QuasiIdentifier("x")], 5)

    def test_k_below_one_rejected(self, residents):
        with pytest.raises(AnonymizationError):
            mondrian_anonymize(residents, [QuasiIdentifier("zip")], 0)

    def test_empty_qis_rejected(self, residents):
        with pytest.raises(AnonymizationError):
            mondrian_anonymize(residents, [], 5)


class TestGlobalRecoding:
    def test_result_is_k_anonymous_within_budget(self, residents):
        qis = [
            QuasiIdentifier("zip", zip_hierarchy()),
            QuasiIdentifier("birth_year", year_hierarchy()),
        ]
        result = global_recoding(residents, qis, 5, max_suppression=0.1)
        assert is_k_anonymous(result.table, ["zip", "birth_year"], 5)
        assert result.suppressed_rows <= 0.1 * len(residents)
        assert result.levels_used  # some level vector was chosen

    def test_missing_hierarchy_rejected(self, residents):
        with pytest.raises(AnonymizationError):
            global_recoding(residents, [QuasiIdentifier("zip")], 5)

    def test_impossible_budget_raises(self):
        # 3 distinct rows, k=2, no suppression allowed, identity-only level
        schema = make_schema(("name", ColumnType.STRING))
        t = Table.from_rows("t", schema, [("a",), ("b",), ("c",)])
        qis = [QuasiIdentifier("name", suppression_hierarchy())]
        # suppression level (height 1) makes everything '*', so it succeeds:
        result = global_recoding(t, qis, 2, max_suppression=0.0)
        assert set(result.table.column_values("name")) == {SUPPRESSED}


class TestLDiversity:
    def test_distinct_l_diversity_report(self, residents):
        result = mondrian_anonymize(
            residents, [QuasiIdentifier("birth_year")], 10
        )
        report = is_l_diverse(result.table, ["birth_year"], "gender", 2)
        assert report.classes_total == result.partitions
        assert report.min_distinct >= 1

    def test_enforce_drops_failing_classes(self, residents):
        result = mondrian_anonymize(
            residents, [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")], 2
        )
        enforced = enforce_l_diversity(result, "gender", 2)
        report = is_l_diverse(
            enforced.table, ["zip", "birth_year"], "gender", 2
        )
        assert report.satisfied

    def test_entropy_l_diversity(self, residents):
        result = mondrian_anonymize(residents, [QuasiIdentifier("zip")], 30)
        # entropy-2 is stronger than distinct-2
        if entropy_l_diversity(result.table, ["zip"], "gender", 2):
            assert is_l_diverse(result.table, ["zip"], "gender", 2).satisfied

    def test_invalid_l_rejected(self, residents):
        with pytest.raises(AnonymizationError):
            is_l_diverse(residents, ["zip"], "gender", 0)


class TestPerturbation:
    def _exams(self):
        data = healthcare.generate(
            healthcare.HealthcareConfig(n_patients=50, n_prescriptions=0, n_exams=300)
        )
        return data.exams

    def test_mean_preserved_exactly(self):
        exams = self._exams()
        perturbed, report = perturb_numeric(
            exams, ["result"], noise_scale=0.2, seed=1
        )
        original = [v for v in exams.column_values("result") if v is not None]
        mutated = [v for v in perturbed.column_values("result") if v is not None]
        assert report.mean_preserved
        assert statistics.mean(original) == pytest.approx(statistics.mean(mutated))

    def test_values_actually_change(self):
        exams = self._exams()
        perturbed, _ = perturb_numeric(exams, ["result"], noise_scale=0.2, seed=1)
        assert perturbed.column_values("result") != exams.column_values("result")

    def test_zero_noise_is_identity(self):
        exams = self._exams()
        perturbed, _ = perturb_numeric(exams, ["result"], noise_scale=0.0, seed=1)
        assert perturbed.column_values("result") == pytest.approx(
            exams.column_values("result")
        )

    def test_non_numeric_rejected(self):
        exams = self._exams()
        with pytest.raises(AnonymizationError):
            perturb_numeric(exams, ["exam_type"], noise_scale=0.1, seed=1)

    def test_scramble_preserves_marginal(self):
        exams = self._exams()
        scrambled = scramble_column(exams, "result", seed=5)
        assert sorted(
            v for v in scrambled.column_values("result") if v is not None
        ) == sorted(v for v in exams.column_values("result") if v is not None)

    def test_scramble_is_keyed(self):
        exams = self._exams()
        a = scramble_column(exams, "result", seed=5)
        b = scramble_column(exams, "result", seed=6)
        assert a.column_values("result") != b.column_values("result")


class TestPseudonymizer:
    def test_deterministic_and_stable(self):
        p = Pseudonymizer(salt="s")
        assert p.pseudonym("Alice") == p.pseudonym("Alice")
        assert p.pseudonym("Alice") != p.pseudonym("Bob")

    def test_salt_changes_mapping(self):
        assert (
            Pseudonymizer(salt="a").pseudonym("Alice")
            != Pseudonymizer(salt="b").pseudonym("Alice")
        )

    def test_escrow_reidentification(self):
        p = Pseudonymizer(salt="s")
        token = p.pseudonym("Alice")
        assert p.reidentify(token) == "Alice"
        with pytest.raises(AnonymizationError):
            p.reidentify("anon-ffffffff")

    def test_apply_retypes_and_rewrites(self, prescriptions):
        p = Pseudonymizer(salt="s")
        out = p.apply(prescriptions, ["patient"])
        assert all(str(v).startswith("anon-") for v in out.column_values("patient"))
        assert out.schema.column("patient").ctype is ColumnType.STRING

    def test_null_safe(self):
        p = Pseudonymizer(salt="s")
        assert p.pseudonym(None) == "anon-null"

    def test_empty_salt_rejected(self):
        with pytest.raises(AnonymizationError):
            Pseudonymizer(salt="")


class TestMetrics:
    def test_discernibility_bounds(self, residents):
        n = len(residents)
        identity = discernibility(residents, ["patient"])
        assert identity == n  # all singletons
        result = mondrian_anonymize(residents, [QuasiIdentifier("zip")], 30)
        assert n <= discernibility(result.table, ["zip"]) <= n * n

    def test_average_class_size_at_least_k(self, residents):
        result = mondrian_anonymize(residents, [QuasiIdentifier("birth_year")], 10)
        assert average_class_size(result.table, ["birth_year"]) >= 10

    def test_generalization_loss_monotone_in_k(self, residents):
        qis = [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")]
        loss = {
            k: generalization_loss(
                residents, mondrian_anonymize(residents, qis, k).table,
                ["zip", "birth_year"],
            )
            for k in (2, 20)
        }
        assert loss[2] <= loss[20] <= 1.0

    def test_aggregate_error_zero_on_identity(self, residents):
        assert aggregate_error(
            residents, residents, group_column="zip", value_column="birth_year"
        ) == 0.0

    def test_aggregate_error_counts_lost_groups(self):
        schema = make_schema(("g", ColumnType.STRING), ("v", ColumnType.INT))
        truth = Table.from_rows("t", schema, [("a", 10), ("b", 20)])
        release = Table.from_rows("r", schema, [("a", 10)])
        assert aggregate_error(
            truth, release, group_column="g", value_column="v"
        ) == pytest.approx(0.5)

    def test_equivalence_classes(self):
        schema = make_schema(("g", ColumnType.STRING))
        t = Table.from_rows("t", schema, [("a",), ("a",), ("b",)])
        classes = equivalence_classes(t, ["g"])
        assert {k[0]: len(v) for k, v in classes.items()} == {"a": 2, "b": 1}
