"""End-to-end tests for the cross-level PLA verifier (VER001–VER006).

The seed healthcare deployment must verify completely clean — every claim
PROVED, nothing UNKNOWN — in both enforcement postures. Each deliberately
broken fixture must produce a REFUTED verdict whose synthesized
counterexample *reproduces through the real runtime engine*, and for the
drifted-view fixture the escape is additionally demonstrated end-to-end
through the production delivery service.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import Severity
from repro.core.annotations import IntensionalCondition
from repro.core.pla import PLA, PlaLevel
from repro.relational.algebra import AggSpec
from repro.relational.expressions import (
    And,
    Col,
    Comparison,
    InList,
    Lit,
    Not,
)
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition
from repro.simulation.scenario import ScenarioConfig, build_scenario
from repro.verify import (
    DeploymentVerifier,
    Verdict,
    VerificationInput,
    verify_scenario,
)


@pytest.fixture(scope="module")
def seed_scenario():
    return build_scenario(ScenarioConfig(n_reports=12))


def fresh_scenario(**kwargs):
    return build_scenario(ScenarioConfig(n_reports=12, **kwargs))


class TestSeedDeploymentProves:
    def test_seed_scenario_all_proved_no_unknown(self, seed_scenario):
        report = verify_scenario(seed_scenario)
        assert report.all_proved
        assert report.unknown == ()
        assert report.refuted == ()
        assert report.coverage["metareports"] == 4
        assert report.coverage["reports"] == 12
        # Every check family ran.
        for code in ("VER002", "VER003", "VER004", "VER005"):
            assert report.by_code(code), f"no {code} checks ran"
        assert any(r.code == "VER001" for r in report.results)

    def test_source_enforcing_posture_proves_source_policy(self):
        scenario = fresh_scenario(source_enforces=True)
        report = verify_scenario(scenario)
        assert report.all_proved and report.unknown == ()
        # The provider's deny-row consent rule became a real implication
        # proof against every meta-report region.
        policy_checks = [
            r for r in report.by_code("VER002") if "hiv-rows-stay-home" in r.claim
        ]
        assert len(policy_checks) == 4
        assert all(r.trace is not None for r in policy_checks)

    def test_exit_code_and_diagnostics_clean(self, seed_scenario):
        report = verify_scenario(seed_scenario)
        assert report.exit_code(Severity.WARNING) == 0
        assert not list(report.to_diagnostics().diagnostics)

    def test_json_rendering_round_trips(self, seed_scenario):
        report = verify_scenario(seed_scenario)
        payload = json.loads(report.to_json())
        assert payload["counts"]["refuted"] == 0
        assert payload["counts"]["unknown"] == 0
        assert len(payload["results"]) == len(report.results)


class TestVer001DriftedView:
    """Approved meta-report definition tampered; catalog view stays wide."""

    def broken(self):
        scenario = fresh_scenario()
        # A report authored FROM the meta-report view. Derivability skips
        # the predicate-implication step for view-sourced reports, so the
        # compliance checker alone cannot see the coming drift.
        scenario.report_catalog.add(
            ReportDefinition(
                "crafted_agg",
                "Crafted aggregate",
                Query.from_("mr_0").group("drug").agg(AggSpec("count", None, "n")),
                frozenset({"analyst"}),
                "care/quality",
            )
        )
        # The owner's approved artifact narrows to an empty-ish region while
        # the registered catalog view silently keeps serving everything.
        mr0 = scenario.metareports.get("mr_0")
        mr0.query = mr0.query.filter(Comparison("<", Col("cost"), Lit(0)))
        return scenario

    def test_refuted_with_confirmed_counterexample(self):
        report = verify_scenario(self.broken())
        assert report.unknown == ()
        refuted = report.by_code("VER001")
        refuted = [r for r in refuted if r.verdict is Verdict.REFUTED]
        assert len(refuted) == 1
        check = refuted[0]
        assert check.location == "report:crafted_agg"
        assert check.counterexample is not None
        assert check.counterexample.replay.confirmed
        assert check.counterexample.replay.delivered_rows >= 1
        # The witness row really lies outside the approved region.
        assert check.counterexample.row["cost"] >= 0
        # No static/runtime drift: the engine agreed with the solver.
        assert report.by_code("VER006") == ()

    def test_escape_reproduces_through_delivery_service(self):
        """The refuted claim is a real leak, not a verifier artifact: the
        production delivery path serves rows from outside the approved
        region."""
        scenario = self.broken()
        service = scenario.delivery_service()
        instance = service.deliver("crafted_agg", user="ann", purpose="care/quality")
        # The approved region (cost < 0) is empty in the seed data, yet the
        # drifted catalog view keeps feeding the report.
        assert len(instance.table) > 0
        fact = scenario.bi_catalog.table("fact_prescriptions")
        cost_at = fact.schema.names.index("cost")
        assert all(row[cost_at] >= 0 for row in fact.rows)

    def test_refutation_maps_to_error_diagnostic(self):
        report = verify_scenario(self.broken())
        diags = report.to_diagnostics()
        assert any(
            d.code == "VER001" and d.severity is Severity.ERROR
            for d in diags.diagnostics
        )
        assert report.exit_code(Severity.ERROR) == 1


class TestVer002SourcePolicyEscape:
    """A source PLA stricter than what the meta-reports enforce."""

    def broken(self):
        scenario = fresh_scenario()
        scenario.pla_registry.add(
            PLA(
                name="pla_src_prescriptions",
                owner="hospital",
                level=PlaLevel.SOURCE,
                target="prescriptions",
                annotations=(
                    IntensionalCondition(
                        attribute="disease",
                        condition=Not(InList(Col("disease"), ("HIV", "HCV"))),
                        action="suppress_row",
                    ),
                ),
            )
        )
        scenario.pla_registry.approve("pla_src_prescriptions")
        return scenario

    def test_every_metareport_refuted_with_replay(self):
        report = verify_scenario(self.broken())
        assert report.unknown == ()
        refuted = [
            r for r in report.by_code("VER002") if r.verdict is Verdict.REFUTED
        ]
        assert len(refuted) == 4  # every meta-report lets the row through
        for check in refuted:
            ce = check.counterexample
            assert ce is not None
            # The meta-report PLAs only suppress HIV, so HCV escapes.
            assert ce.row["disease"] == "HCV"
            assert ce.replay.confirmed
        assert report.by_code("VER006") == ()


class TestVer003Ver005DegeneratePla:
    """An unsatisfiable PLA condition suppresses the whole view."""

    def broken(self):
        scenario = fresh_scenario()
        mr0 = scenario.metareports.get("mr_0")
        assert mr0.pla is not None
        impossible = And(
            Comparison(">", Col("cost"), Lit(100)),
            Comparison("<", Col("cost"), Lit(10)),
        )
        draft = scenario.pla_registry.revise(
            mr0.pla.name,
            mr0.pla.annotations
            + (IntensionalCondition("cost", impossible, "suppress_row"),),
        )
        mr0.pla = scenario.pla_registry.approve(draft.name)
        return scenario

    def test_condition_and_region_refuted(self):
        report = verify_scenario(self.broken())
        assert report.unknown == ()
        ver3 = [r for r in report.by_code("VER003") if r.verdict is Verdict.REFUTED]
        assert len(ver3) == 1 and ver3[0].location == "metareport:mr_0"
        # The empty condition empties the whole runtime region too.
        ver5 = [r for r in report.by_code("VER005") if r.verdict is Verdict.REFUTED]
        assert len(ver5) == 1 and ver5[0].location == "metareport:mr_0"


class TestVer004Tautology:
    def test_null_safe_tautology_refuted(self):
        from repro.relational.expressions import IsNull, Or

        scenario = fresh_scenario()
        mr0 = scenario.metareports.get("mr_0")
        assert mr0.pla is not None
        vacuous = Or(IsNull(Col("cost")), IsNull(Col("cost"), negated=True))
        draft = scenario.pla_registry.revise(
            mr0.pla.name,
            mr0.pla.annotations
            + (IntensionalCondition("cost", vacuous, "suppress_row"),),
        )
        mr0.pla = scenario.pla_registry.approve(draft.name)
        report = verify_scenario(scenario)
        ver4 = [r for r in report.by_code("VER004") if r.verdict is Verdict.REFUTED]
        assert len(ver4) == 1
        assert "tautology" in ver4[0].message


class TestVerifierInputs:
    def test_from_deployment_round_trip(self, tmp_path, seed_scenario):
        from repro.persistence import load_deployment, save_deployment

        root = save_deployment(
            tmp_path / "dep",
            catalog=seed_scenario.bi_catalog,
            metareports=seed_scenario.metareports,
            plas=seed_scenario.pla_registry,
            reports=seed_scenario.report_catalog,
        )
        target = VerificationInput.from_deployment(load_deployment(root))
        report = DeploymentVerifier(target).verify()
        assert report.all_proved and report.unknown == ()

    def test_replay_disabled_still_refutes(self):
        scenario = TestVer001DriftedView().broken()
        target = VerificationInput.from_scenario(scenario)
        report = DeploymentVerifier(target, replay=False).verify()
        refuted = [
            r for r in report.by_code("VER001") if r.verdict is Verdict.REFUTED
        ]
        assert len(refuted) == 1
        ce = refuted[0].counterexample
        assert ce is not None and not ce.replay.confirmed
        assert "replay disabled" in ce.replay.detail
        # Unconfirmed-because-disabled must not masquerade as drift.
        assert report.by_code("VER006") == ()
