"""Solver-depth tests: linear arithmetic atoms, functional dependencies,
and the fail-closed hardening of the verify fragment boundary.

Three layers, mirroring the feature:

* **differential properties** — hypothesis trees now draw linear
  ``Arith`` atoms (``a*x + b ⋈ c`` and affine column-column edges), and a
  separate property checks FD-conditioned implications against brute
  force over FD-respecting universes, replaying every refutation through
  the production enforcement path;
* **pinned regressions** — mixed date/datetime pools answer UNKNOWN with
  a reason instead of crashing, datetime witnesses keep their time
  component through replay, and an evaluation error in one DNF branch can
  never be masked into UNSAT by pruning of its siblings;
* **integration** — FD-dependent VER002 claims prove with ``ASSUME``
  provenance in the trace, FD-violating witnesses are rejected at replay,
  ``fds_from_star`` derives only data-functional level pairs, a changed
  FD mapping invalidates the incremental verdict cache, and the static
  analyzer inherits arithmetic reasoning (PLA004, OR-branch pruning).
"""

from __future__ import annotations

import datetime
import itertools

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.annotations import IntensionalCondition
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, PlaLevel, PlaStatus
from repro.relational import Catalog, Query, Table, make_schema
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    InList,
    Lit,
    Not,
    Or,
)
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition
from repro.verify import (
    DeploymentVerifier,
    FunctionalDependency,
    IncrementalVerifier,
    Sat,
    SourcePolicy,
    Verdict,
    VerificationInput,
    fds_from_star,
    implication_counterexample,
    replay_escape,
    satisfiable,
    truth,
    violated_fd,
)
from repro.verify.domain import set_arithmetic_enabled
from repro.verify.fd import complete_row
from repro.warehouse.star import Dimension, StarSchema

INT = ColumnType.INT
STRING = ColumnType.STRING

OPS = ("<", "<=", ">", ">=", "=", "!=")
INT_CONSTS = (-2, 0, 1, 3)

#: Linear-atom building blocks. Coefficients stay small so boundaries
#: land near the brute-force grid; 2 and 3 both produce fractional
#: boundaries against odd constants, exercising the dense-typing rule.
COEFFS = (2, 3, -2)
SHIFTS = (-1, 1, 2)

#: Brute-force grid for the arithmetic property. Integers only — the
#: solver types a pool integer when all its members are integral, and a
#: dense grid would falsely "refute" integer-gap UNSAT proofs. Fractional
#: witnesses are checked directly by evaluating them, never via the grid.
INT_DOMAIN = tuple(range(-6, 8)) + (None,)

ARITH_COLUMNS = ("a", "c")


def arith_rows():
    for a, c in itertools.product(INT_DOMAIN, INT_DOMAIN):
        yield {"a": a, "c": c}


def complete(witness, columns):
    row = {name: None for name in columns}
    row.update(witness)
    return row


@st.composite
def arith_atoms(draw):
    """Atoms over int columns a, c — plain and linear-arithmetic shapes."""
    kind = draw(st.integers(0, 4))
    op = draw(st.sampled_from(OPS))
    col = draw(st.sampled_from(ARITH_COLUMNS))
    const = draw(st.sampled_from(INT_CONSTS))
    if kind == 0:  # plain column-vs-constant
        return Comparison(op, Col(col), Lit(const))
    if kind == 1:  # coeff * x ⋈ c
        return Comparison(
            op,
            Arith("*", Col(col), Lit(draw(st.sampled_from(COEFFS)))),
            Lit(const),
        )
    if kind == 2:  # x + b ⋈ c  /  x - b ⋈ c
        return Comparison(
            op,
            Arith(
                draw(st.sampled_from(("+", "-"))),
                Col(col),
                Lit(draw(st.sampled_from(SHIFTS))),
            ),
            Lit(const),
        )
    if kind == 3:  # affine edge: a ⋈ coeff * c (+ shift)
        rhs = Arith("*", Col("c"), Lit(draw(st.sampled_from(COEFFS))))
        if draw(st.booleans()):
            rhs = Arith("+", rhs, Lit(draw(st.sampled_from(SHIFTS))))
        return Comparison(op, Col("a"), rhs)
    return Comparison(op, Col("a"), Col("c"))  # plain edge, same group


arith_predicates = st.recursive(
    arith_atoms(),
    lambda kids: st.one_of(
        st.builds(And, kids, kids),
        st.builds(Or, kids, kids),
        st.builds(Not, kids),
    ),
    max_leaves=5,
)


@given(predicate=arith_predicates)
@settings(max_examples=150, deadline=None)
def test_arithmetic_satisfiable_agrees_with_brute_force(predicate):
    result = satisfiable(predicate)
    if result.status is Sat.SAT:
        row = complete(result.witness, ARITH_COLUMNS)
        assert truth(predicate.evaluate(row)) is True
    elif result.status is Sat.UNSAT:
        for row in arith_rows():
            assert truth(predicate.evaluate(row)) is not True, (
                f"solver said UNSAT but {row} satisfies {predicate}"
            )


@given(premise=arith_predicates, conclusion=arith_predicates)
@settings(max_examples=150, deadline=None)
def test_arithmetic_implication_agrees_with_brute_force(premise, conclusion):
    result = implication_counterexample(premise, conclusion)
    if result.status is Sat.SAT:
        row = complete(result.witness, ARITH_COLUMNS)
        assert truth(premise.evaluate(row)) is True
        assert truth(conclusion.evaluate(row)) is not True
    elif result.status is Sat.UNSAT:
        for row in arith_rows():
            if truth(premise.evaluate(row)) is True:
                assert truth(conclusion.evaluate(row)) is True, (
                    f"solver proved {premise} ⇒ {conclusion} but {row} "
                    "is a counterexample"
                )


# -- FD-conditioned implications vs brute force ------------------------------

FD = FunctionalDependency(
    name="dim_drug.drug->disease",
    determinant="drug",
    dependent="disease",
    mapping=(
        ("aspirin", "flu"),
        ("lamivudine", "HIV"),
        ("metformin", "diabetes"),
    ),
    source="dimension drug",
)

FD_COLUMNS = ("drug", "disease", "cost")
DRUGS = ("aspirin", "lamivudine", "metformin", "ibuprofen")
DISEASES = ("flu", "HIV", "diabetes", "asthma")
COST_DOMAIN = (-1, 0, 10, 50, 100, None)


def fd_rows():
    """Every universe row the FD admits (the dimension's combinations)."""
    for (drug, disease), cost in itertools.product(FD.mapping, COST_DOMAIN):
        yield {"drug": drug, "disease": disease, "cost": cost}


@st.composite
def fd_atoms(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Comparison(
            draw(st.sampled_from(("=", "!="))),
            Col("drug"),
            Lit(draw(st.sampled_from(DRUGS))),
        )
    if kind == 1:
        return Comparison(
            draw(st.sampled_from(("=", "!="))),
            Col("disease"),
            Lit(draw(st.sampled_from(DISEASES))),
        )
    if kind == 2:
        values = draw(
            st.lists(st.sampled_from(DRUGS), min_size=1, max_size=3,
                     unique=True)
        )
        return InList(Col("drug"), tuple(values))
    return Comparison(
        draw(st.sampled_from(OPS)),
        Col("cost"),
        Lit(draw(st.sampled_from((0, 10, 50)))),
    )


fd_predicates = st.recursive(
    fd_atoms(),
    lambda kids: st.one_of(
        st.builds(And, kids, kids),
        st.builds(Or, kids, kids),
        st.builds(Not, kids),
    ),
    max_leaves=4,
)


@given(premise=fd_predicates, conclusion=fd_predicates)
@settings(max_examples=120, deadline=None)
def test_fd_conditioned_implication_agrees_with_brute_force(
    premise, conclusion
):
    """FD-premised verdicts are exact over FD-respecting universes."""
    result = implication_counterexample(
        And(premise, FD.predicate()), conclusion
    )
    if result.status is Sat.SAT:
        row = complete(result.witness, FD_COLUMNS)
        row = complete_row(row, result.witness, (FD,))
        assert violated_fd(row, (FD,)) is None, (
            f"witness {row} violates the FD it was proved under"
        )
        assert truth(premise.evaluate(row)) is True
        assert truth(conclusion.evaluate(row)) is not True
    elif result.status is Sat.UNSAT:
        for row in fd_rows():
            if truth(premise.evaluate(row)) is True:
                assert truth(conclusion.evaluate(row)) is True, (
                    f"solver proved it under the FD but {row} (an "
                    "FD-respecting row) is a counterexample"
                )


@given(premise=fd_predicates, conclusion=fd_predicates)
@settings(max_examples=60, deadline=None)
def test_fd_refutations_replay_through_the_engine(premise, conclusion):
    """Every FD-respecting refutation reproduces through enforcement."""
    result = implication_counterexample(
        And(premise, FD.predicate()), conclusion
    )
    assume(result.status is Sat.SAT)
    row = complete(result.witness, FD_COLUMNS)
    row = complete_row(row, result.witness, (FD,))
    outcome = replay_escape(
        Catalog(),
        "wide",
        row,
        Query.from_("wide").filter(premise),
        [],
        conclusion,
        fds=(FD,),
    )
    assert outcome.confirmed, (
        f"counterexample {row} for {premise} ⇒ {conclusion} did not "
        f"reproduce: {outcome.describe()}"
    )
    assert outcome.delivered_rows == 1


# -- pinned: linear arithmetic acceptance ------------------------------------


class TestLinearArithmeticAtoms:
    def test_scaled_comparison_is_sat_with_witness(self):
        # The issue's acceptance shape: cost * 1.2 > 100 must decide.
        pred = Comparison(">", Arith("*", Col("cost"), Lit(1.2)), Lit(100))
        result = satisfiable(pred)
        assert result.status is Sat.SAT
        assert result.witness["cost"] * 1.2 > 100

    def test_scaled_conjunction_is_unsat(self):
        pred = And(
            Comparison(">", Arith("*", Col("cost"), Lit(1.2)), Lit(100)),
            Comparison("<", Col("cost"), Lit(80)),
        )
        assert satisfiable(pred).status is Sat.UNSAT

    def test_scaled_implication_proves_and_refutes(self):
        premise = Comparison(">", Arith("*", Col("cost"), Lit(1.2)), Lit(100))
        proved = implication_counterexample(
            premise, Comparison(">", Col("cost"), Lit(50))
        )
        assert proved.status is Sat.UNSAT
        refuted = implication_counterexample(
            premise, Comparison(">", Col("cost"), Lit(90))
        )
        assert refuted.status is Sat.SAT
        cost = refuted.witness["cost"]
        assert cost * 1.2 > 100 and not cost > 90

    def test_integer_typing_survives_integral_boundaries(self):
        # 2a > 10 solves to the integral boundary 5; with int constants the
        # pool stays integer-typed, so the (5, 6) gap is still empty.
        pred = And(
            Comparison(">", Arith("*", Col("a"), Lit(2)), Lit(10)),
            Comparison("<", Col("a"), Lit(6)),
        )
        assert satisfiable(pred).status is Sat.UNSAT

    def test_fractional_boundary_forces_dense_typing(self):
        # 2a > 11 has the fractional boundary 5.5 — the pool densifies and
        # the same gap now admits a witness.
        pred = And(
            Comparison(">", Arith("*", Col("a"), Lit(2)), Lit(11)),
            Comparison("<", Col("a"), Lit(6)),
        )
        result = satisfiable(pred)
        assert result.status is Sat.SAT
        assert 5.5 < result.witness["a"] < 6

    def test_affine_edge_crossing_found(self):
        # Feasible only where the two threshold lines have crossed (c > 5):
        # the crossing-point seeding must discover it from an empty pool.
        pred = And(
            Comparison(">", Col("a"), Arith("*", Col("c"), Lit(2))),
            Comparison(
                "<",
                Col("a"),
                Arith("-", Arith("*", Col("c"), Lit(3)), Lit(5)),
            ),
        )
        result = satisfiable(pred)
        assert result.status is Sat.SAT
        a, c = result.witness["a"], result.witness["c"]
        assert a > 2 * c and a < 3 * c - 5

    def test_nonlinear_stays_unknown(self):
        pred = Comparison(">", Arith("*", Col("a"), Col("c")), Lit(10))
        result = satisfiable(pred)
        assert result.status is Sat.UNKNOWN
        assert result.reason

    def test_division_by_zero_stays_unknown(self):
        pred = Comparison(">", Arith("/", Col("a"), Lit(0)), Lit(1))
        result = satisfiable(pred)
        assert result.status is Sat.UNKNOWN
        assert result.reason

    def test_ablation_toggle_restores_pre_extension_behaviour(self):
        pred = Comparison(">", Arith("*", Col("cost"), Lit(1.2)), Lit(100))
        previous = set_arithmetic_enabled(False)
        try:
            result = satisfiable(pred)
            assert result.status is Sat.UNKNOWN
            assert "disabled" in result.reason
        finally:
            set_arithmetic_enabled(previous)
        assert satisfiable(pred).status is Sat.SAT


# -- pinned: fail-closed fragment boundary -----------------------------------


class TestFailClosedBoundary:
    def test_mixed_date_datetime_pool_is_unknown_with_reason(self):
        # Regression: ordering a pool holding both a date and a datetime
        # used to crash candidate construction; it must answer UNKNOWN.
        pred = And(
            Comparison(">", Col("d"), Lit(datetime.date(2007, 2, 12))),
            Comparison(
                "<", Col("d"), Lit(datetime.datetime(2007, 2, 12, 9, 0))
            ),
        )
        result = satisfiable(pred)
        assert result.status is Sat.UNKNOWN
        assert "mixed-type constant pool" in result.reason
        assert "date" in result.reason and "datetime" in result.reason

    def test_branch_error_cannot_be_masked_into_unsat(self, monkeypatch):
        """An evaluation error in one DNF branch taints the whole search.

        The first branch's candidates raise on comparison ("x" > 2), the
        second branch is soundly pruned as inconsistent. Before the
        had_error audit the pruned branch let the search fall through to
        UNSAT — an unsound claim, since the erroring branch was never
        actually decided.
        """
        monkeypatch.setattr(
            "repro.verify.solver.build_domains",
            lambda exprs: {"a": ("x", None)},
        )
        pred = Or(
            And(
                Comparison(">", Col("a"), Lit(2)),
                Comparison("<", Col("a"), Lit(5)),
            ),
            And(
                Comparison(">", Col("a"), Lit(10)),
                Comparison("<", Col("a"), Lit(10)),
            ),
        )
        result = satisfiable(pred)
        assert result.status is Sat.UNKNOWN
        assert "evaluation raised" in result.reason


# -- pinned: datetime witness fidelity ---------------------------------------


class TestDatetimeWitnesses:
    def test_time_granular_witness_replays_with_time_component(self):
        # A date-granular witness (midnight) would wrongly satisfy the
        # conclusion here; only a row *inside* the morning window refutes.
        day = datetime.datetime(2007, 2, 12)
        premise = And(
            Comparison(">=", Col("ts"), Lit(day.replace(hour=8, minute=30))),
            Comparison("<=", Col("ts"), Lit(day.replace(hour=12))),
        )
        conclusion = Comparison(">=", Col("ts"), Lit(day.replace(hour=10)))
        result = implication_counterexample(premise, conclusion)
        assert result.status is Sat.SAT
        witness = result.witness["ts"]
        assert isinstance(witness, datetime.datetime)
        assert day.replace(hour=8, minute=30) <= witness < day.replace(hour=10)
        outcome = replay_escape(
            Catalog(),
            "wide",
            {"ts": witness},
            Query.from_("wide").filter(premise),
            [],
            conclusion,
        )
        assert outcome.confirmed
        assert outcome.delivered_rows == 1


# -- functional dependencies: crosslevel integration -------------------------

_HIV_DRUGS = ("lamivudine", "zidovudine")


def _crosslevel_fds() -> tuple[FunctionalDependency, ...]:
    mapping = tuple((d, "HIV") for d in _HIV_DRUGS) + (
        ("aspirin", "flu"),
        ("metformin", "diabetes"),
    )
    return (
        FunctionalDependency(
            name="dim_drug.drug->disease",
            determinant="drug",
            dependent="disease",
            mapping=mapping,
            source="dimension drug",
        ),
    )


def _fd_input(*, with_fds: bool = True) -> VerificationInput:
    """One meta-report that bans HIV *drugs*; the policy bans the disease."""
    cat = Catalog()
    schema = make_schema(
        ("drug", STRING, True), ("disease", STRING, True), ("cost", INT, True)
    )
    cat.add_table(Table.from_rows("universe", schema, [], provider="warehouse"))
    region = And(
        Comparison(">", Col("cost"), Lit(60)),
        Not(InList(Col("drug"), _HIV_DRUGS)),
    )
    query = Query.from_("universe").filter(region).project(
        "drug", "disease", "cost"
    )
    mr = MetaReport("mr_fd", query)
    pla = PLA(
        "pla_mr_fd",
        "owner",
        PlaLevel.METAREPORT,
        "mr_fd",
        (
            IntensionalCondition(
                "cost", Comparison(">", Col("cost"), Lit(0)), "suppress_row"
            ),
        ),
        status=PlaStatus.APPROVED,
    )
    mr.attach_pla(pla)
    metareports = MetaReportSet()
    metareports.add(mr)
    metareports.register_views(cat)
    report = ReportDefinition(
        "r_fd",
        "FD report",
        Query.from_("mr_fd")
        .filter(Comparison(">", Col("cost"), Lit(70)))
        .project("drug", "cost"),
        frozenset({"analyst"}),
        "care",
    )
    return VerificationInput(
        catalog=cat,
        metareports=metareports,
        reports=(report,),
        universe="universe",
        universe_columns=("drug", "disease", "cost"),
        source_policies=(
            SourcePolicy(
                "hiv-stays-home",
                "universe",
                Not(Comparison("=", Col("disease"), Lit("HIV"))),
            ),
        ),
        fds=_crosslevel_fds() if with_fds else (),
    )


class TestFdConditionedVerification:
    def test_fd_dependent_claim_proves_with_assume_provenance(self):
        # The region constrains only the drug; Not(disease = 'HIV') is
        # provable solely because the drug determines the disease. The
        # FD-free first pass refutes with an impossible row, and the FD
        # retry both proves the claim and records what it assumed.
        report = DeploymentVerifier(_fd_input()).verify()
        assert report.all_proved and report.unknown == ()
        checks = [
            r for r in report.by_code("VER002") if "hiv-stays-home" in r.claim
        ]
        assert len(checks) == 1
        trace = checks[0].trace
        assert trace is not None
        assumes = [s for s in trace.steps if s.startswith("ASSUME(")]
        assert len(assumes) == 1
        assert "drug -> disease" in assumes[0]
        assert "dimension drug" in assumes[0]

    def test_without_fds_the_same_claim_refutes_with_replay(self):
        report = DeploymentVerifier(_fd_input(with_fds=False)).verify()
        checks = [
            r for r in report.by_code("VER002") if "hiv-stays-home" in r.claim
        ]
        assert len(checks) == 1
        assert checks[0].verdict is Verdict.REFUTED
        ce = checks[0].counterexample
        assert ce is not None and ce.replay.confirmed
        # No static/runtime drift either way.
        assert report.by_code("VER006") == ()

    def test_replay_rejects_fd_violating_witness(self):
        (fd,) = _crosslevel_fds()
        row = {"drug": "aspirin", "disease": "HIV", "cost": 99}
        outcome = replay_escape(
            Catalog(),
            "universe",
            row,
            Query.from_("universe").filter(
                Comparison(">", Col("cost"), Lit(0))
            ),
            [],
            Not(Comparison("=", Col("disease"), Lit("HIV"))),
            fds=(fd,),
        )
        assert not outcome.confirmed
        assert "violates declared functional dependency" in outcome.detail
        assert "drug -> disease" in outcome.detail


class TestFdsFromStar:
    def _star(self, rows, *, levels=("drug", "disease")):
        table = Table.from_rows(
            "dim_drug",
            make_schema(
                ("drug_id", INT, False),
                ("drug", STRING, True),
                ("disease", STRING, True),
            ),
            rows,
        )
        dim = Dimension("drug", "drug_id", table, levels)
        fact = Table.from_rows(
            "fact", make_schema(("drug_id", INT, False), ("cost", INT, True)), []
        )
        return StarSchema("star", fact, [dim])

    def test_functional_level_pair_is_derived(self):
        star = self._star(
            [(1, "aspirin", "flu"), (2, "metformin", "diabetes"),
             (3, "lamivudine", "HIV")]
        )
        fds = fds_from_star(star)
        assert len(fds) == 1
        fd = fds[0]
        assert fd.determinant == "drug" and fd.dependent == "disease"
        assert fd.source == "dimension drug"
        assert dict(fd.mapping) == {
            "aspirin": "flu", "metformin": "diabetes", "lamivudine": "HIV"
        }
        assert fd.holds({"drug": "aspirin", "disease": "flu"})
        assert not fd.holds({"drug": "aspirin", "disease": "HIV"})

    def test_non_functional_data_yields_no_fd(self):
        star = self._star(
            [(1, "aspirin", "flu"), (2, "aspirin", "asthma")]
        )
        assert fds_from_star(star) == ()

    def test_oversized_mappings_are_skipped(self):
        rows = [(i, f"drug_{i}", f"disease_{i}") for i in range(5)]
        assert fds_from_star(self._star(rows), max_pairs=4) == ()
        assert len(fds_from_star(self._star(rows), max_pairs=5)) == 1

    def test_single_level_dimension_yields_no_fd(self):
        star = self._star([(1, "aspirin", "flu")], levels=("drug",))
        assert fds_from_star(star) == ()

    def test_seed_scenario_fds_flow_into_verification_input(self):
        from repro.simulation import ScenarioConfig, build_scenario

        scenario = build_scenario(ScenarioConfig(n_reports=3))
        target = VerificationInput.from_scenario(scenario)
        assert target.fds == fds_from_star(scenario.star)


class TestFdIncrementalInvalidation:
    def test_incremental_matches_full_with_fds(self):
        target = _fd_input()
        warm = IncrementalVerifier(target).verify()
        full = DeploymentVerifier(target).verify()
        assert [
            (r.code, r.location, r.verdict) for r in warm.results
        ] == [(r.code, r.location, r.verdict) for r in full.results]

    def test_changed_fd_mapping_invalidates_every_unit(self):
        verifier = IncrementalVerifier(_fd_input())
        verifier.verify()
        cache = verifier.cache

        cache.hits = cache.misses = 0
        IncrementalVerifier(_fd_input(), cache=cache).verify()
        assert cache.misses == 0 and cache.hits > 0  # unchanged: all reused

        changed = _fd_input()
        (fd,) = changed.fds
        changed.fds = (
            FunctionalDependency(
                name=fd.name,
                determinant=fd.determinant,
                dependent=fd.dependent,
                mapping=fd.mapping + (("ibuprofen", "flu"),),
                source=fd.source,
            ),
        )
        cache.hits = cache.misses = 0
        IncrementalVerifier(changed, cache=cache).verify()
        assert cache.hits == 0 and cache.misses > 0  # dimension drifted


# -- the analyzer inherits arithmetic depth ----------------------------------


class TestAnalysisInheritsArithmetic:
    def test_pla004_fires_on_arithmetic_contradiction(self):
        from repro.analysis import AnalysisInput, Severity, StaticAnalyzer

        cat = Catalog()
        cat.add_table(
            Table.from_rows(
                "dwh",
                make_schema(("drug", STRING, True), ("cost", INT, True)),
                [("aspirin", 10)],
                provider="bi",
            )
        )
        dead = And(
            Comparison(">", Arith("*", Col("cost"), Lit(1.2)), Lit(100)),
            Comparison("<", Arith("*", Col("cost"), Lit(1.2)), Lit(50)),
        )
        mr = MetaReport("mr", Query.from_("dwh").project("drug", "cost"))
        pla = PLA(
            "pla_mr",
            "healthcare",
            PlaLevel.METAREPORT,
            "mr",
            (IntensionalCondition("cost", dead, "suppress_row"),),
        ).approved()
        mr.attach_pla(pla)
        metareports = MetaReportSet()
        metareports.add(mr)
        metareports.register_views(cat)
        report = StaticAnalyzer(
            AnalysisInput(catalog=cat, metareports=metareports)
        ).analyze()
        found = [
            d for d in report.by_code("PLA004")
            if "unsatisfiable" in d.message
        ]
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_dataflow_prunes_arithmetic_dead_branch(self):
        from repro.analysis.dataflow import live_predicate_columns

        predicate = And(
            Comparison(">", Arith("*", Col("cost"), Lit(2)), Lit(100)),
            Or(
                And(
                    Comparison("=", Col("zip"), Lit("38100")),
                    Comparison("<", Col("cost"), Lit(10)),
                ),
                Comparison("=", Col("gender"), Lit("f")),
            ),
        )
        live = live_predicate_columns(predicate)
        # The zip branch needs cost < 10, disjoint from 2·cost > 100 —
        # provable only with the arithmetic atom solved exactly.
        assert "zip" not in live
        assert {"cost", "gender"} <= live


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
