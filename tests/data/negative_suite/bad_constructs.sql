-- Unsupported construct: correlated EXISTS is outside the ingestion grammar.
-- report: exists_probe
SELECT drug FROM wide_prescriptions
WHERE EXISTS (SELECT drug FROM wide_prescriptions);

-- Parse error: dangling WHERE.
-- report: broken
SELECT drug FROM wide_prescriptions WHERE;
