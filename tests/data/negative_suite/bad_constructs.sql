-- Unsupported construct: correlated EXISTS is outside the ingestion grammar.
-- report: exists_probe
SELECT drug FROM wide_prescriptions
WHERE EXISTS (SELECT drug FROM wide_prescriptions);

-- Parse error: dangling WHERE.
-- report: broken
SELECT drug FROM wide_prescriptions WHERE;

-- Unmodeled analytic construct: window functions are recognized but not
-- modeled by static lineage; they must fail closed as ING010, not crash.
-- report: windowed
SELECT drug, row_number() OVER (ORDER BY cost) AS rn FROM wide_prescriptions;
