-- Unknown relation: nothing defines 'prescriptions_2006'.
-- report: from_nowhere
SELECT drug FROM prescriptions_2006;

-- Unknown column: the universe has no 'prescriber'.
-- report: bad_column
SELECT prescriber FROM wide_prescriptions;

-- Ambiguous column: both sides of the join provide 'zip'.
-- report: ambiguous_zip
SELECT zip FROM wide_prescriptions JOIN dim_patient ON patient = patient;
