-- Duplicate name: the second definition collides with the first.
CREATE VIEW dup_view AS SELECT drug FROM wide_prescriptions;
CREATE VIEW dup_view AS SELECT disease FROM wide_prescriptions;

-- UNION arity mismatch: 2 columns vs 1.
-- report: ragged_union
SELECT drug, cost FROM wide_prescriptions
UNION
SELECT drug FROM wide_prescriptions;
