"""Tests for CSV I/O, report rendering, and PLA gap analysis."""

import datetime
import io

import pytest

from repro.errors import SchemaError
from repro.core import (
    PLA,
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    analyze_coverage,
)
from repro.relational import (
    ColumnType,
    Query,
    Table,
    dumps_csv,
    loads_csv,
    make_schema,
    parse_expression,
    read_csv,
    write_csv,
)
from repro.reports.rendering import render_text


class TestCsvRoundtrip:
    def test_typed_header_roundtrip(self, prescriptions):
        text = dumps_csv(prescriptions)
        back = loads_csv(text, name="prescriptions", provider="hospital")
        assert back.schema.names == prescriptions.schema.names
        assert [c.ctype for c in back.schema] == [
            c.ctype for c in prescriptions.schema
        ]
        assert back.rows == prescriptions.rows

    def test_nullability_preserved(self, prescriptions):
        text = dumps_csv(prescriptions)
        back = loads_csv(text, name="p")
        assert back.schema.column("patient").nullable is False
        assert back.schema.column("doctor").nullable is True

    def test_null_cells_roundtrip(self, prescriptions):
        back = loads_csv(dumps_csv(prescriptions), name="p")
        assert back.rows[1][1] is None  # Chris's missing doctor

    def test_type_inference_without_typed_header(self):
        text = (
            "name,age,score,member,joined\n"
            "Ada,30,1.5,true,2007-02-12\n"
            "Bo,,2.0,false,2008-01-01\n"
        )
        table = loads_csv(text, name="t")
        types = [c.ctype for c in table.schema]
        assert types == [
            ColumnType.STRING,
            ColumnType.INT,
            ColumnType.FLOAT,
            ColumnType.BOOL,
            ColumnType.DATE,
        ]
        assert table.rows[0][4] == datetime.date(2007, 2, 12)
        assert table.rows[1][1] is None

    def test_explicit_schema_wins(self):
        schema = make_schema(("a", ColumnType.STRING))
        table = loads_csv("a\n5\n", name="t", schema=schema)
        assert table.rows == [("5",)]

    def test_file_roundtrip(self, tmp_path, prescriptions):
        path = tmp_path / "presc.csv"
        write_csv(prescriptions, path)
        back = read_csv(path, name="prescriptions")
        assert back.rows == prescriptions.rows

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            loads_csv("", name="t")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            loads_csv("a:int,b:int\n1\n", name="t")

    def test_untyped_header_flag(self, prescriptions):
        text = dumps_csv(prescriptions, typed_header=False)
        assert text.splitlines()[0] == "patient,doctor,drug,disease,date"

    def test_fresh_row_ids(self, prescriptions):
        back = loads_csv(dumps_csv(prescriptions), name="p", provider="copy")
        assert all(r.provider == "copy" for r in back.all_lineage())


class TestRendering:
    def test_render_contains_everything(self, paper_catalog):
        from repro.policy import SubjectRegistry
        from repro.relational import parse_query
        from repro.reports import ReportDefinition, ReportEngine

        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("analyst")
        subjects.add_user("ann", "analyst")
        engine = ReportEngine(paper_catalog)
        engine.add_row_filter(lambda d, row, contributors: contributors >= 2)
        definition = ReportDefinition(
            "drug_consumption", "Drug consumption",
            parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"),
            frozenset({"analyst"}), "care",
        )
        instance = engine.generate(definition, subjects.context("ann", "care"))
        text = render_text(instance)
        assert "Drug consumption" in text
        assert "delivered to: ann" in text
        assert "suppressed by privacy enforcement" in text
        assert "1 row(s)" in text


def _approved_set(annotations: tuple[Annotation, ...], columns=("patient", "drug", "cost")):
    mrs = MetaReportSet()
    mr = MetaReport("mr", Query.from_("wide").project(*columns))
    registry = PlaRegistry()
    pla = PLA("p", "hospital", PlaLevel.METAREPORT, "mr", annotations)
    registry.add(pla)
    mr.attach_pla(registry.approve("p"))
    mrs.add(mr)
    return mrs


class TestGapAnalysis:
    def test_exact_coverage(self):
        mrs = _approved_set((AggregationThreshold(5),))
        report = analyze_coverage(mrs, [AggregationThreshold(5)])
        assert report.complete and report.coverage == 1.0

    def test_stricter_covers_looser_threshold(self):
        mrs = _approved_set((AggregationThreshold(10),))
        assert analyze_coverage(mrs, [AggregationThreshold(5)]).complete
        assert not analyze_coverage(
            _approved_set((AggregationThreshold(3),)), [AggregationThreshold(5)]
        ).complete

    def test_attribute_access_subset_covers(self):
        agreed = AttributeAccess("patient", frozenset({"director"}))
        mrs = _approved_set((agreed,))
        loose = AttributeAccess("patient", frozenset({"director", "analyst"}))
        assert analyze_coverage(mrs, [loose]).complete
        strict = AttributeAccess("patient", frozenset())
        assert not analyze_coverage(mrs, [strict]).complete

    def test_unexposed_attribute_vacuously_covered(self):
        mrs = _approved_set((AggregationThreshold(5),), columns=("drug", "cost"))
        requirement = AttributeAccess("patient", frozenset({"director"}))
        assert analyze_coverage(mrs, [requirement]).complete

    def test_suppress_covers_any_anonymization(self):
        mrs = _approved_set(
            (AnonymizationRequirement("patient", "suppress"),)
        )
        assert analyze_coverage(
            mrs, [AnonymizationRequirement("patient", "pseudonymize")]
        ).complete

    def test_generalization_level_ordering(self):
        mrs = _approved_set(
            (AnonymizationRequirement("patient", "generalize", 2),)
        )
        assert analyze_coverage(
            mrs, [AnonymizationRequirement("patient", "generalize", 1)]
        ).complete
        assert not analyze_coverage(
            mrs, [AnonymizationRequirement("patient", "generalize", 3)]
        ).complete

    def test_join_and_integration(self):
        mrs = _approved_set(
            (
                JoinPermission("a/x", "b/y", False),
                IntegrationPermission("muni", False),
            )
        )
        report = analyze_coverage(
            mrs,
            [
                JoinPermission("a/x", "b/y", False),
                JoinPermission("b/y", "a/x", False),  # order-insensitive
                JoinPermission("a/x", "c/z", True),  # permissions auto-covered
                IntegrationPermission("muni", False),
                IntegrationPermission("lab", False),  # gap
            ],
        )
        assert report.covered == 4
        assert len(report.gaps) == 1 and report.gaps[0].kind == "integration_permission"

    def test_intensional_condition_matching(self):
        condition = parse_expression("disease != 'HIV'")
        mrs = _approved_set(
            (IntensionalCondition("patient", condition, "suppress_row"),)
        )
        assert analyze_coverage(
            mrs, [IntensionalCondition("patient", condition, "suppress_cell")]
        ).complete  # suppress_row is stricter
        other = parse_expression("disease != 'cancer'")
        report = analyze_coverage(
            mrs, [IntensionalCondition("patient", other, "suppress_row")]
        )
        assert not report.complete
        assert "no approved annotation" in str(report.gaps[0])

    def test_summary_format(self):
        mrs = _approved_set((AggregationThreshold(5),))
        report = analyze_coverage(mrs, [AggregationThreshold(99)])
        assert "0/1" in report.summary() or "0%" in report.summary()
