"""Property and unit tests for the three-valued predicate solver.

The solver's whole value is that its verdicts are *proofs*, so the tests
are differential: every SAT witness must actually evaluate to ``True``,
every UNSAT claim must survive brute-force enumeration over an independent
finite domain seeded with the same constants (including NULL, the 3VL edge
that breaks classical reasoning), and every synthesized implication
counterexample must reproduce when replayed through the real runtime
engine. The hypothesis properties run 200+ random predicate trees each.
"""

from __future__ import annotations

import itertools

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    And,
    Col,
    Comparison,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.relational.query import Query
from repro.verify import (
    Sat,
    implication_counterexample,
    falsifiable,
    overlap,
    replay_escape,
    satisfiable,
    truth,
)

OPS = ("<", "<=", ">", ">=", "=", "!=")

#: Constants the strategies draw from — and the brute-force grid extends.
INT_CONSTS = (-2, 0, 1, 3)
STR_CONSTS = ("p", "q", "r")

#: Independent brute-force domains: every strategy constant, the integers
#: between/around them, and NULL. Adequate for the generated predicates
#: because every atom compares a column against these constants (or
#: another column over the same grid).
INT_DOMAIN = (-3, -2, -1, 0, 1, 2, 3, 4, None)
STR_DOMAIN = ("", "p", "q", "r", "s", None)

COLUMNS = ("a", "b", "c")  # a, c: int; b: string


def all_rows():
    for a, b, c in itertools.product(INT_DOMAIN, STR_DOMAIN, INT_DOMAIN):
        yield {"a": a, "b": b, "c": c}


def complete(witness):
    """Pad a solver witness to a full row (unconstrained columns stay NULL)."""
    row = {name: None for name in COLUMNS}
    row.update(witness)
    return row


@st.composite
def atoms(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return Comparison(
            draw(st.sampled_from(OPS)),
            Col(draw(st.sampled_from(("a", "c")))),
            Lit(draw(st.sampled_from(INT_CONSTS))),
        )
    if kind == 1:
        return Comparison(
            draw(st.sampled_from(("=", "!="))),
            Col("b"),
            Lit(draw(st.sampled_from(STR_CONSTS))),
        )
    if kind == 2:
        values = draw(
            st.lists(st.sampled_from(STR_CONSTS), min_size=1, max_size=3,
                     unique=True)
        )
        return InList(Col("b"), tuple(values))
    if kind == 3:
        return IsNull(
            Col(draw(st.sampled_from(COLUMNS))), negated=draw(st.booleans())
        )
    return Comparison(draw(st.sampled_from(OPS)), Col("a"), Col("c"))


predicates = st.recursive(
    atoms(),
    lambda kids: st.one_of(
        st.builds(And, kids, kids),
        st.builds(Or, kids, kids),
        st.builds(Not, kids),
    ),
    max_leaves=6,
)


# -- agreement with brute force ---------------------------------------------


@given(predicate=predicates)
@settings(max_examples=250, deadline=None)
def test_satisfiable_agrees_with_brute_force(predicate):
    result = satisfiable(predicate)
    if result.status is Sat.SAT:
        assert truth(predicate.evaluate(complete(result.witness))) is True
    elif result.status is Sat.UNSAT:
        for row in all_rows():
            assert truth(predicate.evaluate(row)) is not True, (
                f"solver said UNSAT but {row} satisfies {predicate}"
            )
    # UNKNOWN makes no claim — nothing to check.


@given(premise=predicates, conclusion=predicates)
@settings(max_examples=250, deadline=None)
def test_implication_agrees_with_brute_force(premise, conclusion):
    result = implication_counterexample(premise, conclusion)
    if result.status is Sat.SAT:
        row = complete(result.witness)
        assert truth(premise.evaluate(row)) is True
        assert truth(conclusion.evaluate(row)) is not True
    elif result.status is Sat.UNSAT:
        for row in all_rows():
            if truth(premise.evaluate(row)) is True:
                assert truth(conclusion.evaluate(row)) is True, (
                    f"solver proved {premise} ⇒ {conclusion} but {row} "
                    "is a counterexample"
                )


@given(predicate=predicates)
@settings(max_examples=200, deadline=None)
def test_falsifiable_agrees_with_brute_force(predicate):
    result = falsifiable(predicate)
    if result.status is Sat.SAT:
        assert truth(predicate.evaluate(complete(result.witness))) is not True
    elif result.status is Sat.UNSAT:  # proved tautology (3VL: True everywhere)
        for row in all_rows():
            assert truth(predicate.evaluate(row)) is True


@given(p=predicates, q=predicates)
@settings(max_examples=200, deadline=None)
def test_overlap_agrees_with_brute_force(p, q):
    result = overlap(p, q)
    if result.status is Sat.SAT:
        row = complete(result.witness)
        assert truth(p.evaluate(row)) is True
        assert truth(q.evaluate(row)) is True
    elif result.status is Sat.UNSAT:  # proved disjoint
        for row in all_rows():
            assert not (
                truth(p.evaluate(row)) is True and truth(q.evaluate(row)) is True
            )


# -- counterexamples must reproduce at runtime -------------------------------


@given(premise=predicates, conclusion=predicates)
@settings(max_examples=100, deadline=None)
def test_counterexamples_reproduce_through_the_engine(premise, conclusion):
    """Every synthesized counterexample violates at runtime when replayed."""
    result = implication_counterexample(premise, conclusion)
    assume(result.status is Sat.SAT)
    row = complete(result.witness)
    outcome = replay_escape(
        Catalog(), "wide", row, Query.from_("wide").filter(premise), [],
        conclusion,
    )
    assert outcome.confirmed, (
        f"counterexample {row} for {premise} ⇒ {conclusion} did not "
        f"reproduce: {outcome.describe()}"
    )
    assert outcome.delivered_rows == 1


# -- three-valued logic edge cases -------------------------------------------


class TestThreeValuedEdges:
    def test_null_breaks_classical_tautology(self):
        # x = 1 OR NOT(x = 1) is NOT a 3VL tautology: NULL makes it UNKNOWN.
        pred = Or(
            Comparison("=", Col("a"), Lit(1)),
            Not(Comparison("=", Col("a"), Lit(1))),
        )
        result = falsifiable(pred)
        assert result.status is Sat.SAT
        assert result.witness["a"] is None

    def test_null_safe_tautology_is_proved(self):
        pred = Or(IsNull(Col("a")), IsNull(Col("a"), negated=True))
        assert falsifiable(pred).status is Sat.UNSAT

    def test_self_equality_is_falsifiable_by_null(self):
        result = falsifiable(Comparison("=", Col("a"), Col("a")))
        assert result.status is Sat.SAT
        assert result.witness["a"] is None

    def test_negated_equality_forms_agree(self):
        # disease != 'HIV' and NOT(disease = 'HIV') are 3VL-equivalent:
        # both are UNKNOWN on NULL.
        ne = Comparison("!=", Col("b"), Lit("p"))
        not_eq = Not(Comparison("=", Col("b"), Lit("p")))
        assert implication_counterexample(ne, not_eq).status is Sat.UNSAT
        assert implication_counterexample(not_eq, ne).status is Sat.UNSAT

    def test_integer_gap_is_unsatisfiable(self):
        # int-only constants ⇒ integer domain: no value strictly between 5, 6.
        pred = And(
            Comparison(">", Col("a"), Lit(5)), Comparison("<", Col("a"), Lit(6))
        )
        assert satisfiable(pred).status is Sat.UNSAT

    def test_float_gap_is_satisfiable(self):
        pred = And(
            Comparison(">", Col("a"), Lit(5.0)),
            Comparison("<", Col("a"), Lit(6.0)),
        )
        result = satisfiable(pred)
        assert result.status is Sat.SAT
        assert 5.0 < result.witness["a"] < 6.0

    def test_contradictory_range_is_unsatisfiable(self):
        pred = And(
            Comparison(">", Col("a"), Lit(100)),
            Comparison("<", Col("a"), Lit(10)),
        )
        result = satisfiable(pred)
        assert result.status is Sat.UNSAT

    def test_in_list_with_negation(self):
        pred = And(
            InList(Col("b"), ("p", "q")), Not(InList(Col("b"), ("p",)))
        )
        result = satisfiable(pred)
        assert result.status is Sat.SAT
        assert result.witness["b"] == "q"

    def test_disjoint_ranges(self):
        assert overlap(
            Comparison("<", Col("a"), Lit(5)),
            Comparison(">", Col("a"), Lit(10)),
        ).status is Sat.UNSAT

    def test_none_predicate_conventions(self):
        # None = unrestricted: trivially satisfiable, implies nothing new.
        assert satisfiable(None).status is Sat.SAT
        assert implication_counterexample(
            Comparison(">", Col("a"), Lit(0)), None
        ).status is Sat.UNSAT
        assert falsifiable(None).status is Sat.UNSAT
