"""Cache-semantics tests for the columnar execution stack.

Three caches ride on version-stamped keys, and each must be *semantically
invisible*: a warm hit returns exactly what a cold run would compute, and
any mutation that could change the answer — catalog DDL, base-table data,
PLA revision/approval, report redefinition, meta-report extension — must
yield a fresh computation, never a stale verdict.

* plan cache (``repro.relational.plancache``): query-fingerprint ×
  catalog-state keyed result snapshots;
* containment proof caches (``repro.core.containment``): derivability and
  homomorphism proofs, pure in the catalog's *definitions*;
* compliance verdict cache (``repro.core.compliance``): memoized
  :class:`ComplianceVerdict`, keyed by report/metaset fingerprints.
"""

from __future__ import annotations

import pytest

from repro.core import (
    PLA,
    AggregationThreshold,
    ComplianceChecker,
    MetaReport,
    MetaReportSet,
    NotConjunctive,
    PlaLevel,
    check_derivability,
    clear_proof_caches,
    is_contained,
    proof_cache_stats,
    set_proof_caching,
)
from repro.relational import (
    Catalog,
    ExecutionConfig,
    PlanCache,
    Query,
    Table,
    View,
    execute,
    execute_row,
    get_default_config,
    make_schema,
    parse_query,
    set_default_config,
)
from repro.relational.types import ColumnType
from repro.reports import ReportDefinition


def patient_catalog() -> Catalog:
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("region", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "north", "flu", 10),
        ("Bob", "south", "flu", 20),
        ("Cara", "north", "asthma", 30),
        ("Dan", "south", "asthma", 40),
    ]
    cat.add_table(Table.from_rows("visits", schema, rows, provider="hosp"))
    return cat


@pytest.fixture(autouse=True)
def _fresh_proof_caches():
    clear_proof_caches()
    yield
    clear_proof_caches()


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def make_cfg(self) -> tuple[PlanCache, ExecutionConfig]:
        cache = PlanCache()
        return cache, ExecutionConfig(mode="columnar", plan_cache=cache)

    def test_warm_hit_equals_cold_result(self):
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        q = parse_query("SELECT region, cost FROM visits WHERE cost > 15")
        cold = execute(q, cat, config=cfg)
        warm = execute(q, cat, config=cfg)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert list(warm.rows) == list(cold.rows)
        assert list(warm.provenance) == list(cold.provenance)
        assert warm.schema == cold.schema
        ref = execute_row(q, cat)
        assert list(warm.rows) == list(ref.rows)
        assert list(warm.provenance) == list(ref.provenance)

    def test_hit_returns_fresh_table_object(self):
        """Snapshots must be rebuilt per hit so callers can't corrupt the
        cache by mutating (e.g. renaming) the returned table."""
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        q = parse_query("SELECT region FROM visits")
        first = execute(q, cat, config=cfg, name="one")
        second = execute(q, cat, config=cfg, name="two")
        assert first is not second
        assert first.name == "one" and second.name == "two"

    def test_commuted_conjuncts_share_one_entry(self):
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        a = parse_query("SELECT region FROM visits WHERE cost > 15 AND cost < 35")
        b = parse_query("SELECT region FROM visits WHERE cost < 35 AND cost > 15")
        execute(a, cat, config=cfg)
        out = execute(b, cat, config=cfg)
        assert cache.stats.hits == 1 and len(cache) == 1
        assert list(out.rows) == list(execute_row(b, cat).rows)

    def test_data_mutation_misses(self):
        """Inserting rows bumps data_version: the old snapshot must not be
        served for the new data."""
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        q = parse_query("SELECT region FROM visits WHERE cost > 15")
        before = execute(q, cat, config=cfg)
        cat.table("visits").insert(("Eve", "north", "flu", 99))
        after = execute(q, cat, config=cfg)
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert len(after) == len(before) + 1
        assert list(after.rows) == list(execute_row(q, cat).rows)

    def test_catalog_ddl_evicts_eagerly(self):
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        q = parse_query("SELECT region FROM visits")
        execute(q, cat, config=cfg)
        assert len(cache) == 1
        cat.add_view(View("extra", parse_query("SELECT region FROM visits")))
        assert len(cache) == 0  # mutation hook reclaimed the entry

    def test_redefined_view_is_recomputed(self):
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        cat.add_view(View("v", parse_query("SELECT region FROM visits WHERE cost > 15")))
        q = parse_query("SELECT region FROM v")
        assert len(execute(q, cat, config=cfg)) == 3
        cat.add_view(
            View("v", parse_query("SELECT region FROM visits WHERE cost > 35")),
            replace=True,
        )
        assert len(execute(q, cat, config=cfg)) == 1  # not the stale 3-row answer

    def test_dead_catalogs_never_alias_live_ones(self):
        # state_token identity must be process-unique, not id()-based:
        # CPython recycles addresses, so a catalog built after another died
        # could otherwise collide with the dead one's cache entries (same
        # address, same ddl_version, same table versions — different views).
        q = parse_query("SELECT region FROM visits")
        tokens = set()
        for _ in range(50):
            cat = patient_catalog()
            tokens.add(cat.state_token(q)[0])
            del cat
        assert len(tokens) == 50

    def test_same_shape_catalogs_do_not_share_entries(self):
        cache, cfg = self.make_cfg()
        cat1 = patient_catalog()
        cat1.add_view(View("v", parse_query("SELECT region FROM visits")))
        narrow = execute(parse_query("SELECT * FROM v"), cat1, config=cfg)
        del cat1
        cat2 = patient_catalog()
        cat2.add_view(View("v", parse_query("SELECT * FROM visits")))
        wide = execute(parse_query("SELECT * FROM v"), cat2, config=cfg)
        assert list(narrow.schema.names) == ["region"]
        assert list(wide.schema.names) == ["patient", "region", "disease", "cost"]
        assert cache.stats.hits == 0

    def test_unknown_relation_bypasses_cache(self):
        cat = patient_catalog()
        cache, cfg = self.make_cfg()
        cat.add_view(View("v", parse_query("SELECT region FROM ghost")))
        with pytest.raises(Exception) as exc_info:
            execute(parse_query("SELECT region FROM v"), cat, config=cfg)
        ref_exc = None
        try:
            execute_row(parse_query("SELECT region FROM v"), cat)
        except Exception as exc:  # noqa: BLE001
            ref_exc = exc
        assert type(exc_info.value) is type(ref_exc)
        assert len(cache) == 0

    def test_row_mode_never_uses_plan_cache(self):
        cache = PlanCache()
        cfg = ExecutionConfig(mode="row", plan_cache=cache)
        assert cfg.effective_plan_cache() is None
        cat = patient_catalog()
        execute(parse_query("SELECT region FROM visits"), cat, config=cfg)
        assert cache.stats.lookups == 0

    def test_default_config_roundtrip(self):
        previous = set_default_config(ExecutionConfig(mode="row"))
        try:
            assert get_default_config().mode == "row"
        finally:
            set_default_config(previous)
        assert get_default_config() is previous


# ---------------------------------------------------------------------------
# Containment proof caches
# ---------------------------------------------------------------------------


class TestProofCaches:
    def test_warm_equals_cold_verdict(self):
        cat = patient_catalog()
        meta = Query.from_("visits").project("region", "disease", "cost")
        rq = parse_query("SELECT region, cost FROM visits WHERE cost > 15")
        cold = check_derivability(rq, "mr", meta, cat)
        stats0 = proof_cache_stats()["derivability"]
        warm = check_derivability(rq, "mr", meta, cat)
        stats1 = proof_cache_stats()["derivability"]
        assert warm == cold
        assert stats1["hits"] == stats0["hits"] + 1

    def test_is_contained_memoizes_and_agrees(self):
        cat = patient_catalog()
        q1 = parse_query("SELECT region FROM visits WHERE cost > 20")
        q2 = parse_query("SELECT region FROM visits WHERE cost > 10")
        cold = is_contained(q1, q2, cat)
        warm = is_contained(q1, q2, cat)
        assert cold is warm is True
        assert proof_cache_stats()["containment"]["hits"] >= 1

    def test_not_conjunctive_outcome_is_replayed(self):
        cat = patient_catalog()
        q_or = parse_query(
            "SELECT region FROM visits WHERE cost > 30 OR cost < 5"
        )
        q2 = parse_query("SELECT region FROM visits")
        with pytest.raises(NotConjunctive) as first:
            is_contained(q_or, q2, cat)
        with pytest.raises(NotConjunctive) as second:
            is_contained(q_or, q2, cat)
        assert str(first.value) == str(second.value)
        assert proof_cache_stats()["containment"]["hits"] >= 1

    def test_catalog_ddl_evicts_proofs(self):
        cat = patient_catalog()
        q1 = parse_query("SELECT region FROM visits WHERE cost > 20")
        q2 = parse_query("SELECT region FROM visits")
        is_contained(q1, q2, cat)
        before = proof_cache_stats()["containment"]["entries"]
        assert before >= 1
        cat.add_view(View("x", parse_query("SELECT region FROM visits")))
        assert proof_cache_stats()["containment"]["entries"] < before

    def test_caching_can_be_disabled(self):
        cat = patient_catalog()
        q1 = parse_query("SELECT region FROM visits WHERE cost > 20")
        q2 = parse_query("SELECT region FROM visits")
        previous = set_proof_caching(False)
        try:
            assert is_contained(q1, q2, cat) is True
            assert is_contained(q1, q2, cat) is True
            assert proof_cache_stats()["containment"]["entries"] == 0
        finally:
            set_proof_caching(previous)

    def test_fingerprint_is_memoized_and_stable(self):
        q = parse_query("SELECT region FROM visits WHERE cost > 15 AND cost < 35")
        assert q.fingerprint() is q.fingerprint()  # memoized object
        rebuilt = parse_query("SELECT region FROM visits WHERE cost < 35 AND cost > 15")
        assert rebuilt.fingerprint() == q.fingerprint()  # normalized conjuncts
        narrowed = q.filter(parse_query("SELECT 1 FROM visits WHERE cost > 20").where)
        assert narrowed.fingerprint() != q.fingerprint()


# ---------------------------------------------------------------------------
# Compliance verdict cache: no stale verdicts across PLA/report/DDL change
# ---------------------------------------------------------------------------


def _checker(cat: Catalog, *, approved: bool = True) -> tuple[ComplianceChecker, MetaReport]:
    meta = MetaReport(
        name="mr_visits",
        query=Query.from_("visits").project("region", "disease", "cost"),
    )
    pla = PLA(
        name="pla_visits",
        owner="hosp",
        level=PlaLevel.METAREPORT,
        target="mr_visits",
        annotations=(AggregationThreshold(min_group_size=2, scope="cost"),),
    )
    meta.attach_pla(pla.approved() if approved else pla)
    metaset = MetaReportSet()
    metaset.add(meta)
    metaset.register_views(cat)
    return ComplianceChecker(catalog=cat, metareports=metaset), meta


def _report(sql: str, version: int = 1) -> ReportDefinition:
    return ReportDefinition(
        name="r", title="r", query=parse_query(sql),
        audience=frozenset({"analyst"}), purpose="care", version=version,
    )


class TestVerdictCache:
    SQL = "SELECT region, SUM(cost) AS total FROM mr_visits GROUP BY region"

    def test_warm_verdict_identical_to_cold(self):
        checker, _ = _checker(patient_catalog())
        report = _report(self.SQL)
        cold = checker.check_report(report)
        warm = checker.check_report(report)
        assert warm == cold
        stats = checker.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        uncached = ComplianceChecker(
            catalog=checker.catalog, metareports=checker.metareports,
            use_cache=False,
        ).check_report(report)
        assert uncached.compliant == warm.compliant
        assert uncached.violations == warm.violations
        assert uncached.obligations == warm.obligations

    def test_pla_revision_invalidates_verdict(self):
        """Re-eliciting the PLA (new version/status) must change the verdict
        key: the old COMPLIANT answer may no longer hold."""
        cat = patient_catalog()
        checker, meta = _checker(cat)
        report = _report(self.SQL)
        assert checker.check_report(report).compliant
        # Revision tightens the threshold beyond satisfiability and is approved.
        revised = meta.pla.revised(
            (AggregationThreshold(min_group_size=1000, scope="cost"),)
        ).approved()
        meta.attach_pla(revised)
        fresh = checker.check_report(report)
        assert fresh.obligations != ()
        assert any("1000" in str(o) for o in fresh.obligations)
        assert checker.cache_stats()["misses"] == 2  # no stale replay

    def test_draft_pla_status_flip_invalidates(self):
        cat = patient_catalog()
        checker, meta = _checker(cat, approved=False)
        report = _report(self.SQL)
        first = checker.check_report(report)
        assert not first.compliant  # draft PLA ⇒ meta-report not approved
        meta.attach_pla(meta.pla.approved())
        second = checker.check_report(report)
        assert second.compliant

    def test_report_redefinition_invalidates(self):
        checker, _ = _checker(patient_catalog())
        report = _report(self.SQL)
        assert checker.check_report(report).compliant
        widened = report.with_query(parse_query("SELECT patient, cost FROM visits"))
        verdict = checker.check_report(widened)
        assert not verdict.compliant
        assert checker.cache_stats()["hits"] == 0

    def test_metareport_set_extension_invalidates(self):
        cat = patient_catalog()
        checker, _ = _checker(cat)
        bad = _report("SELECT patient FROM visits")
        assert not checker.check_report(bad).compliant
        wide = MetaReport(
            name="mr_all",
            query=Query.from_("visits").project("patient", "region", "disease", "cost"),
        )
        wide.attach_pla(
            PLA(
                name="pla_all", owner="hosp", level=PlaLevel.METAREPORT,
                target="mr_all",
                annotations=(AggregationThreshold(min_group_size=1),),
            ).approved()
        )
        checker.metareports.add(wide)
        checker.metareports.register_views(cat)
        verdict = checker.check_report(bad)
        assert verdict.compliant and verdict.covering_metareport == "mr_all"

    def test_catalog_ddl_invalidates_verdicts(self):
        cat = patient_catalog()
        checker, _ = _checker(cat)
        report = _report(self.SQL)
        checker.check_report(report)
        cat.add_view(View("unrelated", parse_query("SELECT region FROM visits")))
        checker.check_report(report)
        assert checker.cache_stats()["hits"] == 0

    def test_invalidate_cache_clears(self):
        checker, _ = _checker(patient_catalog())
        report = _report(self.SQL)
        checker.check_report(report)
        assert checker.invalidate_cache() == 1
        checker.check_report(report)
        assert checker.cache_stats()["misses"] == 2


# ---------------------------------------------------------------------------
# Invalidation-atomic fills (the stale-fill race)
# ---------------------------------------------------------------------------


class TestInvalidationAtomicFills:
    """A fill computed before an invalidation must never land after it."""

    def test_put_if_drops_fill_after_invalidation(self):
        from repro.cache import LRUCache

        cache = LRUCache(maxsize=8)
        token = cache.fill_token()
        cache.invalidate_where(lambda _k: True)  # writer wins the race
        assert cache.put_if("k", "stale", token) is False
        assert cache.get("k") is None
        assert cache.stats.dropped_fills == 1

    def test_put_if_lands_without_interleaved_invalidation(self):
        from repro.cache import LRUCache

        cache = LRUCache(maxsize=8)
        token = cache.fill_token()
        assert cache.put_if("k", "fresh", token) is True
        assert cache.get("k") == "fresh"
        assert cache.stats.dropped_fills == 0

    def test_get_or_compute_mid_compute_invalidation_not_resurrected(self):
        from repro.cache import LRUCache

        cache = LRUCache(maxsize=8)

        def compute():
            # An invalidation lands while the (slow) compute is running.
            cache.clear()
            return "computed-against-old-state"

        # Caller still gets its value, but the cache must not keep it.
        assert cache.get_or_compute("k", compute) == "computed-against-old-state"
        assert cache.get("k") is None
        assert cache.stats.dropped_fills == 1

    def test_plan_reservation_fill_dropped_by_concurrent_ddl(self):
        """A plan computed under pre-mutation state never fills post-mutation."""
        from repro.relational import execute_columnar

        cat = patient_catalog()
        cache = PlanCache()
        q = parse_query("SELECT region FROM visits WHERE cost > 15")

        reservation = cache.begin(q, cat, "columnar")
        assert reservation is not None
        result = execute_columnar(q, cat)
        # DDL lands between compute and commit (the old store() raced here).
        cat.add_view(View("late", parse_query("SELECT region FROM visits")))
        assert cache.commit(reservation, result) is False
        assert cache.stats.dropped_fills >= 1

        # The next lookup sees nothing stale and recomputes cleanly.
        fresh = cache.begin(q, cat, "columnar")
        assert fresh is not None
        assert cache.fetch(fresh) is None
        ok = cache.commit(fresh, execute_columnar(q, cat))
        assert ok is True
        cached = cache.fetch(fresh)
        assert cached is not None
        assert list(cached.rows) == list(result.rows)

    def test_plan_reservation_stress_under_concurrent_mutations(self):
        """Readers fill, a writer mutates: no reader ever observes a stale row."""
        import threading

        from repro.relational import execute_columnar

        cat = patient_catalog()
        cache = PlanCache()
        cfg = ExecutionConfig(mode="columnar", plan_cache=cache)
        q = parse_query("SELECT region, cost FROM visits WHERE cost >= 0")
        stop = threading.Event()
        errors: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                out = execute(q, cat, config=cfg)
                # Row multiset must match a bare (uncached) execution taken
                # *after*: the table only grows, so a stale cached answer
                # would be a strict subset missing the newest row forever.
                live = execute_columnar(q, cat)
                if len(out) > len(live):
                    errors.append(f"cached {len(out)} rows > live {len(live)}")
                    return

        def writer() -> None:
            visits = cat.table("visits")
            for i in range(40):
                visits.insert((f"P{i}", "north", "flu", 50 + i))

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        # And the cache converges: a final execution returns the full table.
        final = execute(q, cat, config=cfg)
        assert len(final) == len(execute_columnar(q, cat)) == 44
