"""Unit tests for lineage tracing, where-provenance, and provenance graphs."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance import (
    CellOrigin,
    DatasetNode,
    ProvenanceGraph,
    TransformNode,
    base_footprint,
    classify_cell,
    rows_influenced_by,
    trace_row,
    where_of_cell,
)
from repro.relational import execute, parse_query
from repro.relational.table import RowId


class TestLineageTrace:
    def test_trace_aggregate_row(self, paper_catalog):
        out = execute(
            parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"),
            paper_catalog,
        )
        dr_index = [i for i in range(len(out)) if out.rows[i][0] == "DR"][0]
        trace = trace_row(out, dr_index)
        assert trace.contributor_count == 2
        assert trace.relations() == (("hospital", "prescriptions"),)
        assert "2 row(s)" in trace.describe()

    def test_trace_join_row_spans_relations(self, paper_catalog):
        out = execute(
            parse_query(
                "SELECT patient, cost FROM prescriptions JOIN drugcost ON drug = drug"
            ),
            paper_catalog,
        )
        trace = trace_row(out, 0)
        assert ("hospital", "prescriptions") in trace.relations()
        assert ("health_agency", "drugcost") in trace.relations()

    def test_out_of_range_raises(self, prescriptions):
        with pytest.raises(ProvenanceError):
            trace_row(prescriptions, 99)

    def test_rows_influenced_by(self, paper_catalog):
        out = execute(
            parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"),
            paper_catalog,
        )
        alice_first = RowId("hospital", "prescriptions", 0)
        influenced = rows_influenced_by(out, alice_first)
        assert len(influenced) == 1
        assert out.rows[influenced[0]][0] == "DH"

    def test_base_footprint(self, paper_catalog):
        out = execute(
            parse_query(
                "SELECT patient, cost FROM prescriptions JOIN drugcost ON drug = drug"
            ),
            paper_catalog,
        )
        footprint = base_footprint(out)
        assert footprint[("hospital", "prescriptions")] == 5
        assert footprint[("health_agency", "drugcost")] == 4  # DD never matched


class TestWhereProvenance:
    def test_copied_cell(self, paper_catalog):
        out = execute(parse_query("SELECT patient FROM prescriptions"), paper_catalog)
        refs = where_of_cell(out, 0, "patient")
        assert len(refs) == 1
        cell = classify_cell(out, 0, "patient")
        assert cell.origin is CellOrigin.COPIED

    def test_aggregate_cell_is_opaque_or_derived(self, paper_catalog):
        out = execute(
            parse_query("SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"),
            paper_catalog,
        )
        cell = classify_cell(out, 0, "n")
        assert cell.origin is CellOrigin.OPAQUE  # COUNT(*) copies nothing

    def test_merged_cell_after_distinct(self, paper_catalog):
        out = execute(
            parse_query("SELECT DISTINCT patient FROM prescriptions"), paper_catalog
        )
        alice = [i for i in range(len(out)) if out.rows[i][0] == "Alice"][0]
        cell = classify_cell(out, alice, "patient")
        assert cell.origin is CellOrigin.MERGED
        assert len(cell.sources) == 2

    def test_unknown_row_raises(self, prescriptions):
        with pytest.raises(ProvenanceError):
            where_of_cell(prescriptions, 50, "patient")


class TestProvenanceGraph:
    def _graph(self):
        g = ProvenanceGraph()
        src = DatasetNode("prescriptions", "source", owner="hospital")
        stg = DatasetNode("stg_prescriptions", "staging", owner="hospital")
        rpt = DatasetNode("drug_report", "report")
        g.add_transform(TransformNode("extract", "extract"), [src], stg)
        g.add_transform(TransformNode("aggregate", "aggregate"), [stg], rpt)
        return g, src, rpt

    def test_upstream_downstream(self):
        g, src, rpt = self._graph()
        ups = g.upstream_datasets("drug_report")
        assert any(n.name == "prescriptions" for n in ups)
        downs = g.downstream_datasets("prescriptions")
        assert any(n.name == "drug_report" for n in downs)

    def test_transformations_between(self):
        g, _, _ = self._graph()
        transforms = g.transformations_between("prescriptions", "drug_report")
        assert [t.operation for t in transforms] == ["extract", "aggregate"]

    def test_explain_mentions_sources_and_ops(self):
        g, _, _ = self._graph()
        text = g.explain("drug_report")
        assert "source:prescriptions [hospital]" in text
        assert "aggregate" in text

    def test_owners_involved(self):
        g, _, _ = self._graph()
        assert g.owners_involved("drug_report") == frozenset({"hospital"})

    def test_cycle_rejected(self):
        g, src, rpt = self._graph()
        with pytest.raises(ProvenanceError):
            g.add_transform(TransformNode("loop", "copy"), [rpt], src)

    def test_empty_inputs_rejected(self):
        g = ProvenanceGraph()
        with pytest.raises(ProvenanceError):
            g.add_transform(TransformNode("x", "copy"), [], DatasetNode("d", "report"))

    def test_unknown_dataset_raises(self):
        g = ProvenanceGraph()
        with pytest.raises(ProvenanceError):
            g.dataset("nope")
