"""Tests for the SQL suite ingestion front-end (:mod:`repro.ingest`).

Unit coverage for the dialect normalizer, the statement grammar (CTE and
FROM-subquery hoisting, UNION with trailing ORDER/LIMIT), and the name
resolver; integration coverage for the compile driver over the shipped
example corpus and the negative-fixture suite; and two properties:

* **round-trip** — for any query in the renderable fragment,
  ``parse(render(q))`` has the same fingerprint as ``q``, so the catalog's
  SQL rendering of an ingested artifact is provably not a paraphrase;
* **differential** — static lineage computed at ingest time
  over-approximates runtime where-provenance on executed data, including
  across UNION branches.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, column_flows
from repro.errors import IngestError, ParseError
from repro.ingest import (
    DIALECTS,
    Scope,
    emit_deployment,
    ingest_suite,
    parse_suite_text,
    render_query,
    resolve_query,
)
from repro.ingest.dialects import get_dialect
from repro.ingest.parser import file_dialect, split_statements
from repro.relational import Catalog, execute
from repro.relational.algebra import AggSpec
from repro.relational.expressions import Col, Comparison, InList, IsNull, Lit
from repro.relational.query import Query
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType

ANSI = DIALECTS["ansi"]
POSTGRES = DIALECTS["postgres"]
TSQL = DIALECTS["tsql"]

INT = ColumnType.INT
STRING = ColumnType.STRING


def parse_all(text: str, dialect=ANSI):
    return parse_suite_text(text, dialect, mangle_prefix="tst")


def parse_query(text: str, dialect=ANSI) -> Query:
    (statement,) = parse_all(text, dialect)
    return statement.query


def small_catalog() -> Catalog:
    t = Table.from_rows(
        "t",
        make_schema(("k", INT), ("x", INT), ("s", STRING)),
        [(i % 4, (i * 7) % 11 - 5, f"s{i % 3}") for i in range(12)],
        provider="alpha",
    )
    u = Table.from_rows(
        "u",
        make_schema(("k", INT), ("z", INT)),
        [(i % 5, (i * 3) % 7 - 3) for i in range(8)],
        provider="beta",
    )
    catalog = Catalog()
    catalog.add_table(t)
    catalog.add_table(u)
    return catalog


CATALOG = small_catalog()


# -- dialects -----------------------------------------------------------------


class TestDialects:
    def test_tsql_top_becomes_trailing_limit(self):
        query = parse_query(
            "SELECT TOP 5 drug FROM rx ORDER BY drug;", dialect=TSQL
        )
        assert query.limit_n == 5
        assert query.order == (("drug", False),)

    def test_top_rewrite_is_noted(self):
        (statement,) = parse_all("SELECT TOP 3 a FROM rx;", dialect=TSQL)
        assert any(n.construct == "TOP n" for n in statement.notes)

    def test_postgres_cast_dropped_and_noted(self):
        (statement,) = parse_all(
            "SELECT cost FROM rx WHERE cost::numeric > 0;", dialect=POSTGRES
        )
        assert statement.query.where is not None
        assert any(n.construct == "::cast" for n in statement.notes)

    def test_quoted_identifiers_are_noted(self):
        (statement,) = parse_all('SELECT "cost" FROM rx;', dialect=POSTGRES)
        assert statement.query.select == ("cost",)
        assert any(n.construct == "quoted identifier" for n in statement.notes)

    def test_brackets_only_parse_under_tsql(self):
        assert parse_query("SELECT [a] FROM [rx];", dialect=TSQL).select == ("a",)
        with pytest.raises(ParseError):
            parse_all("SELECT [a] FROM rx;", dialect=ANSI)

    def test_ansi_top_is_not_rewritten(self):
        with pytest.raises(ParseError):
            parse_all("SELECT TOP 5 a FROM rx;", dialect=ANSI)

    def test_unknown_dialect_rejected(self):
        with pytest.raises(IngestError):
            get_dialect("oracle")

    def test_tsql_top_in_subquery_limits_the_subquery(self):
        # The inner TOP must become the *subquery's* LIMIT — splicing it at
        # the statement tail would silently limit the outer query instead.
        (statement,) = parse_all(
            "SELECT a FROM (SELECT TOP 5 a FROM rx ORDER BY a) sub;",
            dialect=TSQL,
        )
        assert statement.query.limit_n is None
        ((_, subquery),) = statement.synthetic_views
        assert subquery.limit_n == 5

    def test_tsql_top_in_outer_and_subquery_stay_separate(self):
        (statement,) = parse_all(
            "SELECT TOP 2 a FROM (SELECT TOP 5 a FROM rx ORDER BY a) sub "
            "ORDER BY a;",
            dialect=TSQL,
        )
        assert statement.query.limit_n == 2
        ((_, subquery),) = statement.synthetic_views
        assert subquery.limit_n == 5

    def test_tsql_nested_brackets_parse(self):
        query = parse_query(
            "SELECT [a] FROM (SELECT [a] FROM [rx] WHERE [a] > 0) [sub];",
            dialect=TSQL,
        )
        assert query.select == ("a",)

    def test_postgres_cast_inside_case_arm(self):
        (statement,) = parse_all(
            "SELECT CASE WHEN cost::numeric > 0 THEN cost::int ELSE 0 END "
            "AS c FROM rx;",
            dialect=POSTGRES,
        )
        assert sum(n.construct == "::cast" for n in statement.notes) == 2
        alias, expr = statement.query.select[0]
        assert alias == "c"
        assert expr.columns() == frozenset({"cost"})

    def test_postgres_cast_inside_aggregate_argument(self):
        (statement,) = parse_all(
            "SELECT avg(cost::numeric) AS a FROM rx;", dialect=POSTGRES
        )
        assert any(n.construct == "::cast" for n in statement.notes)
        (spec,) = statement.query.aggregates
        assert (spec.func, spec.column, spec.alias) == ("avg", "cost", "a")


# -- statement grammar --------------------------------------------------------


class TestSuiteParser:
    def test_create_view(self):
        (statement,) = parse_all("CREATE VIEW v AS SELECT a FROM rx;")
        assert (statement.kind, statement.name) == ("view", "v")
        assert statement.query.select == ("a",)

    def test_cte_is_hoisted_to_synthetic_view(self):
        (statement,) = parse_all(
            "WITH recent AS (SELECT a FROM rx) SELECT a FROM recent;"
        )
        (synth_name, synth_query) = statement.synthetic_views[0]
        assert synth_name == "tst0__cte_recent"
        assert synth_query.select == ("a",)
        assert statement.query.source == synth_name

    def test_later_cte_sees_earlier_one(self):
        (statement,) = parse_all(
            "WITH a1 AS (SELECT a FROM rx), "
            "a2 AS (SELECT a FROM a1) SELECT a FROM a2;"
        )
        names = [name for name, _ in statement.synthetic_views]
        assert names == ["tst0__cte_a1", "tst0__cte_a2"]
        assert statement.synthetic_views[1][1].source == "tst0__cte_a1"

    def test_from_subquery_is_hoisted(self):
        (statement,) = parse_all(
            "SELECT a FROM (SELECT a FROM rx WHERE a > 1) AS inner1;"
        )
        (synth_name, synth_query) = statement.synthetic_views[0]
        assert synth_name == "tst0__sub1_inner1"
        assert statement.query.source == synth_name
        assert synth_query.where is not None

    def test_union_with_trailing_order_limit_lands_on_head(self):
        query = parse_query(
            "SELECT a FROM rx UNION ALL SELECT a FROM ry ORDER BY a LIMIT 3;"
        )
        assert [c.op for c in query.set_ops] == ["union_all"]
        assert query.set_ops[0].query.order == ()
        assert query.set_ops[0].query.limit_n is None
        assert query.order == (("a", False),)
        assert query.limit_n == 3

    def test_order_before_union_is_rejected(self):
        with pytest.raises(ParseError, match="last UNION branch"):
            parse_all("SELECT a FROM rx ORDER BY a UNION SELECT a FROM ry;")

    def test_semicolon_in_string_does_not_split(self):
        splits = split_statements("SELECT a FROM rx WHERE s = 'x;y';", ANSI)
        assert len(splits) == 1

    def test_directives_name_reports(self):
        (statement,) = parse_all(
            "-- report: weekly\n-- title: Weekly numbers\n"
            "SELECT a FROM rx;"
        )
        assert statement.name == "weekly"
        assert statement.directives["title"] == "Weekly numbers"

    def test_file_dialect_only_honors_the_header(self):
        assert file_dialect("-- dialect: tsql\nSELECT 1;") == "tsql"
        assert file_dialect("SELECT a FROM rx;\n-- dialect: tsql\n") is None


# -- name resolution ----------------------------------------------------------


class TestResolver:
    def test_clean_query_has_no_diagnostics(self):
        query = parse_query("SELECT k, x FROM t WHERE x > 0;")
        assert resolve_query(query, Scope(CATALOG), location="l") == []

    def test_unknown_relation_is_ing001(self):
        query = parse_query("SELECT k FROM ghost;")
        (diag,) = resolve_query(query, Scope(CATALOG), location="l")
        assert (diag.code, diag.severity) == ("ING001", Severity.ERROR)

    def test_unknown_column_is_ing002(self):
        query = parse_query("SELECT wrong FROM t;")
        (diag,) = resolve_query(query, Scope(CATALOG), location="l")
        assert diag.code == "ING002"

    def test_join_ambiguity_is_ing003(self):
        query = parse_query("SELECT k FROM t JOIN u ON x = z;")
        (diag,) = resolve_query(query, Scope(CATALOG), location="l")
        assert diag.code == "ING003"
        assert "t" in diag.message and "u" in diag.message

    def test_union_arity_mismatch_is_ing009(self):
        query = parse_query("SELECT k, x FROM t UNION SELECT k FROM u;")
        codes = [d.code for d in resolve_query(query, Scope(CATALOG), location="l")]
        assert "ING009" in codes

    def test_suite_views_resolve_recursively(self):
        scope = Scope(CATALOG)
        scope.add_view("v1", parse_query("SELECT k, x FROM t;"))
        query = parse_query("SELECT x FROM v1;")
        assert resolve_query(query, scope, location="l") == []
        assert scope.outputs("v1") == ("k", "x")


# -- the compile driver over the shipped corpora ------------------------------


class TestIngestCorpus:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return ingest_suite("examples/sql_suites", catalog=scenario.bi_catalog)

    def test_whole_corpus_compiles(self, result):
        assert result.ok
        assert not result.diagnostics.by_severity(Severity.ERROR)
        assert sorted(r.name for r in result.reports) == [
            "chronic_cost_by_drug",
            "costly_flu_regions",
            "elderly_cost_by_disease",
            "elderly_dense_regions",
            "high_cost_regions",
            "top_flu_drugs",
        ]

    def test_all_three_dialects_were_used(self, result):
        assert {s.dialect for s in result.statements} == {
            "ansi",
            "postgres",
            "tsql",
        }

    def test_reports_carry_origin_and_source(self, result):
        by_name = {r.name: r for r in result.reports}
        chronic = by_name["chronic_cost_by_drug"]
        assert chronic.origin.startswith("reports_ansi.sql:")
        assert "GROUP BY drug" in chronic.source_sql

    def test_lineage_is_column_level(self, result):
        lineage = result.lineage["chronic_cost_by_drug"]
        assert lineage["drug"] == ["dim_drug.drug"]
        assert lineage["total_cost"] == ["fact_prescriptions.cost"]
        assert lineage["prescriptions"] == []

    def test_normalizations_and_widening_are_surfaced(self, result):
        codes = set(result.diagnostics.codes())
        assert "ING006" in codes  # TOP/cast/quoting rewrites
        assert "ING007" in codes  # predicate-only disclosures

    def test_widening_names_only_suite_predicates(self, result):
        (diag,) = [
            d
            for d in result.diagnostics.by_code("ING007")
            if "reports_postgres.sql:14" in d.location
        ]
        assert "dim_patient.birth_year" in diag.message
        assert "patient_id" not in diag.message  # wide-view join keys elided

    def test_forcing_the_wrong_dialect_fails_closed(self, scenario):
        result = ingest_suite(
            "examples/sql_suites", catalog=scenario.bi_catalog, dialect="ansi"
        )
        assert not result.ok
        assert result.diagnostics.by_severity(Severity.ERROR)

    def test_missing_directory_is_an_ingest_error(self, scenario, tmp_path):
        with pytest.raises(IngestError):
            ingest_suite(tmp_path / "nope", catalog=scenario.bi_catalog)


class TestNegativeSuite:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return ingest_suite("tests/data/negative_suite", catalog=scenario.bi_catalog)

    def test_every_error_code_fires(self, result):
        errors = {
            d.code for d in result.diagnostics.by_severity(Severity.ERROR)
        }
        assert errors == {
            "ING001",
            "ING002",
            "ING003",
            "ING004",
            "ING005",
            "ING008",
            "ING009",
            "ING010",
        }

    def test_rejected_statements_contribute_nothing(self, result):
        assert not result.ok
        assert result.reports == []
        # The first dup_view definition is fine; everything else is rejected.
        assert [v.name for v in result.views] == ["dup_view"]

    def test_diagnostics_carry_file_and_line(self, result):
        (diag,) = result.diagnostics.by_code("ING001")
        assert diag.location == "suite:bad_names.sql:3"

    def test_parse_errors_include_caret_snippets(self, result):
        (diag,) = result.diagnostics.by_code("ING005")
        assert "^" in diag.message

    def test_clash_with_catalog_view_is_ing008(self, scenario, tmp_path):
        (tmp_path / "clash.sql").write_text(
            "CREATE VIEW wide_prescriptions AS SELECT drug FROM wide_prescriptions;"
        )
        result = ingest_suite(tmp_path, catalog=scenario.bi_catalog)
        assert [d.code for d in result.diagnostics.by_severity(Severity.ERROR)] == [
            "ING008"
        ]

    def test_window_function_is_ing010_with_location_and_caret(self, result):
        (diag,) = result.diagnostics.by_code("ING010")
        assert diag.location.startswith("suite:bad_constructs.sql:")
        assert "window function" in diag.message
        assert "^" in diag.message  # caret snippet, never a crash


class TestDiagnosticOrdering:
    """``repro ingest`` reports findings in source order, deterministically."""

    @pytest.fixture(scope="class")
    def result(self, scenario, tmp_path_factory):
        suite = tmp_path_factory.mktemp("ordering")
        # Errors on lines 2 and 10 of one file: a lexicographic location
        # sort would put line 10 first.
        (suite / "a.sql").write_text(
            "-- report: early\n"
            "SELECT drug FROM no_such_relation;\n"
            + "-- filler\n" * 7
            + "SELECT prescriber FROM wide_prescriptions;\n"
        )
        (suite / "b.sql").write_text(
            "-- report: late\nSELECT drug FROM also_missing;\n"
        )
        return ingest_suite(suite, catalog=scenario.bi_catalog)

    def test_text_order_is_file_then_numeric_line(self, result):
        locations = [
            d.location
            for d in result.diagnostics.source_sorted()
            if d.severity is Severity.ERROR
        ]
        assert locations == [
            "suite:a.sql:2",
            "suite:a.sql:10",
            "suite:b.sql:2",
        ]

    def test_json_diagnostics_use_source_order(self, result):
        payload = result.to_dict()
        codes = [
            (d["location"], d["code"])
            for d in payload["diagnostics"]["diagnostics"]
        ]
        assert codes == sorted(
            codes,
            key=lambda pair: (
                pair[0].rsplit(":", 1)[0],
                int(pair[0].rsplit(":", 1)[1]),
                pair[1],
            ),
        )
        assert codes[0][0] == "suite:a.sql:2"


# -- emitted deployments are auditable ---------------------------------------


class TestEmitDeployment:
    @pytest.fixture(scope="class")
    def deployment(self, scenario, tmp_path_factory):
        from repro.persistence import load_deployment

        result = ingest_suite("examples/sql_suites", catalog=scenario.bi_catalog)
        out = tmp_path_factory.mktemp("ingested") / "dep"
        emit_deployment(result, out, scenario=scenario)
        return load_deployment(out)

    def test_reload_preserves_reports_and_origins(self, deployment):
        definition = deployment.reports.current("top_flu_drugs")
        assert definition.origin.startswith("reports_tsql.sql:")
        assert "TOP 10" in definition.source_sql

    def test_lint_is_clean_over_the_ingested_catalog(self, deployment):
        from repro.analysis import AnalysisInput, StaticAnalyzer

        report = StaticAnalyzer(
            AnalysisInput(
                catalog=deployment.catalog,
                metareports=deployment.metareports,
                reports=deployment.reports,
            )
        ).analyze()
        assert report.clean, [str(d) for d in report.diagnostics]

    def test_verify_proves_the_ingested_catalog(self, deployment):
        from repro.verify import DeploymentVerifier, VerificationInput

        report = DeploymentVerifier(
            VerificationInput.from_deployment(deployment)
        ).verify()
        assert report.exit_code(Severity.WARNING) == 0

    def test_lint_locations_include_report_origin(self, deployment, scenario):
        from repro.analysis import AnalysisInput, StaticAnalyzer
        from repro.reports.catalog import ReportCatalog

        # Break one ingested report (expose the patient identifier) and
        # check the diagnostic points back into the original SQL file.
        reports = ReportCatalog()
        definition = deployment.reports.current("top_flu_drugs")
        broken = Query.from_(scenario.universe_name).project("patient", "drug")
        from dataclasses import replace

        reports.add(replace(definition, query=broken))
        report = StaticAnalyzer(
            AnalysisInput(
                catalog=deployment.catalog,
                metareports=deployment.metareports,
                reports=reports,
            )
        ).analyze()
        assert any(
            "@reports_tsql.sql:" in d.location for d in report.diagnostics
        )


class TestTpchCorpus:
    """The TPC-H-style corpus ingests end to end in all three dialects.

    Its reports stay derivable/verifiable (conjunctive view chains), while
    the staging views exercise the grown fragment: RIGHT/FULL JOIN, CASE
    in predicates, scalar subqueries, and TOP inside a subquery.
    """

    @pytest.fixture(scope="class")
    def result(self, scenario):
        return ingest_suite(
            "examples/sql_suites/tpch", catalog=scenario.bi_catalog
        )

    def test_zero_error_diagnostics(self, result):
        errors = [
            d
            for d in result.diagnostics.diagnostics
            if d.severity is Severity.ERROR
        ]
        assert result.ok and not errors, [str(d) for d in errors]

    def test_all_dialects_and_constructs_are_exercised(self, result):
        dialects = {s.dialect for s in result.statements}
        assert dialects == {"ansi", "postgres", "tsql"}
        assert len(result.reports) >= 8
        queries = [view.query for view in result.views] + [
            definition.query for definition in result.reports
        ]
        joined = {clause.how for q in queries for clause in q.joins}
        assert {"right", "full", "cross"} <= joined
        scalar_views = [v.name for v in result.views if "__scalar" in v.name]
        assert scalar_views, "scalar subquery should hoist a synthetic view"

    def test_emitted_deployment_passes_lint_and_verify_clean(
        self, result, scenario, tmp_path
    ):
        from repro.analysis import AnalysisInput, StaticAnalyzer
        from repro.persistence import load_deployment
        from repro.verify import DeploymentVerifier, VerificationInput

        out = tmp_path / "tpch-dep"
        emit_deployment(result, out, scenario=scenario)
        deployment = load_deployment(out)
        lint = StaticAnalyzer(
            AnalysisInput(
                catalog=deployment.catalog,
                metareports=deployment.metareports,
                reports=deployment.reports,
            )
        ).analyze()
        assert lint.clean, [str(d) for d in lint.diagnostics]
        verify = DeploymentVerifier(
            VerificationInput.from_deployment(deployment)
        ).verify()
        assert verify.exit_code(Severity.WARNING) == 0, verify.summary()
        assert verify.all_proved


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_ingest_corpus_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["ingest", "examples/sql_suites"]) == 0
        out = capsys.readouterr().out
        assert "6 report(s)" in out

    def test_json_output_is_machine_readable(self, capsys):
        from repro.cli import main

        assert main(["ingest", "examples/sql_suites", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["statements"]) == 10
        assert payload["lineage"]["top_flu_drugs"]["drug"] == ["dim_drug.drug"]

    def test_negative_suite_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["ingest", "tests/data/negative_suite"]) == 1

    def test_emit_catalog_refused_for_broken_suites(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "ingest",
                "tests/data/negative_suite",
                "--emit-catalog",
                str(tmp_path / "dep"),
            ]
        )
        assert code == 1
        assert not (tmp_path / "dep").exists()

    def test_emit_catalog_then_lint_and_verify(self, capsys, tmp_path):
        from repro.cli import main

        dep = str(tmp_path / "dep")
        assert main(["ingest", "examples/sql_suites", "--emit-catalog", dep]) == 0
        assert main(["lint", "--deployment", dep]) == 0
        assert main(["verify", "--deployment", dep, "--no-replay"]) == 0


# -- property: render/parse round-trip ----------------------------------------

OPS = ("<", "<=", ">", ">=", "=", "!=")


@st.composite
def renderable_queries(draw) -> Query:
    """Random queries inside the fragment render_query targets."""
    query = Query.from_(draw(st.sampled_from(["t", "u"])))
    cols = ["k", "x", "s"] if query.source == "t" else ["k", "z"]
    numeric = [c for c in cols if c != "s"]

    if draw(st.booleans()):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            query = query.filter(
                Comparison(
                    draw(st.sampled_from(OPS)),
                    Col(draw(st.sampled_from(numeric))),
                    Lit(draw(st.integers(-5, 5))),
                )
            )
        elif kind == 1:
            query = query.filter(
                InList(Col(draw(st.sampled_from(cols))), ("a'b", "c"))
            )
        else:
            query = query.filter(
                IsNull(
                    Col(draw(st.sampled_from(cols))),
                    negated=draw(st.booleans()),
                )
            )

    if draw(st.booleans()):  # UNION: numeric-only so branch types conform
        width = draw(st.integers(1, 2))
        out = draw(st.permutations(numeric))[:width]
        query = query.project(*out)
        if draw(st.booleans()):
            query = query.distinct()
        branch_source = draw(st.sampled_from(["t", "u"]))
        branch_numeric = ["k", "x"] if branch_source == "t" else ["k", "z"]
        branch = Query.from_(branch_source)
        if draw(st.booleans()):
            branch = branch.filter(
                Comparison(
                    draw(st.sampled_from(OPS)),
                    Col(draw(st.sampled_from(branch_numeric))),
                    Lit(draw(st.integers(-5, 5))),
                )
            )
        branch = branch.project(*draw(st.permutations(branch_numeric))[:width])
        query = query.union_with(branch, all=draw(st.booleans()))
    elif draw(st.booleans()):  # aggregate with explicit projection
        group = draw(st.sampled_from(cols))
        aggs = [AggSpec("count", None, "n")]
        if draw(st.booleans()):
            aggs.append(
                AggSpec(
                    draw(st.sampled_from(["sum", "min", "max", "avg"])),
                    draw(st.sampled_from(numeric)),
                    "m",
                )
            )
        query = query.group(group).agg(*aggs)
        out = [group] + [a.alias for a in aggs]
        query = query.project(*out)
    else:
        out = draw(
            st.lists(st.sampled_from(cols), min_size=1, max_size=3, unique=True)
        )
        query = query.project(*out)
        if draw(st.booleans()):
            query = query.distinct()

    if draw(st.booleans()):
        query = query.order_by((draw(st.sampled_from(out)), draw(st.booleans())))
    if draw(st.booleans()):
        query = query.limit(draw(st.integers(0, 9)))
    return query


@given(query=renderable_queries())
@settings(max_examples=120, deadline=None)
def test_render_parse_round_trip_preserves_fingerprint(query):
    sql = render_query(query) + ";"
    (statement,) = parse_suite_text(sql, ANSI, mangle_prefix="rt")
    assert statement.query.fingerprint() == query.fingerprint(), sql


# -- property: static lineage over-approximates runtime provenance ------------


def runtime_refs(provenance, column) -> set[str]:
    return {
        f"{ref.row.table}.{ref.column}"
        for ref in provenance.where_of(column)
    }


@given(query=renderable_queries())
@settings(max_examples=120, deadline=None)
def test_ingested_lineage_covers_runtime_where_provenance(query):
    """The differential property behind ING007 and the lineage payload:
    every base cell the engine actually reads is inside the static
    ``copied | derived`` set of its output column — UNION branches
    included (a projection duplicate in one branch must not hide a
    differently-sourced column in another)."""
    static = column_flows(query, CATALOG)
    table = execute(query, CATALOG)
    assert list(static.names()) == list(table.schema.names)
    for name in table.schema.names:
        flow = static.flow_of(name)
        for provenance in table.provenance:
            refs = runtime_refs(provenance, name)
            assert refs <= flow.sources, (
                f"column {name!r}: runtime {refs} escapes static "
                f"{set(flow.sources)} for {query}"
            )


# -- property: the grown fragment (outer joins, CASE, scalar subqueries) ------
#
# Random SQL *text* in the fragment this PR grows the front-end by:
# RIGHT/FULL/CROSS joins, searched and simple CASE in projections and
# predicates, and scalar subqueries (which the parser hoists into
# name-mangled single-row aggregate views). Each tree is pushed through
# the real ingestion parser, executed on all three engines, and checked
# for (a) value and provenance parity and (b) static lineage covering
# runtime where-provenance.


@st.composite
def extended_fragment_sql(draw) -> str:
    """One statement of SQL text exercising the grown constructs.

    Joined shapes only reference the unambiguous columns (``x``/``s``
    from ``t``, ``z`` from ``u``) so the tree stays inside the resolvable
    fragment regardless of the join style drawn.
    """
    how = draw(
        st.sampled_from(
            [None, "JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN", "CROSS JOIN"]
        )
    )
    joined = how is not None
    plain = ["x", "s", "z"] if joined else ["k", "x", "s"]

    case_items = [
        "CASE WHEN x > 0 THEN s ELSE 'neg' END AS band",
        "CASE WHEN x > 2 THEN 'hi' WHEN x > 0 THEN 'mid' END AS tier",
        "CASE x WHEN 1 THEN 's' WHEN 2 THEN 'd' ELSE 'o' END AS tag",
    ]
    wheres = [
        None,
        "x > 1",
        "(CASE WHEN s = 's1' THEN x ELSE 0 END) >= 0",
        "(CASE x WHEN 1 THEN 1 ELSE 0 END) = 1",
        "x > (SELECT AVG(z) AS a FROM u)",
        "x <= (SELECT MAX(z) AS m FROM u WHERE z > -2)",
    ]
    if joined:
        wheres += ["z IS NOT NULL", "z < (SELECT SUM(x) AS s_x FROM t)"]

    if draw(st.booleans()):  # aggregate form
        group = draw(st.sampled_from(plain[:2]))
        select = [group, "COUNT(*) AS n"]
        if draw(st.booleans()):
            select.append(f"SUM({'z' if joined else 'x'}) AS m")
        tail = f" GROUP BY {group}"
    else:
        select = list(
            draw(st.permutations(plain))[: draw(st.integers(1, len(plain)))]
        )
        if draw(st.booleans()):
            select.append(draw(st.sampled_from(case_items)))
        tail = ""

    sql = "SELECT " + ", ".join(select) + " FROM t"
    if joined:
        on = "" if how == "CROSS JOIN" else " ON k = k"
        sql += f" {how} u{on}"
    where = draw(st.sampled_from(wheres))
    if where is not None:
        sql += f" WHERE {where}"
    return sql + tail + ";"


def _register_synthetics(statement) -> Catalog:
    """A fresh t/u catalog with the statement's hoisted views installed."""
    from repro.relational.catalog import View

    catalog = small_catalog()
    for name, view_query in statement.synthetic_views:
        catalog.add_view(View(name, view_query))
    return catalog


@given(sql=extended_fragment_sql())
@settings(max_examples=150, deadline=None)
def test_extended_fragment_engines_agree_and_lineage_covers(sql):
    """Differential property over the grown fragment: row == columnar ==
    vector (values *and* provenance) on the same trees, and static
    lineage over-approximates runtime where-provenance — scalar-subquery
    cross joins and outer-join null padding included."""
    from repro.relational import execute_columnar, execute_row
    from repro.relational import vector as vector_mod

    (statement,) = parse_all(sql)
    catalog = _register_synthetics(statement)
    query = statement.query

    row = execute_row(query, catalog)
    previous = vector_mod.set_vector_enabled(False)
    try:
        columnar = execute_columnar(query, catalog)
        vector_mod.set_vector_enabled(True)
        vectorized = execute_columnar(query, catalog)
    finally:
        vector_mod.set_vector_enabled(previous)

    for engine, got in (("columnar", columnar), ("vector", vectorized)):
        assert got.schema == row.schema, (engine, sql)
        assert list(got.rows) == list(row.rows), (engine, sql)
        assert list(got.provenance) == list(row.provenance), (engine, sql)

    static = column_flows(query, catalog)
    assert list(static.names()) == list(row.schema.names), sql
    for name in row.schema.names:
        flow = static.flow_of(name)
        for provenance in row.provenance:
            refs = runtime_refs(provenance, name)
            assert refs <= flow.sources, (
                f"column {name!r}: runtime {refs} escapes static "
                f"{set(flow.sources)} for {sql}"
            )
