"""Tests for meta-report generation, covering checks, and the compliance engine."""

import pytest

from repro.errors import PolicyError
from repro.core import (
    PLA,
    AggregationThreshold,
    AttributeAccess,
    ComplianceChecker,
    IntensionalCondition,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    generate_metareports,
)
from repro.relational import Catalog, Query, Table, View, make_schema, parse_expression, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportDefinition

WIDE_COLUMNS = ("patient", "drug", "disease", "doctor", "cost")


@pytest.fixture
def universe_catalog():
    """A base table + a 'wide' view standing in for the warehouse universe."""
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("doctor", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", "Luis", 60),
        ("Chris", "DV", "HIV", "Anne", 30),
        ("Bob", "DR", "asthma", "Anne", 10),
        ("Math", "DM", "diabetes", "Mark", 10),
        ("Alice", "DR", "asthma", "Luis", 10),
        ("Bob", "DR", "asthma", "Anne", 10),
    ]
    cat.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
    cat.add_view(View("wide", Query.from_("base").project(*WIDE_COLUMNS)))
    return cat


def report(name, sql, audience=frozenset({"analyst"}), purpose="care"):
    return ReportDefinition(
        name=name, title=name, query=parse_query(sql),
        audience=audience, purpose=purpose,
    )


WORKLOAD = [
    ("r_drug", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
    ("r_cost", "SELECT drug, SUM(cost) AS total FROM wide GROUP BY drug"),
    ("r_doc", "SELECT doctor, COUNT(*) AS n FROM wide GROUP BY doctor"),
    ("r_detail", "SELECT patient, drug FROM wide"),
]


class TestGeneration:
    def _workload(self):
        return [report(name, sql) for name, sql in WORKLOAD]

    def test_single_universe_metareport(self):
        mrs = generate_metareports(
            self._workload(), "wide", WIDE_COLUMNS, max_metareports=1
        )
        assert len(mrs) == 1
        assert set(mrs.metareports[0].columns()) == {
            "drug", "cost", "doctor", "patient",
        }

    def test_granularity_bounds_count(self):
        for g in (1, 2, 3, 10):
            mrs = generate_metareports(
                self._workload(), "wide", WIDE_COLUMNS, max_metareports=g
            )
            assert 1 <= len(mrs) <= g

    def test_columns_in_universe_order(self):
        mrs = generate_metareports(
            self._workload(), "wide", WIDE_COLUMNS, max_metareports=1
        )
        cols = mrs.metareports[0].columns()
        order = {c: i for i, c in enumerate(WIDE_COLUMNS)}
        assert list(cols) == sorted(cols, key=order.__getitem__)

    def test_empty_workload_rejected(self):
        with pytest.raises(PolicyError):
            generate_metareports([], "wide", WIDE_COLUMNS, max_metareports=1)

    def test_foreign_report_rejected(self):
        bad = report("bad", "SELECT x FROM other")
        with pytest.raises(PolicyError):
            generate_metareports([bad], "wide", WIDE_COLUMNS, max_metareports=1)

    def test_deterministic(self):
        a = generate_metareports(self._workload(), "wide", WIDE_COLUMNS, max_metareports=2)
        b = generate_metareports(self._workload(), "wide", WIDE_COLUMNS, max_metareports=2)
        assert [m.columns() for m in a] == [m.columns() for m in b]


class TestCovering:
    def _approved_set(self, universe_catalog, columns=WIDE_COLUMNS):
        mrs = MetaReportSet()
        mr = MetaReport("mr_0", Query.from_("wide").project(*columns))
        registry = PlaRegistry()
        pla = PLA(
            "pla_mr_0", "hospital", PlaLevel.METAREPORT, "mr_0",
            (AggregationThreshold(2),),
        )
        registry.add(pla)
        mr.attach_pla(registry.approve("pla_mr_0"))
        mrs.add(mr)
        mrs.register_views(universe_catalog)
        return mrs

    def test_finds_covering(self, universe_catalog):
        mrs = self._approved_set(universe_catalog)
        covering, attempts = mrs.find_covering(
            report("r", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
            universe_catalog,
        )
        assert covering is not None and covering.name == "mr_0"
        assert attempts and attempts[-1].derivable

    def test_unapproved_metareports_skipped(self, universe_catalog):
        mrs = MetaReportSet()
        mrs.add(MetaReport("draft", Query.from_("wide").project(*WIDE_COLUMNS)))
        covering, attempts = mrs.find_covering(
            report("r", "SELECT drug FROM wide"), universe_catalog
        )
        assert covering is None and attempts == ()

    def test_report_over_metareport_view(self, universe_catalog):
        mrs = self._approved_set(universe_catalog)
        covering, _ = mrs.find_covering(
            report("r", "SELECT drug FROM mr_0 WHERE disease = 'asthma'"),
            universe_catalog,
        )
        assert covering is not None

    def test_attach_pla_wrong_target_rejected(self):
        mr = MetaReport("mr_0", Query.from_("wide").project("a"))
        pla = PLA("p", "o", PlaLevel.METAREPORT, "other", (AggregationThreshold(2),))
        with pytest.raises(PolicyError):
            mr.attach_pla(pla)


class TestCompliance:
    @pytest.fixture
    def checker(self, universe_catalog):
        mrs = MetaReportSet()
        mr = MetaReport("mr_0", Query.from_("wide").project(*WIDE_COLUMNS))
        registry = PlaRegistry()
        pla = PLA(
            "pla_mr_0",
            "hospital",
            PlaLevel.METAREPORT,
            "mr_0",
            (
                AggregationThreshold(2, scope="patient"),
                AttributeAccess("patient", frozenset({"director"})),
                IntensionalCondition(
                    "disease", parse_expression("disease != 'HIV'"), "suppress_row"
                ),
                JoinPermission("hospital/base", "lab/exams", allowed=False),
            ),
        )
        registry.add(pla)
        mr.attach_pla(registry.approve("pla_mr_0"))
        mrs.add(mr)
        mrs.register_views(universe_catalog)
        return ComplianceChecker(catalog=universe_catalog, metareports=mrs)

    def test_compliant_aggregate_gets_obligations(self, checker):
        verdict = checker.check_report(
            report("r", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        )
        assert verdict.compliant
        kinds = {o.kind for o in verdict.obligations}
        assert kinds == {"aggregation_threshold", "intensional"}

    def test_detail_report_violates_threshold(self, checker):
        verdict = checker.check_report(report("r", "SELECT drug, doctor FROM wide"))
        assert not verdict.compliant
        assert any("record-level" in str(v) for v in verdict.violations)

    def test_filtering_on_restricted_attribute_is_access(self, checker):
        """Inference channel: WHERE patient = 'Alice' discloses Alice's data
        even if the patient column is never displayed."""
        verdict = checker.check_report(
            report(
                "r",
                "SELECT drug, COUNT(*) AS n FROM wide "
                "WHERE patient = 'Alice' GROUP BY drug",
                audience=frozenset({"analyst"}),
            )
        )
        assert not verdict.compliant
        assert any("query by 'patient'" in str(v) for v in verdict.violations)

    def test_attribute_access_audience_violation(self, checker):
        verdict = checker.check_report(
            report(
                "r",
                "SELECT patient, drug FROM wide",
                audience=frozenset({"analyst"}),
            )
        )
        assert not verdict.compliant
        assert any("may not see 'patient'" in str(v) for v in verdict.violations)

    def test_uncoverable_report(self, checker):
        verdict = checker.check_report(report("r", "SELECT patient FROM base"))
        # base is covered (same relations), but let's use a fresh table
        assert verdict.compliant or not verdict.compliant  # smoke: no crash

    def test_unknown_universe_not_covered(self, universe_catalog, checker):
        other = Table.from_rows(
            "exams", make_schema(("patient", ColumnType.STRING)), [], provider="lab"
        )
        universe_catalog.add_table(other)
        verdict = checker.check_report(report("r", "SELECT patient FROM exams"))
        assert not verdict.compliant
        assert verdict.covering_metareport is None

    def test_source_footprint_via_lineage(self, checker):
        fp = checker.source_footprint(
            report("r", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        )
        assert fp == frozenset({"hospital/base"})

    def test_check_catalog_batches(self, checker):
        verdicts = checker.check_catalog(
            (
                report("a", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug"),
                report("b", "SELECT doctor, COUNT(*) AS n FROM wide GROUP BY doctor"),
            )
        )
        assert set(verdicts) == {"a", "b"}

    def test_cell_condition_on_aggregate_is_violation(self, universe_catalog):
        mrs = MetaReportSet()
        mr = MetaReport("mr_0", Query.from_("wide").project(*WIDE_COLUMNS))
        registry = PlaRegistry()
        pla = PLA(
            "p", "hospital", PlaLevel.METAREPORT, "mr_0",
            (
                IntensionalCondition(
                    "drug", parse_expression("disease != 'HIV'"), "suppress_cell"
                ),
            ),
        )
        registry.add(pla)
        mr.attach_pla(registry.approve("p"))
        mrs.add(mr)
        mrs.register_views(universe_catalog)
        checker = ComplianceChecker(catalog=universe_catalog, metareports=mrs)
        verdict = checker.check_report(
            report("r", "SELECT drug, COUNT(*) AS n FROM wide GROUP BY drug")
        )
        assert not verdict.compliant
