"""Unit and integration tests for ETL operators, flows, and PLA annotations."""

import datetime

import pytest

from repro.errors import ComplianceError, EtlError, PolicyError
from repro.etl import (
    AggregateOp,
    DedupeOp,
    DeriveOp,
    EtlFlow,
    EtlPlaRegistry,
    ExtractOp,
    FilterOp,
    IntegrateOp,
    IntegrationProhibition,
    JoinOp,
    JoinProhibition,
    LoadOp,
    OperationRestriction,
    StagingArea,
    StandardizeOp,
    normalize_code,
    normalize_name,
    resolve_entities,
    rewrite_to_canonical,
    strip_whitespace,
    titlecase,
    to_iso_date,
)
from repro.provenance import ProvenanceGraph
from repro.relational import Catalog
from repro.relational.algebra import AggSpec
from repro.relational.expressions import col, lit
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType


class TestCleaningHelpers:
    def test_strip_and_title(self):
        assert strip_whitespace("  x ") == "x"
        assert titlecase(" alice ") == "Alice"
        assert strip_whitespace(5) == 5

    def test_normalize_name(self):
        assert normalize_name("  alice   b ") == "Alice B"

    def test_normalize_code(self):
        assert normalize_code(" dh ") == "DH"

    def test_to_iso_date(self):
        assert to_iso_date("12/02/2007") == datetime.date(2007, 2, 12)
        d = datetime.date(2007, 2, 12)
        assert to_iso_date(d) is d


class TestOperators:
    def test_extract_keeps_provider_and_provenance(self, prescriptions):
        op = ExtractOp("x", prescriptions, "staged")
        out = op.run(Catalog())
        assert out.provider == "hospital"
        assert out.all_lineage() == prescriptions.all_lineage()

    def test_standardize(self, prescriptions):
        cat = Catalog()
        cat.add_table(ExtractOp("x", prescriptions, "s").run(cat))
        op = StandardizeOp("std", "s", "out", {"drug": str.lower})
        out = op.run(cat)
        assert set(out.column_values("drug")) == {"dh", "dv", "dr", "dm"}

    def test_standardize_requires_transforms(self):
        with pytest.raises(EtlError):
            StandardizeOp("std", "s", "out", {})

    def test_filter_and_derive(self, prescriptions):
        cat = Catalog()
        cat.add_table(ExtractOp("x", prescriptions, "s").run(cat))
        filtered = FilterOp("f", "s", "f_out", col("disease") == "asthma").run(cat)
        assert len(filtered) == 2
        cat.add_table(filtered)
        derived = DeriveOp("d", "f_out", "d_out", [("is_dr", col("drug") == lit("DR"))]).run(cat)
        assert all(row[-1] is True for row in derived.rows)

    def test_dedupe(self):
        schema = make_schema(("a", ColumnType.INT))
        t = Table.from_rows("t", schema, [(1,), (1,), (2,)], provider="p")
        cat = Catalog()
        cat.add_table(t)
        out = DedupeOp("d", "t", "out").run(cat)
        assert len(out) == 2

    def test_join_drops_duplicate_key(self, prescriptions, drugcost):
        cat = Catalog()
        cat.add_table(ExtractOp("a", prescriptions, "p").run(cat))
        cat.add_table(ExtractOp("b", drugcost, "c").run(cat))
        out = JoinOp("j", "p", "c", [("drug", "drug")], "joined").run(cat)
        assert out.schema.names == (
            "patient", "doctor", "drug", "disease", "date", "cost",
        )
        assert len(out) == 5

    def test_integrate_fills_missing_and_records_lineage(
        self, prescriptions, familydoctor
    ):
        cat = Catalog()
        cat.add_table(ExtractOp("a", prescriptions, "p").run(cat))
        cat.add_table(ExtractOp("b", familydoctor, "fd").run(cat))
        out = IntegrateOp(
            "fill", "p", "fd", "filled",
            key=("patient", "patient"),
            fill_column="doctor",
            reference_column="doctor",
        ).run(cat)
        chris = [r for r in out.iter_dicts() if r["patient"] == "Chris"][0]
        assert chris["doctor"] == "Anne"  # filled from familydoctor
        chris_idx = [i for i, r in enumerate(out.iter_dicts()) if r["patient"] == "Chris"][0]
        providers = {rid.provider for rid in out.lineage_of(chris_idx)}
        assert providers == {"hospital", "municipality"}

    def test_integrate_does_not_overwrite(self, prescriptions, familydoctor):
        cat = Catalog()
        cat.add_table(ExtractOp("a", prescriptions, "p").run(cat))
        cat.add_table(ExtractOp("b", familydoctor, "fd").run(cat))
        out = IntegrateOp(
            "fill", "p", "fd", "filled",
            key=("patient", "patient"),
            fill_column="doctor",
            reference_column="doctor",
        ).run(cat)
        bob = [r for r in out.iter_dicts() if r["patient"] == "Bob"][0]
        assert bob["doctor"] == "Anne"  # was already set, unchanged

    def test_aggregate_op(self, prescriptions):
        cat = Catalog()
        cat.add_table(ExtractOp("a", prescriptions, "p").run(cat))
        out = AggregateOp(
            "agg", "p", "out", group_by=["drug"], aggs=[AggSpec("count", None, "n")]
        ).run(cat)
        assert len(out) == 4

    def test_load_tags_warehouse(self, prescriptions):
        cat = Catalog()
        cat.add_table(ExtractOp("a", prescriptions, "p").run(cat))
        out = LoadOp("l", "p", "dwh_p").run(cat)
        assert out.provider == "warehouse"
        assert {r.provider for r in out.all_lineage()} == {"hospital"}


class TestFlow:
    def _flow(self, prescriptions, familydoctor, drugcost):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", prescriptions, "p"))
        flow.add(ExtractOp("x2", familydoctor, "fd"))
        flow.add(ExtractOp("x3", drugcost, "c"))
        flow.add(
            IntegrateOp(
                "fill", "p", "fd", "filled",
                key=("patient", "patient"),
                fill_column="doctor",
                reference_column="doctor",
            )
        )
        flow.add(JoinOp("j", "filled", "c", [("drug", "drug")], "joined"))
        flow.add(LoadOp("load", "joined", "dwh"))
        return flow

    def test_flow_runs_and_registers(self, prescriptions, familydoctor, drugcost):
        flow = self._flow(prescriptions, familydoctor, drugcost)
        result = flow.run()
        assert result.clean
        assert len(result.executed) == 6
        assert "dwh" in result.catalog

    def test_duplicate_output_rejected(self, prescriptions):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", prescriptions, "p"))
        with pytest.raises(EtlError):
            flow.add(ExtractOp("x2", prescriptions, "p"))

    def test_missing_input_rejected(self):
        flow = EtlFlow("f")
        flow.add(DedupeOp("d", "absent", "out"))
        with pytest.raises(EtlError):
            flow.run()

    def test_provenance_graph_populated(
        self, prescriptions, familydoctor, drugcost
    ):
        flow = self._flow(prescriptions, familydoctor, drugcost)
        graph = ProvenanceGraph()
        flow.run(graph=graph)
        ups = graph.upstream_datasets("dwh")
        names = {n.name for n in ups}
        assert {"p", "fd", "c", "filled", "joined"} <= names

    def test_join_prohibition_skips_and_cascades(
        self, prescriptions, familydoctor, drugcost
    ):
        flow = self._flow(prescriptions, familydoctor, drugcost)
        pla = EtlPlaRegistry()
        pla.add(
            JoinProhibition(
                "no-mix", "municipality",
                "municipality/familydoctor", "health_agency/drugcost",
            )
        )
        result = flow.run(pla=pla)
        assert not result.clean
        assert "j" in result.skipped and "load" in result.skipped
        assert "dwh" not in result.catalog  # privacy by construction

    def test_strict_mode_raises(self, prescriptions, familydoctor, drugcost):
        flow = self._flow(prescriptions, familydoctor, drugcost)
        pla = EtlPlaRegistry()
        pla.add(
            JoinProhibition(
                "no-mix", "municipality",
                "municipality/familydoctor", "health_agency/drugcost",
            )
        )
        with pytest.raises(ComplianceError):
            flow.run(pla=pla, strict=True)

    def test_integration_prohibition(self, prescriptions, familydoctor):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", prescriptions, "p"))
        flow.add(ExtractOp("x2", familydoctor, "fd"))
        flow.add(
            IntegrateOp(
                "fill", "p", "fd", "filled",
                key=("patient", "patient"),
                fill_column="doctor",
                reference_column="doctor",
            )
        )
        pla = EtlPlaRegistry()
        pla.add(IntegrationProhibition("no-muni-er", "municipality"))
        result = flow.run(pla=pla)
        assert [v.constraint for v in result.violations] == ["no-muni-er"]
        assert "fill" in result.skipped

    def test_operation_restriction(self, prescriptions):
        flow = EtlFlow("f")
        flow.add(ExtractOp("x1", prescriptions, "p"))
        flow.add(
            AggregateOp(
                "agg", "p", "out", group_by=["drug"],
                aggs=[AggSpec("count", None, "n")],
            )
        )
        pla = EtlPlaRegistry()
        pla.add(
            OperationRestriction(
                "no-agg", "hospital", "hospital/prescriptions",
                {"aggregate"},
            )
        )
        result = flow.run(pla=pla)
        assert not result.clean and "agg" in result.skipped

    def test_duplicate_constraint_rejected(self):
        pla = EtlPlaRegistry()
        pla.add(IntegrationProhibition("x", "a"))
        with pytest.raises(PolicyError):
            pla.add(IntegrationProhibition("x", "b"))


class TestStagingArea:
    def test_stage_naming_and_intake(self, prescriptions):
        cat = Catalog()
        staging = StagingArea(cat)
        staged = staging.stage(prescriptions)
        assert staged.name == "stg_hospital_prescriptions"
        assert staging.staged_tables() == ("stg_hospital_prescriptions",)
        record = staging.record_for("stg_hospital_prescriptions")
        assert record.rows == 5 and record.provider == "hospital"

    def test_missing_record_raises(self):
        staging = StagingArea(Catalog())
        with pytest.raises(EtlError):
            staging.record_for("nope")


class TestEntityResolution:
    def test_clusters_by_normalized_key(self):
        schema = make_schema(("patient", ColumnType.STRING))
        a = Table.from_rows("a", schema, [("alice b",), ("BOB",)], provider="p1")
        b = Table.from_rows("b", schema, [("Alice B",), ("bob",), ("Carol",)], provider="p2")
        result = resolve_entities([(a, "patient"), (b, "patient")])
        assert len(result.clusters) == 3
        assert result.entity_of("p1", "alice b") == result.entity_of("p2", "Alice B")

    def test_cross_provider_clusters(self):
        schema = make_schema(("patient", ColumnType.STRING))
        a = Table.from_rows("a", schema, [("Alice",)], provider="p1")
        b = Table.from_rows("b", schema, [("alice",), ("Solo",)], provider="p2")
        result = resolve_entities([(a, "patient"), (b, "patient")])
        cross = result.cross_provider_clusters()
        assert len(cross) == 1 and cross[0].providers == {"p1", "p2"}

    def test_canonical_is_most_frequent(self):
        schema = make_schema(("patient", ColumnType.STRING))
        a = Table.from_rows(
            "a", schema, [("alice",), ("alice",), ("Alice",)], provider="p1"
        )
        result = resolve_entities([(a, "patient")])
        assert result.clusters[0].canonical == "alice"

    def test_rewrite_to_canonical(self):
        schema = make_schema(("patient", ColumnType.STRING))
        a = Table.from_rows("a", schema, [("alice",), ("ALICE",)], provider="p1")
        result = resolve_entities([(a, "patient")])
        rewritten = rewrite_to_canonical(a, "patient", result)
        values = set(rewritten.column_values("patient"))
        assert len(values) == 1

    def test_mapping_table(self):
        schema = make_schema(("patient", ColumnType.STRING))
        a = Table.from_rows("a", schema, [("Alice",)], provider="p1")
        result = resolve_entities([(a, "patient")])
        mapping = result.mapping_table()
        assert mapping.schema.names == ("entity_id", "provider", "original", "canonical")
        assert len(mapping) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(EtlError):
            resolve_entities([])
