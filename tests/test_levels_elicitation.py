"""Tests for the engineering-level adapters, sessions, and owner agents."""

import pytest

from repro.errors import ElicitationError
from repro.core import (
    COMPREHENSION_WEIGHTS,
    TESTABILITY,
    ElicitationArtifact,
    ElicitationLedger,
    ElicitationSession,
    MetaReportLevel,
    PLA,
    AggregationThreshold,
    PlaLevel,
    ReportLevel,
    SourceLevel,
    WarehouseLevel,
)
from repro.reports import EvolutionEvent, EvolutionKind
from repro.simulation import OwnerAgent, build_levels, compare_levels
from repro.workloads import generate_evolution_stream


class TestWeightsAndTestability:
    def test_weight_ordering_matches_paper(self):
        w = COMPREHENSION_WEIGHTS
        assert w["source_table"] > w["etl_flow"] > w["warehouse_table"] > w["metareport"] > w["report"]

    def test_source_cannot_test_thresholds(self):
        assert TESTABILITY[PlaLevel.SOURCE]["aggregation_threshold"] == 0.0
        assert TESTABILITY[PlaLevel.METAREPORT]["aggregation_threshold"] == 1.0

    def test_metareport_fully_testable(self):
        assert all(v == 1.0 for v in TESTABILITY[PlaLevel.METAREPORT].values())


class TestArtifact:
    def test_effort_scales_with_elements(self):
        small = ElicitationArtifact("report", "r", 2)
        large = ElicitationArtifact("report", "r", 10)
        assert large.effort() == 5 * small.effort()


class TestOwnerAgent:
    def test_expertise_reduces_cost(self):
        artifact = ElicitationArtifact("source_table", "t", 5)
        novice = OwnerAgent("n", expertise=0.0)
        expert = OwnerAgent("e", expertise=1.0)
        assert novice.comprehension_cost(artifact) == 2 * expert.comprehension_cost(artifact)

    def test_review_is_deterministic_per_seed(self):
        artifact = ElicitationArtifact("source_table", "t", 5)
        a = [OwnerAgent("o", seed=3).review(artifact) for _ in range(1)]
        b = [OwnerAgent("o", seed=3).review(artifact) for _ in range(1)]
        assert a == b

    def test_invalid_expertise_rejected(self):
        with pytest.raises(ElicitationError):
            OwnerAgent("o", expertise=2.0)


class TestSession:
    def test_session_cost_accumulates(self):
        owner = OwnerAgent("o", expertise=1.0, confusion_scale=0.0)
        level = ReportLevel([])
        session = ElicitationSession(owner, level)
        record = session.run(
            [ElicitationArtifact("report", "a", 3), ElicitationArtifact("report", "b", 2)]
        )
        assert record.cost == pytest.approx(5.0)  # weight 1.0 × (3+2) × 1.0
        assert record.artifacts_reviewed == 2

    def test_confusion_doubles_artifact_cost(self):
        confused = OwnerAgent("o", expertise=0.0, confusion_scale=1.0)  # always confused
        level = ReportLevel([])
        record = ElicitationSession(confused, level).run(
            [ElicitationArtifact("report", "a", 1)]
        )
        assert record.cost == pytest.approx(4.0)  # 2 passes × cost 2.0

    def test_session_single_use(self):
        owner = OwnerAgent("o")
        session = ElicitationSession(owner, ReportLevel([]))
        session.run([])
        with pytest.raises(ElicitationError):
            session.run([])

    def test_ledger_totals(self):
        owner = OwnerAgent("o", confusion_scale=0.0, expertise=1.0)
        ledger = ElicitationLedger()
        level = ReportLevel([])
        ledger.record(ElicitationSession(owner, level).run([ElicitationArtifact("report", "a", 1)]))
        ledger.record(
            ElicitationSession(owner, level, trigger="re-elicitation:x").run(
                [ElicitationArtifact("report", "a", 1)]
            )
        )
        assert ledger.total_cost() == pytest.approx(2.0)
        assert ledger.cost_by_trigger() == {"initial": 1.0, "re-elicitation": 1.0}
        assert ledger.session_count() == 2

    def test_ledger_files_and_approves_pla(self):
        ledger = ElicitationLedger()
        pla = PLA("p", "o", PlaLevel.REPORT, "r", (AggregationThreshold(2),))
        approved = ledger.file_pla(pla)
        assert approved.status.value == "approved"


class TestLevelCoverage:
    def test_source_level_covers_everything(self, scenario):
        source = build_levels(scenario)[0]
        assert isinstance(source, SourceLevel)
        events = generate_evolution_stream(
            scenario.workload_spec(), scenario.workload, n_events=10, seed=1
        )
        assert all(source.covers_event(e) for e in events)

    def test_report_level_covers_only_drops(self, scenario):
        report_level = build_levels(scenario)[3]
        assert isinstance(report_level, ReportLevel)
        drop = EvolutionEvent(kind=EvolutionKind.DROP_REPORT, report="rpt_000")
        add_col = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="rpt_000", column="drug"
        )
        assert report_level.covers_event(drop)
        assert not report_level.covers_event(add_col)

    def test_warehouse_covers_known_columns_only(self, scenario):
        warehouse = build_levels(scenario)[1]
        assert isinstance(warehouse, WarehouseLevel)
        known = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="rpt_000", column="drug"
        )
        unknown = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="rpt_000", column="exam_type"
        )
        assert warehouse.covers_event(known)
        assert not warehouse.covers_event(unknown)
        # Re-elicitation extends the approved schema:
        warehouse.note_event(unknown)
        assert warehouse.covers_event(unknown)

    def test_metareport_covers_via_derivability(self, scenario):
        metareport = build_levels(scenario)[2]
        assert isinstance(metareport, MetaReportLevel)
        covered = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="rpt_000", column="drug"
        )
        assert metareport.covers_event(covered)

    def test_reelicitation_artifacts_kinds(self, scenario):
        levels = build_levels(scenario)
        event = EvolutionEvent(
            kind=EvolutionKind.ADD_COLUMN, report="rpt_000", column="drug"
        )
        kinds = [level.reelicitation_artifacts(event)[0].kind for level in levels]
        assert kinds == ["source_table", "warehouse_table", "metareport", "report"]


class TestFig5Shape:
    """The headline reproduction: the Fig 5 continuum as measured numbers."""

    @pytest.fixture(scope="class")
    def metrics(self, scenario):
        events = generate_evolution_stream(
            scenario.workload_spec(),
            scenario.workload,
            n_events=40,
            seed=7,
            new_feed_rate=0.1,
        )
        return compare_levels(scenario, events)

    def test_order_is_source_to_report(self, metrics):
        assert [m.level for m in metrics] == [
            "source", "warehouse", "metareport", "report",
        ]

    def test_ease_of_elicitation_increases(self, metrics):
        per_artifact = [m.effort_per_artifact for m in metrics]
        assert per_artifact == sorted(per_artifact, reverse=True)

    def test_stability_decreases(self, metrics):
        stability = [m.stability for m in metrics]
        assert stability == sorted(stability, reverse=True)
        assert stability[0] == 1.0  # source PLAs survive report churn
        assert stability[-1] < 0.3  # report PLAs almost never do

    def test_over_engineering_highest_at_source(self, metrics):
        over = {m.level: m.over_engineering for m in metrics}
        assert over["source"] > over["warehouse"] >= over["metareport"]
        assert over["report"] == 0.0

    def test_metareport_minimizes_total_effort(self, metrics):
        totals = {m.level: m.total_effort for m in metrics}
        assert totals["metareport"] == min(totals.values())

    def test_metareport_testability_is_full(self, metrics):
        by_level = {m.level: m.testability for m in metrics}
        assert by_level["metareport"] == 1.0
        assert by_level["source"] < by_level["warehouse"]
