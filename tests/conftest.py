"""Shared fixtures: the paper's figure tables and a small ready catalog."""

from __future__ import annotations

import pytest

from repro.relational import Catalog, View, parse_query
from repro.workloads.healthcare import (
    paper_drugcost,
    paper_familydoctor,
    paper_policies,
    paper_prescriptions,
)


@pytest.fixture
def prescriptions():
    """The Prescriptions table from Figures 2-4 (5 rows)."""
    return paper_prescriptions()


@pytest.fixture
def policies():
    return paper_policies()


@pytest.fixture
def familydoctor():
    return paper_familydoctor()


@pytest.fixture
def drugcost():
    return paper_drugcost()


@pytest.fixture
def paper_catalog(prescriptions, policies, familydoctor, drugcost):
    """Catalog with the four paper tables plus the no-HIV view."""
    catalog = Catalog()
    catalog.add_table(prescriptions)
    catalog.add_table(policies)
    catalog.add_table(familydoctor)
    catalog.add_table(drugcost)
    catalog.add_view(
        View(
            "nohiv",
            parse_query(
                "SELECT patient, doctor, drug, disease, date "
                "FROM prescriptions WHERE disease != 'HIV'"
            ),
        )
    )
    return catalog


@pytest.fixture(scope="session")
def scenario():
    """One shared end-to-end scenario (expensive; build once per session)."""
    from repro.simulation import build_scenario

    return build_scenario()
