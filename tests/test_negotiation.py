"""Unit tests for the negotiation/convergence simulation."""

import random

import pytest

from repro.errors import ElicitationError
from repro.core import AggregationThreshold, AttributeAccess
from repro.simulation import (
    OwnerPreferences,
    convergence_experiment,
    negotiate_audience,
    negotiate_threshold,
)


class TestThresholdNegotiation:
    def test_perfect_comprehension_converges_in_two_rounds(self):
        rng = random.Random(1)
        owner = OwnerPreferences(min_threshold=5, comprehension=1.0)
        outcome = negotiate_threshold(
            owner, opening=2, artifact_kind="report", rng=rng
        )
        assert outcome.accepted
        # Round 1: 2 rejected, owner counters at 5; round 2: accepted.
        assert outcome.rounds == 2
        assert isinstance(outcome.final, AggregationThreshold)
        assert outcome.final.min_group_size == 5

    def test_opening_at_or_above_minimum_accepts_immediately(self):
        rng = random.Random(1)
        owner = OwnerPreferences(min_threshold=3, comprehension=1.0)
        outcome = negotiate_threshold(
            owner, opening=5, artifact_kind="report", rng=rng
        )
        assert outcome.accepted and outcome.rounds == 1
        assert outcome.final.min_group_size == 5

    def test_transcript_records_exchange(self):
        rng = random.Random(1)
        owner = OwnerPreferences(min_threshold=4, comprehension=1.0)
        outcome = negotiate_threshold(
            owner, opening=2, artifact_kind="report", rng=rng
        )
        assert any("provider:" in line for line in outcome.transcript)
        assert outcome.transcript[-1] == "owner: agreed"

    def test_confusion_inflates_rounds(self):
        def mean_rounds(comprehension: float) -> float:
            rng = random.Random(11)
            total = 0
            for _ in range(300):
                owner = OwnerPreferences(
                    min_threshold=5, comprehension=comprehension
                )
                total += negotiate_threshold(
                    owner, opening=2, artifact_kind="source_table", rng=rng
                ).rounds
            return total / 300

        assert mean_rounds(0.2) > mean_rounds(1.0)


class TestAudienceNegotiation:
    def test_forbidden_roles_always_removed(self):
        rng = random.Random(3)
        owner = OwnerPreferences(
            forbidden_roles=frozenset({"guest", "vendor"}), comprehension=1.0
        )
        outcome = negotiate_audience(
            owner,
            attribute="patient",
            opening_roles=frozenset({"analyst", "guest", "vendor"}),
            artifact_kind="metareport",
            rng=rng,
        )
        assert outcome.accepted
        assert isinstance(outcome.final, AttributeAccess)
        assert outcome.final.allowed_roles == frozenset({"analyst"})

    def test_empty_audience_is_valid_outcome(self):
        rng = random.Random(3)
        owner = OwnerPreferences(
            forbidden_roles=frozenset({"analyst"}), comprehension=1.0
        )
        outcome = negotiate_audience(
            owner,
            attribute="patient",
            opening_roles=frozenset({"analyst"}),
            artifact_kind="report",
            rng=rng,
        )
        assert outcome.accepted
        assert outcome.final.allowed_roles == frozenset()


class TestConvergenceExperiment:
    def test_deterministic(self):
        assert convergence_experiment(seed=5, trials=50) == convergence_experiment(
            seed=5, trials=50
        )

    def test_shape_source_slowest(self):
        rows = {r["artifact_kind"]: r for r in convergence_experiment(trials=300)}
        assert rows["source_table"]["mean_rounds"] >= rows["report"]["mean_rounds"]
        assert (
            rows["source_table"]["over_asked_fraction"]
            > rows["report"]["over_asked_fraction"]
        )

    def test_invalid_trials_rejected(self):
        with pytest.raises(ElicitationError):
            convergence_experiment(trials=0)
